#![doc = include_str!("../README.md")]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub use xtuml_core as core;
pub use xtuml_cosim as cosim;
pub use xtuml_exec as exec;
pub use xtuml_fuzz as fuzz;
pub use xtuml_lang as lang;
pub use xtuml_mda as mda;
pub use xtuml_rtl as rtl;
pub use xtuml_swrt as swrt;
pub use xtuml_verify as verify;

pub mod cli;

/// Commonly used items for quick starts.
pub mod prelude {
    pub use xtuml_core::builder::DomainBuilder;
    pub use xtuml_core::marks::{ElemRef, MarkSet};
    pub use xtuml_core::value::{DataType, Value};
    pub use xtuml_core::Domain;
}
