//! The `xtuml` command-line tool. See `xtuml::cli` for the subcommands.

use std::process::ExitCode;
use xtuml::cli;

fn usage() -> String {
    "usage:\n\
     \x20 xtuml check     <model.xtuml>\n\
     \x20 xtuml lint      <model.xtuml> [marks.marks] [--format json]\n\
     \x20                 [--deny <code|name|all>]... [--allow <code|name>]...\n\
     \x20 xtuml print     <model.xtuml>\n\
     \x20 xtuml interface <model.xtuml> <marks.marks>\n\
     \x20 xtuml compile   <model.xtuml> <marks.marks> [out_dir]\n\
     \x20 xtuml run       <model.xtuml> <script.stim> [--seed S] [--jobs J] [--shards N]\n\
     \x20                 [--engine frames|bc] [--no-bc] [--trace full|off]\n\
     \x20                 [--profile out.json] [--metrics out.jsonl]\n\
     \x20 xtuml bc        <model.xtuml>\n\
     \x20 xtuml analyze   <model.xtuml> [--format json]\n\
     \x20 xtuml stats     <model.xtuml> <script.stim> [--seed S] [--jobs J] [--shards N]\n\
     \x20                 [--engine frames|bc] [--no-bc] [--trace full|off]\n\
     \x20                 [--format json]\n\
     \x20 xtuml stats     --check-profile <trace.json>\n\
     \x20 xtuml fuzz      [--seeds N] [--start S] [--jobs J] [--shrink] [--corpus DIR]\n\
     \x20                 [--engine frames|bc] [--no-bc] [--checkpoint]\n\
     \x20                 [--metrics out.jsonl]\n\
     \x20 xtuml serve     [--port P] [--sessions N] [--queue-cap N] [--fuel N]\n\
     \x20                 [--idle-evict N] [--spool DIR] [--smoke]\n"
        .to_owned()
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

// The reference AST interpreter is not selectable here: it exists as the
// fuzzer's oracle, not as an execution engine.
fn parse_engine(word: Option<&str>) -> Result<xtuml_exec::Engine, String> {
    match word {
        Some("bc") => Ok(xtuml_exec::Engine::Bc),
        Some("frames") => Ok(xtuml_exec::Engine::Frames),
        _ => Err("--engine takes `frames` or `bc`".to_owned()),
    }
}

// `off` exists for pure-throughput runs only; goldens and differential
// legs must keep the default `full` (an empty trace compares equal to
// an empty trace, which proves nothing).
fn parse_trace(word: Option<&str>) -> Result<xtuml_exec::TraceMode, String> {
    match word {
        Some("full") => Ok(xtuml_exec::TraceMode::Full),
        Some("off") => Ok(xtuml_exec::TraceMode::Off),
        _ => Err("--trace takes `full` or `off`".to_owned()),
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => {
            let path = it.next().ok_or_else(usage)?;
            let model = read(path)?;
            print!(
                "{}",
                cli::cmd_check(path, &model).map_err(|e| e.to_string())?
            );
        }
        Some("lint") => {
            let mut paths: Vec<&str> = Vec::new();
            let mut opts = cli::LintOptions::default();
            let mut rest = it;
            while let Some(arg) = rest.next() {
                match arg {
                    "--format" => match rest.next() {
                        Some("json") => opts.format = cli::LintFormat::Json,
                        Some("human") => opts.format = cli::LintFormat::Human,
                        _ => return Err("--format takes `human` or `json`".to_owned()),
                    },
                    "--deny" => opts
                        .deny
                        .push(rest.next().ok_or("--deny takes a lint code")?.to_owned()),
                    "--allow" => opts
                        .allow
                        .push(rest.next().ok_or("--allow takes a lint code")?.to_owned()),
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown flag `{flag}`\n{}", usage()))
                    }
                    path => paths.push(path),
                }
            }
            let (model_path, marks_path) = match paths.as_slice() {
                [m] => (*m, None),
                [m, k] => (*m, Some(*k)),
                _ => return Err(usage()),
            };
            let model = read(model_path)?;
            let marks_src = marks_path.map(read).transpose()?;
            let marks = marks_path.zip(marks_src.as_deref());
            let (report, deny_hit) =
                cli::cmd_lint(model_path, &model, marks, &opts).map_err(|e| e.to_string())?;
            print!("{report}");
            if deny_hit {
                return Err(String::new());
            }
        }
        Some("print") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            print!("{}", cli::cmd_print(&model).map_err(|e| e.to_string())?);
        }
        Some("interface") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            let marks = read(it.next().ok_or_else(usage)?)?;
            print!(
                "{}",
                cli::cmd_interface(&model, &marks).map_err(|e| e.to_string())?
            );
        }
        Some("compile") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            let marks = read(it.next().ok_or_else(usage)?)?;
            let out_dir = it.next().unwrap_or(".");
            for (name, text) in cli::cmd_compile(&model, &marks).map_err(|e| e.to_string())? {
                let path = std::path::Path::new(out_dir).join(&name);
                std::fs::write(&path, text).map_err(|e| format!("cannot write {name}: {e}"))?;
                println!("wrote {}", path.display());
            }
        }
        Some("run") => {
            let mut paths: Vec<&str> = Vec::new();
            let mut opts = cli::RunOptions {
                jobs: xtuml_pool::default_jobs(),
                ..cli::RunOptions::default()
            };
            let mut profile_path: Option<&str> = None;
            let mut metrics_path: Option<&str> = None;
            let mut rest = it;
            while let Some(arg) = rest.next() {
                match arg {
                    "--seed" => {
                        opts.seed = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .ok_or("--seed takes a number")?;
                    }
                    "--jobs" => {
                        opts.jobs = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .filter(|&j| j >= 1)
                            .ok_or("--jobs takes a thread count (>= 1)")?;
                    }
                    "--shards" => {
                        opts.shards = Some(
                            rest.next()
                                .and_then(|n| n.parse().ok())
                                .filter(|&s| s >= 1)
                                .ok_or("--shards takes a shard count (>= 1)")?,
                        );
                    }
                    "--engine" => opts.engine = parse_engine(rest.next())?,
                    "--no-bc" => opts.engine = xtuml_exec::Engine::Frames,
                    "--trace" => opts.trace = parse_trace(rest.next())?,
                    "--profile" => {
                        profile_path = Some(rest.next().ok_or("--profile takes a file path")?);
                    }
                    "--metrics" => {
                        metrics_path = Some(rest.next().ok_or("--metrics takes a file path")?);
                    }
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown flag `{flag}`\n{}", usage()))
                    }
                    path => paths.push(path),
                }
            }
            let [model_path, script_path] = paths.as_slice() else {
                return Err(usage());
            };
            let model = read(model_path)?;
            let script = read(script_path)?;
            let obs = cli::ObsOptions {
                counters: metrics_path.is_some(),
                profile: profile_path.is_some(),
                stream_epochs: metrics_path.is_some(),
            };
            let out = cli::cmd_run_full(&model, &script, opts, &obs).map_err(|e| e.to_string())?;
            print!("{}", out.text);
            if let Some(path) = profile_path {
                let json = out
                    .profile_json
                    .as_deref()
                    .ok_or("internal: profile requested but not produced")?;
                std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("wrote {path}");
            }
            if let Some(path) = metrics_path {
                let m = out
                    .metrics
                    .as_ref()
                    .ok_or("internal: metrics requested but not produced")?;
                let header = [
                    ("model", format!("\"{}\"", xtuml_obs::escape(model_path))),
                    ("seed", out.seed.to_string()),
                    ("shards", out.shards.to_string()),
                    ("dispatches", out.dispatches.to_string()),
                ];
                let mut doc = m.to_jsonl(&header);
                if let Some(t) = &out.timing {
                    doc.push_str(&t.to_jsonl());
                }
                std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("wrote {path}");
            }
        }
        Some("bc") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            print!("{}", cli::cmd_bc(&model).map_err(|e| e.to_string())?);
        }
        Some("analyze") => {
            let mut path: Option<&str> = None;
            let mut format = cli::LintFormat::Human;
            let mut rest = it;
            while let Some(arg) = rest.next() {
                match arg {
                    "--format" => match rest.next() {
                        Some("json") => format = cli::LintFormat::Json,
                        Some("human") => format = cli::LintFormat::Human,
                        _ => return Err("--format takes `human` or `json`".to_owned()),
                    },
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown flag `{flag}`\n{}", usage()))
                    }
                    p => path = Some(p),
                }
            }
            let model = read(path.ok_or_else(usage)?)?;
            print!(
                "{}",
                cli::cmd_analyze(&model, format).map_err(|e| e.to_string())?
            );
        }
        Some("stats") => {
            let mut paths: Vec<&str> = Vec::new();
            let mut opts = cli::RunOptions {
                jobs: xtuml_pool::default_jobs(),
                ..cli::RunOptions::default()
            };
            let mut format = cli::LintFormat::Human;
            let mut check_profile: Option<&str> = None;
            let mut rest = it;
            while let Some(arg) = rest.next() {
                match arg {
                    "--seed" => {
                        opts.seed = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .ok_or("--seed takes a number")?;
                    }
                    "--jobs" => {
                        opts.jobs = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .filter(|&j| j >= 1)
                            .ok_or("--jobs takes a thread count (>= 1)")?;
                    }
                    "--shards" => {
                        opts.shards = Some(
                            rest.next()
                                .and_then(|n| n.parse().ok())
                                .filter(|&s| s >= 1)
                                .ok_or("--shards takes a shard count (>= 1)")?,
                        );
                    }
                    "--engine" => opts.engine = parse_engine(rest.next())?,
                    "--no-bc" => opts.engine = xtuml_exec::Engine::Frames,
                    "--trace" => opts.trace = parse_trace(rest.next())?,
                    "--format" => match rest.next() {
                        Some("json") => format = cli::LintFormat::Json,
                        Some("human") => format = cli::LintFormat::Human,
                        _ => return Err("--format takes `human` or `json`".to_owned()),
                    },
                    "--check-profile" => {
                        check_profile =
                            Some(rest.next().ok_or("--check-profile takes a file path")?);
                    }
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown flag `{flag}`\n{}", usage()))
                    }
                    path => paths.push(path),
                }
            }
            if let Some(path) = check_profile {
                let src = read(path)?;
                print!(
                    "{}",
                    cli::cmd_check_profile(&src).map_err(|e| e.to_string())?
                );
                return Ok(());
            }
            let [model_path, script_path] = paths.as_slice() else {
                return Err(usage());
            };
            let model = read(model_path)?;
            let script = read(script_path)?;
            print!(
                "{}",
                cli::cmd_stats(&model, &script, opts, format).map_err(|e| e.to_string())?
            );
        }
        Some("fuzz") => {
            let mut opts = cli::FuzzOptions {
                jobs: xtuml_pool::default_jobs(),
                ..cli::FuzzOptions::default()
            };
            let mut corpus_dir: Option<&str> = None;
            let mut metrics_path: Option<&str> = None;
            let mut rest = it;
            while let Some(arg) = rest.next() {
                match arg {
                    "--seeds" => {
                        opts.seeds = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .ok_or("--seeds takes a count")?;
                    }
                    "--start" => {
                        opts.start = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .ok_or("--start takes a seed")?;
                    }
                    "--jobs" => {
                        opts.jobs = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .filter(|&j| j >= 1)
                            .ok_or("--jobs takes a thread count (>= 1)")?;
                    }
                    "--engine" => opts.engine = parse_engine(rest.next())?,
                    "--no-bc" => opts.engine = xtuml::fuzz::Engine::Frames,
                    "--shrink" => opts.shrink = true,
                    "--checkpoint" => opts.checkpoint = true,
                    "--corpus" => {
                        corpus_dir = Some(rest.next().ok_or("--corpus takes a directory")?);
                    }
                    "--metrics" => {
                        metrics_path = Some(rest.next().ok_or("--metrics takes a file path")?);
                    }
                    // Self-test hook: inject a scheduler fault so the
                    // oracle itself can be exercised end to end.
                    "--ablate" => {
                        opts.ablation = xtuml::fuzz::Ablation::parse(
                            rest.next().ok_or("--ablate takes a fault name")?,
                        )?;
                    }
                    flag => return Err(format!("unknown flag `{flag}`\n{}", usage())),
                }
            }
            let (report, entries) = cli::cmd_fuzz(&opts).map_err(|e| e.to_string())?;
            let ok = report.ok();
            print!("{}", report.render());
            if let Some(path) = metrics_path {
                std::fs::write(path, report.render_jsonl())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("wrote {path}");
            }
            if let Some(dir) = corpus_dir {
                for e in &entries {
                    let written = xtuml::fuzz::write_entry(std::path::Path::new(dir), e)
                        .map_err(|e| format!("cannot write corpus: {e}"))?;
                    for path in written {
                        println!("wrote {}", path.display());
                    }
                }
            }
            if !ok {
                return Err(String::new());
            }
        }
        Some("serve") => {
            let mut opts = cli::ServeOptions::default();
            let mut rest = it;
            while let Some(arg) = rest.next() {
                match arg {
                    "--port" => {
                        opts.port = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .ok_or("--port takes a port number")?;
                    }
                    "--sessions" => {
                        opts.sessions = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--sessions takes a count (>= 1)")?;
                    }
                    "--queue-cap" => {
                        opts.queue_cap = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .filter(|&n| n >= 1)
                            .ok_or("--queue-cap takes a count (>= 1)")?;
                    }
                    "--fuel" => {
                        opts.fuel = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .ok_or("--fuel takes a dispatch budget")?;
                    }
                    "--idle-evict" => {
                        opts.idle_evict = rest
                            .next()
                            .and_then(|n| n.parse().ok())
                            .ok_or("--idle-evict takes a tick count")?;
                    }
                    "--spool" => {
                        opts.spool =
                            Some(rest.next().ok_or("--spool takes a directory")?.to_owned());
                    }
                    "--smoke" => opts.smoke = true,
                    flag => return Err(format!("unknown flag `{flag}`\n{}", usage())),
                }
            }
            print!("{}", cli::cmd_serve(&opts).map_err(|e| e.to_string())?);
        }
        _ => return Err(usage()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            // An empty message means the report already went to stdout
            // (lint with deny-level findings); only the exit code changes.
            if !msg.is_empty() {
                eprintln!("{msg}");
            }
            ExitCode::FAILURE
        }
    }
}
