//! The `xtuml` command-line tool. See `xtuml::cli` for the subcommands.

use std::process::ExitCode;
use xtuml::cli;

fn usage() -> String {
    "usage:\n\
     \x20 xtuml check     <model.xtuml>\n\
     \x20 xtuml print     <model.xtuml>\n\
     \x20 xtuml interface <model.xtuml> <marks.marks>\n\
     \x20 xtuml compile   <model.xtuml> <marks.marks> [out_dir]\n\
     \x20 xtuml run       <model.xtuml> <script.stim>\n"
        .to_owned()
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("check") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            print!("{}", cli::cmd_check(&model).map_err(|e| e.to_string())?);
        }
        Some("print") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            print!("{}", cli::cmd_print(&model).map_err(|e| e.to_string())?);
        }
        Some("interface") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            let marks = read(it.next().ok_or_else(usage)?)?;
            print!(
                "{}",
                cli::cmd_interface(&model, &marks).map_err(|e| e.to_string())?
            );
        }
        Some("compile") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            let marks = read(it.next().ok_or_else(usage)?)?;
            let out_dir = it.next().unwrap_or(".");
            for (name, text) in cli::cmd_compile(&model, &marks).map_err(|e| e.to_string())? {
                let path = std::path::Path::new(out_dir).join(&name);
                std::fs::write(&path, text).map_err(|e| format!("cannot write {name}: {e}"))?;
                println!("wrote {}", path.display());
            }
        }
        Some("run") => {
            let model = read(it.next().ok_or_else(usage)?)?;
            let script = read(it.next().ok_or_else(usage)?)?;
            print!(
                "{}",
                cli::cmd_run(&model, &script).map_err(|e| e.to_string())?
            );
        }
        _ => return Err(usage()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
