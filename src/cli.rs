//! The `xtuml` command-line tool, as testable library functions.
//!
//! Subcommands:
//!
//! * `check <model.xtuml>` — parse, validate and summarise a model,
//!   reporting *every* error with line/column, not just the first;
//! * `lint <model.xtuml> [marks.marks]` — run the full static-analysis
//!   suite (validation, dead-model, signal-race, signal-cycle and mark
//!   lints) and render the findings in rustc style or as JSON;
//! * `print <model.xtuml>` — re-emit the model in canonical form;
//! * `interface <model.xtuml> <marks.marks>` — show the generated
//!   channel table and register map;
//! * `compile <model.xtuml> <marks.marks> [out_dir]` — run the model
//!   compiler and write `<domain>.c` / `<domain>.vhd`;
//! * `run <model.xtuml> <script.stim>` — execute a stimulus script
//!   against the abstract model and print the observable trace; state
//!   actions execute on the register bytecode VM by default
//!   (`--engine frames` / `--no-bc` selects the compiled-frame
//!   interpreter — the trace is byte-identical either way);
//! * `bc <model.xtuml>` — disassemble the register bytecode lowered
//!   from the model's state actions, with superinstruction annotations;
//! * `fuzz [--seeds N] [--start S] [--shrink] [--corpus DIR]` — run the
//!   conformance fuzzer: generated models are executed on the reference
//!   interpreter, the bytecode VM, the compiled-frame interpreter and
//!   the partitioned cosim, and their observable traces must agree (see
//!   `xtuml_fuzz`). The undocumented `--ablate pair-order` flag injects
//!   a scheduler fault for self-testing the oracle.
//!
//! The stimulus script format is line-oriented:
//!
//! ```text
//! create oven Oven          # bind name `oven` to a new Oven instance
//! relate oven lamp R1       # link two bound instances
//! at 100 oven Start 3       # inject Start(3) at time 100
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use xtuml_core::diag::{Code, Diagnostic, Diagnostics, LintLevels};
use xtuml_core::error::Pos;
use xtuml_core::marks::MarkSet;
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_core::{lint, validate};
use xtuml_lang::{
    parse_domain, parse_domain_for_lint, parse_marks, parse_marks_spanned, print_domain,
};
use xtuml_mda::lint::MarkSite;
use xtuml_mda::ModelCompiler;

/// A CLI failure, rendered to stderr by the binary.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<xtuml_core::CoreError> for CliError {
    fn from(e: xtuml_core::CoreError) -> CliError {
        CliError(e.to_string())
    }
}

impl From<xtuml_mda::MdaError> for CliError {
    fn from(e: xtuml_mda::MdaError) -> CliError {
        CliError(e.to_string())
    }
}

/// `check`: parse + validate, return a summary.
///
/// Unlike a fail-fast parse, `check` accumulates *every* validation
/// finding — a single bad action block with three independent type errors
/// produces three rendered diagnostics, each with its line and column.
///
/// # Errors
///
/// Returns the rendered diagnostics (rustc style, with source snippets)
/// when the model has any error-level finding.
pub fn cmd_check(model_file: &str, model_src: &str) -> Result<String, CliError> {
    let mut diags = Diagnostics::new();
    let (domain, spans) = match parse_domain_for_lint(model_src) {
        Ok(parsed) => parsed,
        Err(e) => {
            diags.push(Diagnostic::from_core_error(&e, Pos::UNKNOWN));
            return Err(CliError(diags.render_human(&[(model_file, model_src)])));
        }
    };
    validate::validate_into(&domain, &spans, &mut diags);
    if diags.has_errors() {
        diags.sort();
        return Err(CliError(diags.render_human(&[(model_file, model_src)])));
    }
    let machines = domain
        .classes
        .iter()
        .filter(|c| c.state_machine.is_some())
        .count();
    let states: usize = domain
        .classes
        .iter()
        .filter_map(|c| c.state_machine.as_ref())
        .map(|m| m.states.len())
        .sum();
    let transitions: usize = domain
        .classes
        .iter()
        .filter_map(|c| c.state_machine.as_ref())
        .map(|m| m.transitions.len())
        .sum();
    let mut out = String::new();
    let _ = writeln!(out, "domain {}: OK", domain.name);
    let _ = writeln!(
        out,
        "  {} class(es) ({} with state machines), {} actor(s), {} association(s)",
        domain.classes.len(),
        machines,
        domain.actors.len(),
        domain.associations.len()
    );
    let _ = writeln!(
        out,
        "  {} state(s), {} transition(s), {} action statement(s)",
        states,
        transitions,
        domain.action_weight()
    );
    if !diags.is_empty() {
        diags.sort();
        out.push_str(&diags.render_human(&[(model_file, model_src)]));
    }
    Ok(out)
}

/// Output format for [`cmd_lint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintFormat {
    /// Rustc-style rendering with source snippets.
    #[default]
    Human,
    /// One machine-readable JSON document.
    Json,
}

/// Options for [`cmd_lint`], mirroring the `lint` subcommand's flags.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Output format (`--format json`).
    pub format: LintFormat,
    /// Codes or lint names promoted to errors (`--deny X0010`,
    /// `--deny signal-race`, `--deny all`).
    pub deny: Vec<String>,
    /// Codes or lint names suppressed entirely (`--allow X0009`).
    pub allow: Vec<String>,
}

fn resolve_code(s: &str) -> Result<Code, CliError> {
    Code::parse(s).ok_or_else(|| {
        CliError(format!(
            "unknown lint `{s}` (expected a code like X0010 or a name like signal-race)"
        ))
    })
}

/// `lint`: run the full static-analysis suite over a model (and its marks,
/// when given) and render the findings.
///
/// Returns the rendered report plus a flag that is `true` when any
/// error-level diagnostic remains after `--deny`/`--allow` promotion —
/// the binary turns that flag into a failing exit code.
///
/// Parse failures are not a separate error path: they are rendered as a
/// single diagnostic in the requested format, so `--format json` consumers
/// never see free-form text.
///
/// # Errors
///
/// Returns [`CliError`] only for unusable *options* (an unknown lint code
/// in `--deny`/`--allow`).
pub fn cmd_lint(
    model_file: &str,
    model_src: &str,
    marks: Option<(&str, &str)>,
    opts: &LintOptions,
) -> Result<(String, bool), CliError> {
    let mut levels = LintLevels::new();
    for name in &opts.deny {
        if name == "all" {
            levels.deny_all();
        } else {
            levels.deny(resolve_code(name)?);
        }
    }
    for name in &opts.allow {
        levels.allow(resolve_code(name)?);
    }

    let mut diags = Diagnostics::new();
    let mut sources: Vec<(&str, &str)> = vec![(model_file, model_src)];
    match parse_domain_for_lint(model_src) {
        Err(e) => diags.push(Diagnostic::from_core_error(&e, Pos::UNKNOWN)),
        Ok((domain, spans)) => {
            validate::validate_into(&domain, &spans, &mut diags);
            lint::lint_domain(&domain, &spans, &mut diags);
            if let Some((marks_file, marks_src)) = marks {
                sources.push((marks_file, marks_src));
                match parse_marks_spanned(marks_src) {
                    Err(e) => {
                        diags.push(
                            Diagnostic::from_core_error(&e, Pos::UNKNOWN).in_file(marks_file),
                        );
                    }
                    Ok((marks_for, _, _)) if marks_for != domain.name => {
                        diags.push(
                            Diagnostic::new(
                                Code::UnresolvedReference,
                                Pos::UNKNOWN,
                                format!(
                                    "mark file targets domain `{marks_for}`, model is `{}`",
                                    domain.name
                                ),
                            )
                            .in_file(marks_file),
                        );
                    }
                    Ok((_, mark_set, mark_spans)) => {
                        let sites: Vec<MarkSite> = mark_spans
                            .into_iter()
                            .map(|s| MarkSite {
                                elem: s.elem,
                                key: s.key,
                                pos: s.pos,
                            })
                            .collect();
                        xtuml_mda::lint::lint_marks(
                            &domain, &mark_set, &sites, marks_file, &spans, &mut diags,
                        );
                    }
                }
            }
        }
    }

    levels.apply(&mut diags);
    // Pin implicit attributions to the model file before sorting, so the
    // finding order is a pure function of (rendered file, span, code) —
    // not of which analysis pass happened to produce each diagnostic.
    diags.resolve_files(model_file);
    diags.sort();
    let deny_hit = diags.has_errors();
    let rendered = match opts.format {
        LintFormat::Human => diags.render_human(&sources),
        LintFormat::Json => diags.render_json(model_file),
    };
    Ok((rendered, deny_hit))
}

/// `print`: canonical form.
///
/// # Errors
///
/// Returns parse/validation diagnostics.
pub fn cmd_print(model_src: &str) -> Result<String, CliError> {
    let domain = parse_domain(model_src)?;
    Ok(print_domain(&domain))
}

/// `interface`: the generated channel table.
///
/// # Errors
///
/// Returns parse, mark-mismatch and mapping diagnostics.
pub fn cmd_interface(model_src: &str, marks_src: &str) -> Result<String, CliError> {
    let (domain, marks) = load(model_src, marks_src)?;
    let design = ModelCompiler::new().compile(&domain, &marks)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "generated interface for {} ({} hw / {} sw classes):",
        domain.name,
        design.partition.hw_count(),
        design.partition.sw_count()
    );
    if design.interface.channels.is_empty() {
        let _ = writeln!(out, "  (homogeneous partition: no channels)");
    }
    for ch in &design.interface.channels {
        let class = &domain.class(ch.target_class).name;
        let event = &domain.class(ch.target_class).events[ch.event.index()].name;
        let _ = writeln!(
            out,
            "  channel {:>2}  {}  {}.{}  [{} word(s)]",
            ch.id, ch.dir, class, event, ch.payload_words
        );
    }
    Ok(out)
}

/// `compile`: generated C and VHDL texts, keyed by suggested file name.
///
/// # Errors
///
/// Returns parse, mark-mismatch and mapping diagnostics.
pub fn cmd_compile(model_src: &str, marks_src: &str) -> Result<Vec<(String, String)>, CliError> {
    let (domain, marks) = load(model_src, marks_src)?;
    let design = ModelCompiler::new().compile(&domain, &marks)?;
    Ok(vec![
        (format!("{}.c", domain.name), design.c_code),
        (format!("{}.vhd", domain.name), design.vhdl_code),
        (format!("{}_icd.md", domain.name), design.icd),
    ])
}

/// Options for [`cmd_run_with`], mirroring the `run` subcommand's flags.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Scheduler seed (`--seed S`).
    pub seed: u64,
    /// Worker threads (`--jobs J`); `1` is the guaranteed-sequential
    /// path. Workers are pure mechanism: the output never depends on
    /// this, only wall-clock does.
    pub jobs: usize,
    /// Shard count (`--shards S`); `None` means 1 (the sequential
    /// schedule). Together with the seed this *defines* the schedule —
    /// the trace is a pure function of `(seed, shards)` — which is why
    /// the default is a constant rather than following `jobs` or the
    /// host's core count: an unflagged `run` must print the same bytes
    /// on every machine and across releases. Models that fail the
    /// shard-safety analysis fall back to one shard with a note.
    pub shards: Option<usize>,
    /// Action executor (`--engine frames|bc`, `--no-bc`). The register
    /// bytecode VM is the default hot path; `Frames` walks the
    /// slot-resolved compiled frames AST-style. The trace is
    /// byte-identical either way — the engine is pure mechanism, like
    /// `jobs`. Actions the bytecode lowering cannot encode fall back
    /// to the frame interpreter per action, with an X0016 note.
    pub engine: xtuml_exec::Engine,
    /// Trace recording (`--trace full|off`). `Off` skips the trace ring
    /// entirely for pure-throughput runs; the transcript then reports no
    /// dispatch count or observable events. Differential and golden
    /// comparisons must run with `Full` (the default) — `Off` makes
    /// traces trivially, meaninglessly equal.
    pub trace: xtuml_exec::TraceMode,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            seed: 0,
            jobs: 1,
            shards: None,
            engine: xtuml_exec::Engine::default(),
            trace: xtuml_exec::TraceMode::default(),
        }
    }
}

/// `run`: execute a stimulus script against the abstract model
/// (sequentially, with the default seed).
///
/// # Errors
///
/// Returns parse, script and execution diagnostics.
pub fn cmd_run(model_src: &str, script_src: &str) -> Result<String, CliError> {
    cmd_run_with(model_src, script_src, RunOptions::default())
}

/// `run` with explicit seed/jobs options. Runs go through the sharded
/// engine, which delegates to the classic sequential scheduler when the
/// effective shard count is 1 — the default whenever `--shards` is not
/// given, so unflagged runs reproduce historical output exactly on any
/// host; `--jobs` is pure mechanism and only matters once `--shards`
/// opts into a sharded schedule.
///
/// # Errors
///
/// Returns parse, script and execution diagnostics.
pub fn cmd_run_with(
    model_src: &str,
    script_src: &str,
    opts: RunOptions,
) -> Result<String, CliError> {
    cmd_run_full(model_src, script_src, opts, &ObsOptions::default()).map(|o| o.text)
}

/// Telemetry options for [`cmd_run_full`] (`--profile`, `--metrics`,
/// `stats`). Everything defaults to off, which is the zero-cost path:
/// no recorder is attached and the engines take one predictable branch
/// per instrumented site.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsOptions {
    /// Record the deterministic counter/gauge/histogram snapshot.
    pub counters: bool,
    /// Capture wall-clock spans for a Chrome trace-event profile
    /// (implies counters).
    pub profile: bool,
    /// Append per-epoch rows to the snapshot (JSONL streaming).
    pub stream_epochs: bool,
}

impl ObsOptions {
    fn on(&self) -> bool {
        self.counters || self.profile || self.stream_epochs
    }
}

/// Everything a telemetry-enabled run produces.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The human-readable transcript (what [`cmd_run_with`] returns).
    pub text: String,
    /// Chrome trace-event JSON, when [`ObsOptions::profile`] was set.
    pub profile_json: Option<String>,
    /// The deterministic metrics snapshot, when any telemetry was on.
    /// A pure function of `(seed, shards)` — never of `--jobs` or the
    /// host.
    pub metrics: Option<xtuml_obs::Metrics>,
    /// Wall-clock measurements (segregated from `metrics`; these *do*
    /// vary run to run).
    pub timing: Option<xtuml_obs::Timing>,
    /// Effective shard count after the shard-safety fallback (static
    /// X0015 offenses, or a violated runtime colocation precondition).
    pub shards: usize,
    /// Bytecode-lowering fallback reasons, aggregated to counts
    /// (X0016; empty when every action lowered, or on other engines).
    pub bc_fallback_reasons: Vec<(String, u32)>,
    /// Dispatch-table slots resolved to the frame-interpreter fallback
    /// when the table was built for the bytecode engine — a static
    /// property of (model, engine), decided once per (class, state,
    /// event) rather than re-checked per signal.
    pub bc_fallback_slots: usize,
    /// The scheduler seed (echoed for metric sinks).
    pub seed: u64,
    /// Final simulation time.
    pub now: u64,
    /// Total dispatch steps.
    pub dispatches: u64,
}

/// [`cmd_run_with`] plus telemetry: attaches a recorder per
/// [`ObsOptions`], renders the Chrome trace profile, and surfaces the
/// deterministic metrics snapshot. A shard-safety fallback is reported
/// as diagnostic X0015 (`shard-unsafe`) in the transcript and counted
/// under `shard_fallbacks` / `fallback_*` in the snapshot; an action
/// the bytecode lowering cannot encode is reported as X0016
/// (`bc-unsupported`) and counted under `bc_fallbacks`.
///
/// # Errors
///
/// Returns parse, script and execution diagnostics.
pub fn cmd_run_full(
    model_src: &str,
    script_src: &str,
    opts: RunOptions,
    obs: &ObsOptions,
) -> Result<RunOutput, CliError> {
    let domain = parse_domain(model_src)?;
    let mut note = None;
    let mut offenses = Vec::new();
    let requested = opts.shards.unwrap_or(1).max(1);
    let shards = if requested > 1 {
        offenses = lint::shard_offenses(&domain);
        if offenses.is_empty() {
            requested
        } else {
            let described: Vec<String> = offenses.iter().map(|o| o.describe()).collect();
            note = Some(format!(
                "note: running sequentially — {} shard-unsafe: {}",
                Code::ShardUnsafe.as_str(),
                described.join("; ")
            ));
            1
        }
    } else {
        1
    };
    let policy = xtuml_exec::SchedPolicy::seeded(opts.seed).with_shards(shards);
    let mut sim = xtuml_exec::ShardedSimulation::with_policy(&domain, policy);
    sim.set_engine(opts.engine);
    sim.set_trace_mode(opts.trace);
    // Like the X0015 shard fallback, a lowering fallback is a property
    // of the model alone, so it is reported once up front rather than
    // per dispatch (the per-dispatch cost shows up as `bc_fallbacks`
    // in the counter snapshot).
    let bc_note = if opts.engine == xtuml_exec::Engine::Bc && !sim.bc_fallbacks().is_empty() {
        let described: Vec<String> = sim
            .bc_fallbacks()
            .iter()
            .map(|f| {
                let class = domain.class(f.class);
                let state = class
                    .state_machine
                    .as_ref()
                    .map(|m| m.states[f.state.index()].name.as_str())
                    .unwrap_or("?");
                let event = class.events[f.event.index()].name.as_str();
                format!("{}.{state} on {event} ({})", class.name, f.reason)
            })
            .collect();
        Some(format!(
            "note: {} action(s) on the frame interpreter — {} {}: {}",
            described.len(),
            Code::BcUnsupported.as_str(),
            Code::BcUnsupported.name(),
            described.join("; ")
        ))
    } else {
        None
    };
    if obs.on() {
        let mut rec = if obs.profile {
            xtuml_obs::Recorder::with_spans(xtuml_obs::Clock::start())
        } else {
            xtuml_obs::Recorder::new()
        };
        rec.stream_epochs = obs.stream_epochs;
        sim.attach_recorder(rec);
    }
    let mut names: BTreeMap<String, xtuml_core::ids::InstId> = BTreeMap::new();

    for (lineno, raw) in script_src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let verb = words.next().unwrap_or("");
        let fail = |msg: String| CliError(format!("script line {}: {msg}", lineno + 1));
        match verb {
            "create" => {
                let name = words.next().ok_or_else(|| fail("missing name".into()))?;
                let class = words.next().ok_or_else(|| fail("missing class".into()))?;
                let inst = sim.create(class).map_err(|e| fail(e.to_string()))?;
                names.insert(name.to_owned(), inst);
            }
            "relate" => {
                let a = words
                    .next()
                    .ok_or_else(|| fail("missing instance".into()))?;
                let b = words
                    .next()
                    .ok_or_else(|| fail("missing instance".into()))?;
                let assoc = words.next().ok_or_else(|| fail("missing assoc".into()))?;
                let ia = *names.get(a).ok_or_else(|| fail(format!("unknown `{a}`")))?;
                let ib = *names.get(b).ok_or_else(|| fail(format!("unknown `{b}`")))?;
                sim.relate(ia, ib, assoc).map_err(|e| fail(e.to_string()))?;
            }
            "at" => {
                let time: u64 = words
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| fail("bad time".into()))?;
                let name = words
                    .next()
                    .ok_or_else(|| fail("missing instance".into()))?;
                let event = words.next().ok_or_else(|| fail("missing event".into()))?;
                let inst = *names
                    .get(name)
                    .ok_or_else(|| fail(format!("unknown `{name}`")))?;
                let args: Vec<Value> = words
                    .map(parse_arg)
                    .collect::<Result<_, String>>()
                    .map_err(fail)?;
                sim.inject(time, inst, event, args)
                    .map_err(|e| fail(e.to_string()))?;
            }
            other => return Err(fail(format!("unknown verb `{other}`"))),
        }
    }

    let run_t0 = obs.on().then(std::time::Instant::now);
    sim.run_to_quiescence(opts.jobs)?;
    // The effect analysis may admit a model conditionally, on a
    // colocation precondition over the instance population; when the
    // actual links violate it, the engine delegated to the sequential
    // schedule and says why.
    let runtime_note = sim
        .runtime_fallback()
        .map(|why| format!("note: running sequentially — {why}"));
    let shards = if runtime_note.is_some() { 1 } else { shards };
    let mut out = String::new();
    if let Some(n) = note {
        let _ = writeln!(out, "{n}");
    }
    if let Some(n) = runtime_note {
        let _ = writeln!(out, "{n}");
    }
    if let Some(n) = bc_note {
        let _ = writeln!(out, "{n}");
    }
    let _ = writeln!(
        out,
        "ran to quiescence at t={} ({} dispatches)",
        sim.now(),
        sim.trace().dispatch_count()
    );
    for ev in sim.trace().observable(&domain) {
        let _ = writeln!(out, "{ev}");
    }

    let mut profile_json = None;
    let mut metrics = None;
    let mut timing = None;
    if let Some(mut rec) = sim.take_recorder() {
        if let Some(t0) = run_t0 {
            rec.timing.run_wall_ns = t0.elapsed().as_nanos() as u64;
        }
        // The fallback is part of the deterministic story: it depends
        // only on the model, so the snapshot records it.
        if !offenses.is_empty() {
            use xtuml_obs::Counter;
            rec.metrics.add(Counter::ShardFallbacks, 1);
            for o in &offenses {
                let c = match o.reason.key() {
                    "create" => Counter::FallbackCreate,
                    "delete" => Counter::FallbackDelete,
                    "relate" => Counter::FallbackRelate,
                    "unrelate" => Counter::FallbackUnrelate,
                    "non_self_read" => Counter::FallbackNonSelfRead,
                    _ => Counter::FallbackNonSelfWrite,
                };
                rec.metrics.add(c, 1);
            }
        }
        if obs.profile {
            let mut tracks: Vec<(u32, String)> = vec![(
                0,
                if shards > 1 { "coordinator" } else { "main" }.to_owned(),
            )];
            if shards > 1 {
                for k in 0..shards {
                    tracks.push((k as u32 + 1, format!("shard {k}")));
                }
            }
            profile_json = rec.to_chrome_json(&domain.name, &tracks);
        }
        timing = Some(rec.timing);
        metrics = Some(rec.metrics);
    }
    let mut reason_counts: BTreeMap<String, u32> = BTreeMap::new();
    for f in sim.bc_fallbacks() {
        *reason_counts.entry(f.reason.clone()).or_insert(0) += 1;
    }
    Ok(RunOutput {
        text: out,
        profile_json,
        metrics,
        timing,
        shards,
        bc_fallback_reasons: reason_counts.into_iter().collect(),
        bc_fallback_slots: sim.bc_fallback_slots(),
        seed: opts.seed,
        now: sim.now(),
        dispatches: sim.trace().dispatch_count() as u64,
    })
}

/// `stats`: run a stimulus script with counters on and report the full
/// telemetry catalogue (human-readable, or one JSON document with
/// `--format json`). The counter snapshot is deterministic — a pure
/// function of `(seed, shards)` — so two hosts disagree only in the
/// clearly-marked wall-clock section.
///
/// # Errors
///
/// Returns parse, script and execution diagnostics.
pub fn cmd_stats(
    model_src: &str,
    script_src: &str,
    opts: RunOptions,
    format: LintFormat,
) -> Result<String, CliError> {
    let obs = ObsOptions {
        counters: true,
        ..ObsOptions::default()
    };
    let out = cmd_run_full(model_src, script_src, opts, &obs)?;
    let m = out.metrics.as_ref().expect("counters were requested");
    match format {
        LintFormat::Human => {
            let mut s = String::new();
            let _ = writeln!(
                s,
                "run: t={} dispatches={} seed={} shards={} (deterministic)",
                out.now, out.dispatches, out.seed, out.shards
            );
            s.push_str(&m.render_human());
            let _ = writeln!(
                s,
                "bc fallback slots (static, decided once per class/state/event): {}",
                out.bc_fallback_slots
            );
            s.push_str("bc fallback reasons:\n");
            if out.bc_fallback_reasons.is_empty() {
                s.push_str("  (none)\n");
            } else {
                for (reason, count) in &out.bc_fallback_reasons {
                    let _ = writeln!(s, "  {count:>4}x {reason}");
                }
            }
            if let Some(t) = &out.timing {
                let _ = writeln!(s, "wall-clock (not deterministic):");
                let _ = writeln!(s, "  run_wall_us           {:>12}", t.run_wall_ns / 1_000);
                let _ = writeln!(
                    s,
                    "  barrier_wait_us       {:>12}",
                    t.barrier_wait_ns / 1_000
                );
                let _ = writeln!(s, "  epochs_timed          {:>12}", t.epochs_timed);
            }
            Ok(s)
        }
        LintFormat::Json => {
            let mut s = String::new();
            s.push_str("{\n");
            let _ = writeln!(s, "  \"seed\": {},", out.seed);
            let _ = writeln!(s, "  \"shards\": {},", out.shards);
            let _ = writeln!(s, "  \"now\": {},", out.now);
            let _ = writeln!(s, "  \"dispatches\": {},", out.dispatches);
            let _ = writeln!(s, "  \"deterministic\": true,");
            let reasons: Vec<String> = out
                .bc_fallback_reasons
                .iter()
                .map(|(reason, count)| {
                    format!(
                        "\"{}\": {count}",
                        reason.replace('\\', "\\\\").replace('"', "\\\"")
                    )
                })
                .collect();
            let _ = writeln!(s, "  \"bc_fallback_reasons\": {{{}}},", reasons.join(", "));
            let _ = writeln!(s, "  \"bc_fallback_slots\": {},", out.bc_fallback_slots);
            let _ = write!(s, "  \"metrics\": ");
            let body = m.to_json();
            let mut lines = body.lines();
            if let Some(first) = lines.next() {
                let _ = writeln!(s, "{first}");
            }
            for line in lines {
                let _ = writeln!(s, "  {line}");
            }
            s.pop();
            s.push_str("\n}\n");
            Ok(s)
        }
    }
}

/// `analyze`: run the whole-model effect analysis and report per-action
/// effect summaries, the class partition (shard-local / shard-safe /
/// unsafe-with-witness), any cross-shard race witnesses, and the final
/// sharding verdict (human-readable, or one JSON document with
/// `--format json`).
///
/// # Errors
///
/// Returns parse diagnostics.
pub fn cmd_analyze(model_src: &str, format: LintFormat) -> Result<String, CliError> {
    let domain = parse_domain(model_src)?;
    let plan = xtuml_core::effects::analyze(&domain);
    Ok(match format {
        LintFormat::Human => plan.render_human(&domain),
        LintFormat::Json => plan.render_json(&domain),
    })
}

/// `bc`: disassemble the register bytecode lowered from a model's state
/// actions — one block per (class, state, event) entry, with fused
/// superinstructions annotated and any frame-interpreter fallbacks
/// listed at the end. This is the stream `run` executes by default.
///
/// # Errors
///
/// Returns parse/validation diagnostics.
pub fn cmd_bc(model_src: &str) -> Result<String, CliError> {
    let domain = parse_domain(model_src)?;
    let program = xtuml_core::code::CompiledProgram::new(&domain);
    let bc = xtuml_core::bc::BcProgram::new(&domain, &program);
    let mut out = xtuml_core::bc::disasm(&domain, &bc);
    let _ = writeln!(
        out,
        "{} action(s) lowered, {} fallback(s)",
        bc.vm_entries(),
        bc.fallbacks.len()
    );
    Ok(out)
}

/// `stats --check-profile`: validate that a file is a well-formed Chrome
/// trace-event document (the shape Perfetto loads).
///
/// # Errors
///
/// Describes the first structural problem found.
pub fn cmd_check_profile(src: &str) -> Result<String, CliError> {
    match xtuml_obs::check_chrome_trace(src) {
        Ok(n) => Ok(format!("ok: {n} trace event(s)\n")),
        Err(e) => Err(CliError(format!("invalid trace profile: {e}"))),
    }
}

/// Options for [`cmd_fuzz`], mirroring the `fuzz` subcommand's flags.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of seeds to run (`--seeds N`).
    pub seeds: u64,
    /// First seed (`--start S`).
    pub start: u64,
    /// Minimize failing cases before reporting (`--shrink`).
    pub shrink: bool,
    /// Injected scheduler fault (`--ablate pair-order`, self-test only).
    pub ablation: xtuml_fuzz::Ablation,
    /// Worker threads for the seed sweep (`--jobs J`); the report is
    /// byte-identical for any value.
    pub jobs: usize,
    /// Interpreter-leg engine (`--engine frames|bc`, `--no-bc`). The
    /// default `Bc` runs the four-way differential (reference AST vs
    /// bytecode VM vs compiled frames vs cosim, full traces
    /// byte-identical); `Frames` drops back to the historical
    /// three-way.
    pub engine: xtuml_fuzz::Engine,
    /// Add the snapshot/restore checkpoint leg (`--checkpoint`): the
    /// interpreter runs a second time, serializing and rebuilding itself
    /// every few dispatches, and the case fails unless the restored
    /// run's trace is byte-identical to the uninterrupted one.
    pub checkpoint: bool,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seeds: 100,
            start: 0,
            shrink: false,
            ablation: xtuml_fuzz::Ablation::None,
            jobs: 1,
            engine: xtuml_fuzz::Engine::default(),
            checkpoint: false,
        }
    }
}

/// `fuzz`: run a differential-conformance fuzzing campaign.
///
/// Returns the full report (render with [`xtuml_fuzz::FuzzReport::render`],
/// stream with `render_jsonl`, gate on `ok()`) and the corpus entries for
/// every failing case that can be serialized (minimized when `--shrink`
/// was given) — the binary writes the entries under `--corpus DIR`.
///
/// # Errors
///
/// Currently infallible; the `Result` mirrors the other subcommands.
pub fn cmd_fuzz(
    opts: &FuzzOptions,
) -> Result<(xtuml_fuzz::FuzzReport, Vec<xtuml_fuzz::CorpusEntry>), CliError> {
    let cfg = xtuml_fuzz::FuzzConfig {
        start: opts.start,
        count: opts.seeds,
        shrink: opts.shrink,
        ablation: opts.ablation,
        jobs: opts.jobs,
        engine: opts.engine,
        checkpoint: opts.checkpoint,
    };
    let report = xtuml_fuzz::fuzz(&cfg);
    let mut entries = Vec::new();
    for f in &report.failures {
        // A spec whose failure *is* the lowering can't be serialized;
        // the rendered report still names the seed.
        if let Ok(e) = xtuml_fuzz::entry(&f.spec, &format!("seed{}", f.seed)) {
            entries.push(e);
        }
    }
    Ok((report, entries))
}

/// Options for [`cmd_serve`], mirroring the `serve` subcommand's flags.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP port on loopback (`--port P`; 0 picks an ephemeral port).
    pub port: u16,
    /// Maximum concurrent sessions (`--sessions N`).
    pub sessions: usize,
    /// Per-session pending-stimulus cap (`--queue-cap N`); a stimulate
    /// beyond it gets an explicit backpressure reply.
    pub queue_cap: usize,
    /// Default per-session dispatch budget (`--fuel N`).
    pub fuel: u64,
    /// Idle-eviction threshold in request ticks (`--idle-evict N`,
    /// 0 disables): untouched sessions are snapshotted to the spool
    /// directory and revived transparently on their next touch.
    pub idle_evict: u64,
    /// Spool directory for evicted sessions (`--spool DIR`).
    pub spool: Option<String>,
    /// Run the deterministic smoke transcript instead of serving
    /// (`--smoke`): in-process server, golden request/response log on
    /// stdout, exit.
    pub smoke: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            port: 7711,
            sessions: 1024,
            queue_cap: 1024,
            fuel: 1_000_000,
            idle_evict: 0,
            spool: None,
            smoke: false,
        }
    }
}

/// `serve`: host the multi-tenant simulation daemon (DESIGN §15).
///
/// With `--smoke`, runs the golden transcript against an in-process
/// server and returns it; otherwise binds the requested port and serves
/// until killed (this call never returns).
///
/// # Errors
///
/// Bind/socket failures, or a smoke transcript that diverged after
/// restore.
pub fn cmd_serve(opts: &ServeOptions) -> Result<String, CliError> {
    if opts.smoke {
        return xtuml_serve::smoke().map_err(|e| CliError(format!("smoke failed: {e}")));
    }
    let mut session = xtuml_serve::SessionCfg {
        max_sessions: opts.sessions,
        queue_cap: opts.queue_cap,
        fuel: opts.fuel,
        idle_evict: opts.idle_evict,
        ..xtuml_serve::SessionCfg::default()
    };
    if let Some(dir) = &opts.spool {
        session.spool = std::path::PathBuf::from(dir);
    }
    let server = xtuml_serve::Server::start(xtuml_serve::ServeConfig {
        port: opts.port,
        session,
    })
    .map_err(|e| CliError(format!("cannot bind port {}: {e}", opts.port)))?;
    println!("xtuml serve: listening on {}", server.addr());
    loop {
        std::thread::park();
    }
}

fn parse_arg(word: &str) -> Result<Value, String> {
    if word == "true" {
        return Ok(Value::Bool(true));
    }
    if word == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(i) = word.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(r) = word.parse::<f64>() {
        return Ok(Value::Real(r));
    }
    if word.starts_with('"') && word.ends_with('"') && word.len() >= 2 {
        return Ok(Value::Str(word[1..word.len() - 1].to_owned()));
    }
    Err(format!("cannot parse argument `{word}`"))
}

fn load(model_src: &str, marks_src: &str) -> Result<(Domain, MarkSet), CliError> {
    let domain = parse_domain(model_src)?;
    let (marks_for, marks) = parse_marks(marks_src)?;
    if marks_for != domain.name {
        return Err(CliError(format!(
            "mark file targets domain `{marks_for}`, model is `{}`",
            domain.name
        )));
    }
    Ok((domain, marks))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "domain D;\n\
        actor OUT { signal done(v: int); }\n\
        class C { attr n: int; event E(v: int); initial S;\n\
        state S { } state T { self.n = rcvd.v; gen done(self.n) to OUT; }\n\
        on S: E -> T; on T: E -> T; }";

    #[test]
    fn check_summarises() {
        let out = cmd_check("m.xtuml", MODEL).unwrap();
        assert!(out.contains("domain D: OK"));
        assert!(out.contains("1 class(es)"));
        assert!(out.contains("2 state(s)"));
    }

    #[test]
    fn check_reports_errors() {
        assert!(cmd_check("m.xtuml", "domain D; class C { initial X; }").is_err());
    }

    #[test]
    fn check_accumulates_every_error_with_positions() {
        // One action block, three independent errors; the old fail-fast
        // check stopped at the first.
        let src = "domain D;\n\
            class C { attr n: int; event E();\n\
            initial S;\n\
            state S {\n\
            self.n = true;\n\
            self.bogus = 1;\n\
            self.n = \"s\";\n\
            }\n\
            on S: E -> S; }\n";
        let err = cmd_check("m.xtuml", src).unwrap_err().to_string();
        assert_eq!(err.matches("error[").count(), 3, "{err}");
        assert!(err.contains("m.xtuml:5:"), "{err}");
        assert!(err.contains("m.xtuml:6:"), "{err}");
        assert!(err.contains("m.xtuml:7:"), "{err}");
        assert!(err.contains("3 error(s)"), "{err}");
    }

    #[test]
    fn check_renders_warnings_after_summary() {
        let src = "domain D;\n\
            class C { event E(); initial S;\n\
            state S { } state Orphan { }\n\
            on S: E -> S; }\n";
        let out = cmd_check("m.xtuml", src).unwrap();
        assert!(out.contains("domain D: OK"));
        assert!(out.contains("warning[X0005]"), "{out}");
        assert!(out.contains("Orphan"), "{out}");
    }

    #[test]
    fn print_is_canonical() {
        let printed = cmd_print(MODEL).unwrap();
        let again = cmd_print(&printed).unwrap();
        assert_eq!(printed, again);
    }

    #[test]
    fn interface_reports_channels() {
        let marks = "marks for D;\nmark class C isHardware = true;\n";
        let out = cmd_interface(MODEL, marks).unwrap();
        assert!(out.contains("1 hw / 0 sw"));
        // C's events are only ever sent by the environment → no channels.
        assert!(out.contains("no channels"));
    }

    #[test]
    fn interface_rejects_mismatched_marks() {
        let err = cmd_interface(MODEL, "marks for Other;").unwrap_err();
        assert!(err.to_string().contains("targets domain"));
    }

    #[test]
    fn compile_emits_c_vhdl_and_icd() {
        let files = cmd_compile(MODEL, "marks for D;").unwrap();
        assert_eq!(files.len(), 3);
        assert_eq!(files[0].0, "D.c");
        assert!(files[0].1.contains("#include"));
        assert_eq!(files[1].0, "D.vhd");
        assert!(files[1].1.contains("library ieee;"));
        assert_eq!(files[2].0, "D_icd.md");
        assert!(files[2].1.contains("Interface Control Document"));
    }

    #[test]
    fn run_executes_script() {
        let script = "\
# bind and stimulate
create c C
at 0 c E 41
at 1 c E 42
";
        let out = cmd_run(MODEL, script).unwrap();
        assert!(out.contains("OUT.done(41)"));
        assert!(out.contains("OUT.done(42)"));
    }

    #[test]
    fn run_engine_frames_is_byte_identical() {
        let script = "create c C\nat 0 c E 41\nat 1 c E 42\n";
        let bc = cmd_run_with(MODEL, script, RunOptions::default()).unwrap();
        let frames = cmd_run_with(
            MODEL,
            script,
            RunOptions {
                engine: xtuml_exec::Engine::Frames,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(bc, frames);
        // And across a sharded schedule, where the engines run inside
        // shard workers instead of the sequential scheduler.
        let opts = RunOptions {
            shards: Some(2),
            ..RunOptions::default()
        };
        let bc = cmd_run_with(MODEL, script, opts).unwrap();
        let frames = cmd_run_with(
            MODEL,
            script,
            RunOptions {
                engine: xtuml_exec::Engine::Frames,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(bc, frames);
    }

    #[test]
    fn bc_disassembles_the_model() {
        let out = cmd_bc(MODEL).unwrap();
        assert!(out.contains("C · T <- E:"), "{out}");
        assert!(out.contains("0 fallback(s)"), "{out}");
    }

    #[test]
    fn run_script_errors_have_line_numbers() {
        let err = cmd_run(MODEL, "create c C\nat x c E\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = cmd_run(MODEL, "explode\n").unwrap_err();
        assert!(err.to_string().contains("unknown verb"));
    }

    // A model that triggers X0006 (dead event) but nothing error-level.
    const DEAD_EVENT_MODEL: &str = "domain D;\n\
        class C { attr n: int; event E(); event Unused();\n\
        initial S; state S { self.n = self.n + 1; }\n\
        on S: E -> S; }\n";

    #[test]
    fn lint_reports_warnings_without_failing() {
        let (out, deny_hit) =
            cmd_lint("m.xtuml", DEAD_EVENT_MODEL, None, &LintOptions::default()).unwrap();
        assert!(!deny_hit);
        assert!(out.contains("warning[X0006]"), "{out}");
        assert!(out.contains("m.xtuml:2:"), "{out}");
    }

    #[test]
    fn lint_clean_model_reports_no_diagnostics() {
        let (out, deny_hit) = cmd_lint("m.xtuml", MODEL, None, &LintOptions::default()).unwrap();
        assert!(!deny_hit, "{out}");
        assert!(out.contains("no diagnostics"), "{out}");
    }

    #[test]
    fn lint_deny_promotes_and_allow_suppresses() {
        let deny = LintOptions {
            deny: vec!["dead-event".into()],
            ..LintOptions::default()
        };
        let (out, deny_hit) = cmd_lint("m.xtuml", DEAD_EVENT_MODEL, None, &deny).unwrap();
        assert!(deny_hit, "{out}");
        assert!(out.contains("error[X0006]"), "{out}");

        let allow = LintOptions {
            allow: vec!["X0006".into()],
            ..LintOptions::default()
        };
        let (out, deny_hit) = cmd_lint("m.xtuml", DEAD_EVENT_MODEL, None, &allow).unwrap();
        assert!(!deny_hit);
        assert!(out.contains("no diagnostics"), "{out}");
    }

    #[test]
    fn lint_rejects_unknown_code() {
        let opts = LintOptions {
            deny: vec!["X9999".into()],
            ..LintOptions::default()
        };
        let err = cmd_lint("m.xtuml", MODEL, None, &opts).unwrap_err();
        assert!(err.to_string().contains("unknown lint"));
    }

    #[test]
    fn lint_json_is_machine_readable() {
        let opts = LintOptions {
            format: LintFormat::Json,
            ..LintOptions::default()
        };
        let (out, _) = cmd_lint("m.xtuml", DEAD_EVENT_MODEL, None, &opts).unwrap();
        assert!(out.contains("\"code\": \"X0006\""), "{out}");
        assert!(out.contains("\"name\": \"dead-event\""), "{out}");
        assert!(out.contains("\"file\": \"m.xtuml\""), "{out}");
    }

    #[test]
    fn lint_parse_failure_is_a_rendered_diagnostic() {
        let (out, deny_hit) =
            cmd_lint("m.xtuml", "domain ???", None, &LintOptions::default()).unwrap();
        assert!(deny_hit);
        assert!(out.contains("error["), "{out}");
    }

    #[test]
    fn lint_covers_marks() {
        let marks = "marks for D;\nmark class Ghost isHardware = true;\n";
        let (out, deny_hit) = cmd_lint(
            "m.xtuml",
            MODEL,
            Some(("m.marks", marks)),
            &LintOptions::default(),
        )
        .unwrap();
        assert!(!deny_hit);
        assert!(out.contains("warning[X0012]"), "{out}");
        assert!(out.contains("m.marks:2:"), "{out}");
    }

    #[test]
    fn lint_flags_mismatched_mark_domain() {
        let (out, deny_hit) = cmd_lint(
            "m.xtuml",
            MODEL,
            Some(("m.marks", "marks for Other;\n")),
            &LintOptions::default(),
        )
        .unwrap();
        assert!(deny_hit);
        assert!(out.contains("targets domain `Other`"), "{out}");
    }

    #[test]
    fn arg_parsing() {
        assert_eq!(parse_arg("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_arg("-3").unwrap(), Value::Int(-3));
        assert_eq!(parse_arg("2.5").unwrap(), Value::Real(2.5));
        assert_eq!(parse_arg("\"hi\"").unwrap(), Value::Str("hi".into()));
        assert!(parse_arg("@").is_err());
    }
}
