//! Snapshot/restore conformance sweep (DESIGN §15).
//!
//! The snapshot contract: `restore(snapshot(sim))` continues
//! **byte-identically** to an uninterrupted run, at any legal capture
//! point — any dispatch boundary for the sequential engine, any epoch
//! barrier for the sharded one. This suite locks the contract across the
//! checked-in fuzz corpus plus a sweep of generated models, at shard
//! counts 1, 2 and 4, and checks the failure side too: corrupted or
//! truncated snapshots must decode to a structured [`SnapError`], never
//! a panic or a silently wrong simulation.

use std::path::Path;
use xtuml_core::{AssocId, Domain};
use xtuml_exec::{SchedPolicy, ShardedSimulation, Simulation, SnapError};
use xtuml_fuzz::{generate, load_dir, parse_stim};
use xtuml_lang::parse_domain;
use xtuml_verify::TestCase;

/// Generated-model sweep width (seeds `0..FUZZ_SEEDS`).
const FUZZ_SEEDS: u64 = 32;

/// Scheduler seed for every run in this suite; any value works, the
/// point is that both sides of each comparison share it.
const SEED: u64 = 7;

fn cases() -> Vec<(String, Domain, TestCase)> {
    let mut out = Vec::new();
    for e in load_dir(Path::new("models/fuzz-corpus")).expect("corpus dir is readable") {
        let domain = parse_domain(&e.model)
            .unwrap_or_else(|err| panic!("{}: corpus model does not parse: {err}", e.name));
        let tc = parse_stim(&e.stim)
            .unwrap_or_else(|err| panic!("{}: corpus stim does not parse: {err}", e.name));
        out.push((e.name.clone(), domain, tc));
    }
    assert!(!out.is_empty(), "fuzz corpus must not be empty");
    for seed in 0..FUZZ_SEEDS {
        let spec = generate(seed);
        let domain = spec.lower().expect("generated specs lower by construction");
        out.push((format!("seed{seed}"), domain, spec.testcase()));
    }
    out
}

fn setup_seq<'d>(domain: &'d Domain, tc: &TestCase) -> Simulation<'d> {
    let mut sim = Simulation::with_policy(domain, SchedPolicy::seeded(SEED));
    let mut handles = Vec::with_capacity(tc.creates.len());
    for class in &tc.creates {
        handles.push(sim.create(class).expect("create"));
    }
    for (a, b, assoc) in &tc.relates {
        sim.relate(handles[*a], handles[*b], assoc).expect("relate");
    }
    let mut stims = tc.stimuli.clone();
    stims.sort_by_key(|s| s.time);
    for s in &stims {
        sim.inject(s.time, handles[s.inst], &s.event, s.args.clone())
            .expect("inject");
    }
    sim
}

#[test]
fn sequential_snapshots_restore_byte_identically_at_every_cut() {
    for (name, domain, tc) in &cases() {
        // The uninterrupted reference run, stepped so the dispatch count
        // is known.
        let mut reference = setup_seq(domain, tc);
        let mut total = 0u64;
        while reference.step().expect("reference step") {
            total += 1;
            assert!(total < 1_000_000, "{name}: runaway reference run");
        }
        let want = reference.trace().clone();

        // Cut the run at the start, after one dispatch, and mid-stream;
        // restore must continue to the identical trace each time.
        for cut in [0, 1.min(total), total / 2] {
            let mut sim = setup_seq(domain, tc);
            for _ in 0..cut {
                assert!(sim.step().expect("step before cut"));
            }
            let bytes = sim.snapshot();
            let mut restored = Simulation::restore(domain, &bytes)
                .unwrap_or_else(|e| panic!("{name}: restore at cut {cut} failed: {e}"));
            assert_eq!(
                restored.snapshot(),
                bytes,
                "{name}: re-snapshot differs at cut {cut}"
            );
            restored
                .run_to_quiescence()
                .expect("continue after restore");
            assert_eq!(
                restored.trace(),
                &want,
                "{name}: trace diverged after restore at cut {cut}"
            );
        }

        // At quiescence the snapshot is a fixed point: the restored
        // simulation has nothing left to do and the trace is complete.
        let bytes = reference.snapshot();
        let mut restored = Simulation::restore(domain, &bytes).expect("restore at quiescence");
        assert_eq!(restored.run_to_quiescence().expect("idle run"), 0, "{name}");
        assert_eq!(restored.trace(), &want, "{name}: quiescent trace differs");
    }
}

/// Per-class create residues satisfying the sharded engine's colocation
/// precondition (mirrors the fuzz runner's padding scheme): classes
/// joined by a colocation association share a residue, distinct
/// components round-robin so the population still spreads over shards.
fn coloc_residues(domain: &Domain, coloc: &[AssocId]) -> Vec<usize> {
    let n = domain.classes.len();
    let mut rep: Vec<usize> = (0..n).collect();
    fn root(rep: &mut [usize], mut c: usize) -> usize {
        while rep[c] != c {
            rep[c] = rep[rep[c]];
            c = rep[c];
        }
        c
    }
    for &a in coloc {
        let assoc = domain.association(a);
        let (x, y) = (
            root(&mut rep, assoc.from.index()),
            root(&mut rep, assoc.to.index()),
        );
        rep[x] = y;
    }
    let mut assigned: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    (0..n)
        .map(|c| {
            let r = root(&mut rep, c);
            let next = assigned.len();
            *assigned.entry(r).or_insert(next) % 8
        })
        .collect()
}

fn setup_sharded<'d>(
    domain: &'d Domain,
    tc: &TestCase,
    residues: &[usize],
    shards: usize,
) -> ShardedSimulation<'d> {
    let mut sim =
        ShardedSimulation::with_policy(domain, SchedPolicy::seeded(SEED).with_shards(shards));
    let mut handles = Vec::with_capacity(tc.creates.len());
    let mut next = 0usize;
    for class in &tc.creates {
        let want = residues[domain.class_id(class).expect("class").index()];
        while next % 8 != want {
            sim.create(class).expect("pad create");
            next += 1;
        }
        handles.push(sim.create(class).expect("create"));
        next += 1;
    }
    for (a, b, assoc) in &tc.relates {
        sim.relate(handles[*a], handles[*b], assoc).expect("relate");
    }
    let mut stims = tc.stimuli.clone();
    stims.sort_by_key(|s| s.time);
    for s in &stims {
        sim.inject(s.time, handles[s.inst], &s.event, s.args.clone())
            .expect("inject");
    }
    sim
}

#[test]
fn sharded_snapshots_restore_byte_identically_at_epoch_barriers() {
    let mut pauses = 0u64;
    for (name, domain, tc) in &cases() {
        let plan = xtuml_core::effects::analyze(domain);
        if !plan.admitted() {
            continue;
        }
        let coloc: Vec<AssocId> = plan.coloc_assocs.iter().copied().collect();
        let residues = coloc_residues(domain, &coloc);
        for shards in [1usize, 2, 4] {
            let mut reference = setup_sharded(domain, tc, &residues, shards);
            reference.run_to_quiescence(1).expect("reference run");
            if shards > 1 && reference.runtime_fallback().is_some() {
                continue;
            }
            let want = reference.trace().clone();

            // Pause at every epoch barrier, snapshot, tear the engine
            // down, rebuild it from the bytes and continue. (At shards
            // == 1 the engine delegates to the sequential schedule and
            // finishes in one call — the quiescent round trip below
            // still applies.)
            let mut sim = setup_sharded(domain, tc, &residues, shards);
            loop {
                match sim.run_epochs(1, 1).expect("epoch") {
                    Some(_) => break,
                    None => {
                        pauses += 1;
                        let bytes = sim.snapshot();
                        sim = ShardedSimulation::restore(domain, &bytes).unwrap_or_else(|e| {
                            panic!("{name} at {shards} shards: restore failed: {e}")
                        });
                        assert_eq!(
                            sim.snapshot(),
                            bytes,
                            "{name} at {shards} shards: re-snapshot differs"
                        );
                    }
                }
            }
            assert_eq!(
                sim.trace(),
                &want,
                "{name} at {shards} shards: trace diverged across restores"
            );

            // Quiescent snapshots round-trip too.
            let bytes = sim.snapshot();
            let restored =
                ShardedSimulation::restore(domain, &bytes).expect("restore at quiescence");
            assert_eq!(restored.trace(), &want, "{name}: quiescent trace differs");
        }
    }
    assert!(
        pauses >= 32,
        "only {pauses} epoch pauses across the sweep — the barrier path is undertested"
    );
}

#[test]
fn corrupt_and_truncated_snapshots_are_structured_errors() {
    let spec = generate(0);
    let domain = spec.lower().unwrap();
    let tc = spec.testcase();
    let mut sim = setup_seq(&domain, &tc);
    sim.run_to_quiescence().expect("run");
    let bytes = sim.snapshot();

    // Every strict prefix is a structured decode error, never a panic.
    for cut in 0..bytes.len() {
        assert!(
            Simulation::restore(&domain, &bytes[..cut]).is_err(),
            "prefix of {cut} bytes restored"
        );
    }

    // Header-field corruption maps to the specific error classes.
    assert_eq!(
        Simulation::restore(&domain, b"junk").unwrap_err(),
        SnapError::BadMagic
    );
    let mut v = bytes.clone();
    v[4] = 99; // version field
    assert_eq!(
        Simulation::restore(&domain, &v).unwrap_err(),
        SnapError::BadVersion(99)
    );
    let mut k = bytes.clone();
    k[8] = 7; // kind byte
    assert_eq!(
        Simulation::restore(&domain, &k).unwrap_err(),
        SnapError::BadKind(7)
    );

    // A sequential snapshot is not a sharded one, and vice versa.
    assert!(ShardedSimulation::restore(&domain, &bytes).is_err());
    let sharded = ShardedSimulation::with_policy(&domain, SchedPolicy::seeded(SEED).with_shards(2));
    assert!(Simulation::restore(&domain, &sharded.snapshot()).is_err());

    // A structurally different domain is a fingerprint mismatch.
    let other = generate(1).lower().unwrap();
    assert_eq!(
        Simulation::restore(&other, &bytes).unwrap_err(),
        SnapError::DomainMismatch
    );

    // Byte flips anywhere in the payload must decode to an error or to
    // some valid state — never panic, never allocate absurdly.
    for pos in (12..bytes.len()).step_by(3) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0xFF;
        let _ = Simulation::restore(&domain, &flipped);
    }
}
