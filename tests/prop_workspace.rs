//! Workspace-level property tests: random models and random partitions
//! preserve behaviour; the textual format round-trips; the mark algebra
//! behaves.

use proptest::prelude::*;
use xtuml::core::builder::pipeline_domain;
use xtuml::core::marks::{ElemRef, MarkSet, MarkValue};
use xtuml::exec::SchedPolicy;
use xtuml::lang::{parse_domain, print_domain};
use xtuml::verify::{check_equivalence, run_model, verify_partition, TestCase};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any partition of any small pipeline preserves observable behaviour.
    #[test]
    fn prop_partition_invariance(stages in 1usize..5, mask in 0u32..32, feeds in 1usize..5) {
        let mask = mask & ((1 << stages) - 1);
        let domain = pipeline_domain(stages).unwrap();
        let tc = TestCase::pipeline(stages, feeds);
        let mut marks = MarkSet::new();
        for k in 0..stages {
            if mask & (1 << k) != 0 {
                marks.mark_hardware(&format!("Stage{k}"));
            }
        }
        let report = verify_partition(&domain, &marks, &tc).unwrap();
        prop_assert!(report.is_equivalent(), "{:?}", report.divergences);
    }

    /// The model interpreter is deterministic per seed and confluent for
    /// the pipeline across seeds.
    #[test]
    fn prop_seed_determinism(stages in 1usize..5, feeds in 1usize..6, seed in 0u64..1000) {
        let domain = pipeline_domain(stages).unwrap();
        let tc = TestCase::pipeline(stages, feeds);
        let a = run_model(&domain, SchedPolicy::seeded(seed), &tc).unwrap();
        let b = run_model(&domain, SchedPolicy::seeded(seed), &tc).unwrap();
        prop_assert_eq!(&a, &b);
        let c = run_model(&domain, SchedPolicy::seeded(seed.wrapping_add(1)), &tc).unwrap();
        prop_assert!(check_equivalence(&a, &c).is_equivalent());
    }

    /// Printing any generated pipeline model and reparsing yields the
    /// same model.
    #[test]
    fn prop_model_print_parse_roundtrip(stages in 1usize..7) {
        let domain = pipeline_domain(stages).unwrap();
        let printed = print_domain(&domain);
        let reparsed = parse_domain(&printed).unwrap();
        prop_assert_eq!(domain, reparsed);
    }

    /// Mark-set diff is a metric-like edit distance: zero iff equal,
    /// symmetric.
    #[test]
    fn prop_markset_diff(
        keys in proptest::collection::vec("[a-z]{1,6}", 0..6),
        vals in proptest::collection::vec(-5i64..5, 0..6),
    ) {
        let mut a = MarkSet::new();
        for (k, v) in keys.iter().zip(&vals) {
            a.set(ElemRef::class("C"), k.clone(), MarkValue::Int(*v));
        }
        let b = a.clone();
        prop_assert_eq!(a.diff_count(&b), 0);
        let mut c = a.clone();
        c.set(ElemRef::class("C"), "extra", true);
        prop_assert_eq!(a.diff_count(&c), 1);
        prop_assert_eq!(c.diff_count(&a), 1);
    }

    /// Injecting the same stimuli in any order produces the same model
    /// trace (stimuli are time-sorted internally).
    #[test]
    fn prop_stimulus_order_irrelevant(perm_seed in 0u64..100) {
        let domain = pipeline_domain(2).unwrap();
        let mut tc1 = TestCase::pipeline(2, 0);
        let mut times: Vec<u64> = (0..5).collect();
        // Deterministic permutation from the seed.
        let mut s = perm_seed;
        for i in (1..times.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            times.swap(i, j);
        }
        for t in &times {
            tc1.inject(*t, 0, "Feed", vec![xtuml::core::Value::Int(*t as i64)]);
        }
        let mut tc2 = TestCase::pipeline(2, 0);
        for t in 0..5u64 {
            tc2.inject(t, 0, "Feed", vec![xtuml::core::Value::Int(t as i64)]);
        }
        let a = run_model(&domain, SchedPolicy::default(), &tc1).unwrap();
        let b = run_model(&domain, SchedPolicy::default(), &tc2).unwrap();
        prop_assert_eq!(a, b);
    }
}
