//! Workspace-level property tests: random models and random partitions
//! preserve behaviour; the textual format round-trips; the mark algebra
//! behaves.
//!
//! Runs offline on the in-repo `xtuml-prop` harness; reproduce a failure
//! with the `XTUML_PROP_SEED` value printed on panic.

use xtuml::core::builder::pipeline_domain;
use xtuml::core::marks::{ElemRef, MarkSet, MarkValue};
use xtuml::exec::SchedPolicy;
use xtuml::lang::{parse_domain, print_domain};
use xtuml::verify::{check_equivalence, run_model, verify_partition, TestCase};

/// Any partition of any small pipeline preserves observable behaviour.
#[test]
fn prop_partition_invariance() {
    xtuml_prop::run_with("partition_invariance", xtuml_prop::DEFAULT_BASE, 24, |g| {
        let stages = g.int_in(1, 4) as usize;
        let mask = g.below(32) as u32 & ((1 << stages) - 1);
        let feeds = g.int_in(1, 4) as usize;
        let domain = pipeline_domain(stages).unwrap();
        let tc = TestCase::pipeline(stages, feeds);
        let mut marks = MarkSet::new();
        for k in 0..stages {
            if mask & (1 << k) != 0 {
                marks.mark_hardware(&format!("Stage{k}"));
            }
        }
        let report = verify_partition(&domain, &marks, &tc).unwrap();
        assert!(report.is_equivalent(), "{:?}", report.divergences);
    });
}

/// The model interpreter is deterministic per seed and confluent for the
/// pipeline across seeds.
#[test]
fn prop_seed_determinism() {
    xtuml_prop::run("seed_determinism", |g| {
        let stages = g.int_in(1, 4) as usize;
        let feeds = g.int_in(1, 5) as usize;
        let seed = g.below(1000);
        let domain = pipeline_domain(stages).unwrap();
        let tc = TestCase::pipeline(stages, feeds);
        let a = run_model(&domain, SchedPolicy::seeded(seed), &tc).unwrap();
        let b = run_model(&domain, SchedPolicy::seeded(seed), &tc).unwrap();
        assert_eq!(&a, &b);
        let c = run_model(&domain, SchedPolicy::seeded(seed.wrapping_add(1)), &tc).unwrap();
        assert!(check_equivalence(&a, &c).is_equivalent());
    });
}

/// Printing any generated pipeline model and reparsing yields the same
/// model.
#[test]
fn prop_model_print_parse_roundtrip() {
    xtuml_prop::run("model_print_parse_roundtrip", |g| {
        let stages = g.int_in(1, 6) as usize;
        let domain = pipeline_domain(stages).unwrap();
        let printed = print_domain(&domain);
        let reparsed = parse_domain(&printed).unwrap();
        assert_eq!(domain, reparsed);
    });
}

/// Mark-set diff is a metric-like edit distance: zero iff equal,
/// symmetric.
#[test]
fn prop_markset_diff() {
    xtuml_prop::run("markset_diff", |g| {
        let n = g.index(6);
        let keys: Vec<String> = (0..n).map(|_| g.ident(6)).collect();
        let vals: Vec<i64> = (0..n).map(|_| g.int_in(-5, 4)).collect();
        let mut a = MarkSet::new();
        for (k, v) in keys.iter().zip(&vals) {
            a.set(ElemRef::class("C"), k.clone(), MarkValue::Int(*v));
        }
        let b = a.clone();
        assert_eq!(a.diff_count(&b), 0);
        let mut c = a.clone();
        c.set(ElemRef::class("C"), "zzextra", true);
        assert_eq!(a.diff_count(&c), 1);
        assert_eq!(c.diff_count(&a), 1);
    });
}

/// Injecting the same stimuli in any order produces the same model trace
/// (stimuli are time-sorted internally).
#[test]
fn prop_stimulus_order_irrelevant() {
    xtuml_prop::run("stimulus_order_irrelevant", |g| {
        let domain = pipeline_domain(2).unwrap();
        let mut tc1 = TestCase::pipeline(2, 0);
        let mut times: Vec<u64> = (0..5).collect();
        // Fisher-Yates with harness randomness.
        for i in (1..times.len()).rev() {
            let j = g.index(i + 1);
            times.swap(i, j);
        }
        for t in &times {
            tc1.inject(*t, 0, "Feed", vec![xtuml::core::Value::Int(*t as i64)]);
        }
        let mut tc2 = TestCase::pipeline(2, 0);
        for t in 0..5u64 {
            tc2.inject(t, 0, "Feed", vec![xtuml::core::Value::Int(t as i64)]);
        }
        let a = run_model(&domain, SchedPolicy::default(), &tc1).unwrap();
        let b = run_model(&domain, SchedPolicy::default(), &tc2).unwrap();
        assert_eq!(a, b);
    });
}
