//! Golden-output tests for `xtuml lint`.
//!
//! Each deliberately-buggy fixture under `models/lints/` triggers exactly
//! one lint family; the committed files under `tests/golden/` pin the
//! rendered output byte-for-byte so any drift in codes, spans, messages or
//! ordering fails loudly. Regenerate a golden by running
//! `xtuml lint <fixture> [marks]` and committing the new output — after
//! reading the diff.

use xtuml::cli::{cmd_lint, LintFormat, LintOptions};

fn lint(
    model_path: &str,
    model: &str,
    marks: Option<(&str, &str)>,
    opts: &LintOptions,
) -> (String, bool) {
    cmd_lint(model_path, model, marks, opts).expect("lint options are valid")
}

fn human(model_path: &str, model: &str, marks: Option<(&str, &str)>) -> (String, bool) {
    lint(model_path, model, marks, &LintOptions::default())
}

#[test]
fn race_fixture_matches_golden() {
    let (out, deny_hit) = human(
        "models/lints/race.xtuml",
        include_str!("../models/lints/race.xtuml"),
        None,
    );
    assert_eq!(out, include_str!("golden/race.txt"));
    assert!(!deny_hit, "races are warnings by default");
}

#[test]
fn dead_fixture_matches_golden() {
    let (out, deny_hit) = human(
        "models/lints/dead.xtuml",
        include_str!("../models/lints/dead.xtuml"),
        None,
    );
    assert_eq!(out, include_str!("golden/dead.txt"));
    assert!(!deny_hit);
}

#[test]
fn cycle_fixture_matches_golden() {
    let (out, deny_hit) = human(
        "models/lints/cycle.xtuml",
        include_str!("../models/lints/cycle.xtuml"),
        None,
    );
    assert_eq!(out, include_str!("golden/cycle.txt"));
    assert!(!deny_hit);
}

#[test]
fn marked_fixture_matches_golden_and_fails() {
    let (out, deny_hit) = human(
        "models/lints/marked.xtuml",
        include_str!("../models/lints/marked.xtuml"),
        Some((
            "models/lints/marked.marks",
            include_str!("../models/lints/marked.marks"),
        )),
    );
    assert_eq!(out, include_str!("golden/marked.txt"));
    assert!(deny_hit, "X0014 is an error: the lint run must fail");
}

#[test]
fn shardrace_fixture_matches_golden() {
    // The X0017 regression pin: a genuine cross-shard race (one
    // attribute written through two different associations from two
    // different actions) must render the two-action witness with both
    // statement spans.
    let (out, deny_hit) = human(
        "models/lints/shardrace.xtuml",
        include_str!("../models/lints/shardrace.xtuml"),
        None,
    );
    assert_eq!(out, include_str!("golden/shardrace.txt"));
    assert!(!deny_hit, "cross-shard races are warnings by default");
    assert!(out.contains("warning[X0017]"), "{out}");
    assert!(
        out.contains("witness: Producer.Left writes it at 13:9; Producer.Right writes it at 17:9"),
        "{out}"
    );
}

#[test]
fn doorbell_is_clean() {
    let (out, deny_hit) = human(
        "models/doorbell.xtuml",
        include_str!("../models/doorbell.xtuml"),
        Some((
            "models/doorbell.marks",
            include_str!("../models/doorbell.marks"),
        )),
    );
    assert_eq!(out, include_str!("golden/doorbell.txt"));
    assert!(!deny_hit);
}

#[test]
fn doorbell_json_matches_golden() {
    let opts = LintOptions {
        format: LintFormat::Json,
        ..LintOptions::default()
    };
    let (out, deny_hit) = lint(
        "models/doorbell.xtuml",
        include_str!("../models/doorbell.xtuml"),
        Some((
            "models/doorbell.marks",
            include_str!("../models/doorbell.marks"),
        )),
        &opts,
    );
    assert_eq!(out, include_str!("golden/doorbell.json"));
    assert!(!deny_hit);
}

#[test]
fn dead_json_matches_golden() {
    let opts = LintOptions {
        format: LintFormat::Json,
        ..LintOptions::default()
    };
    let (out, _) = lint(
        "models/lints/dead.xtuml",
        include_str!("../models/lints/dead.xtuml"),
        None,
        &opts,
    );
    assert_eq!(out, include_str!("golden/dead.json"));
}

/// Pins the `--format json` finding order for a *multi-file* lint run.
///
/// Findings are sorted by (rendered file, span, code): the mark-file
/// findings group together, then the model-file findings, regardless of
/// which analysis pass produced each diagnostic. This golden is the
/// regression test for implicit (`file: None`) attributions sorting
/// differently from explicit ones.
#[test]
fn marked_json_matches_golden() {
    let opts = LintOptions {
        format: LintFormat::Json,
        ..LintOptions::default()
    };
    let (out, deny_hit) = lint(
        "models/lints/marked.xtuml",
        include_str!("../models/lints/marked.xtuml"),
        Some((
            "models/lints/marked.marks",
            include_str!("../models/lints/marked.marks"),
        )),
        &opts,
    );
    assert_eq!(out, include_str!("golden/marked.json"));
    assert!(deny_hit);
    // The order is a pure function of the inputs: byte-stable across runs.
    let (again, _) = lint(
        "models/lints/marked.xtuml",
        include_str!("../models/lints/marked.xtuml"),
        Some((
            "models/lints/marked.marks",
            include_str!("../models/lints/marked.marks"),
        )),
        &opts,
    );
    assert_eq!(out, again);
}

#[test]
fn deny_all_promotes_fixture_warnings_to_failures() {
    let opts = LintOptions {
        deny: vec!["all".into()],
        ..LintOptions::default()
    };
    let (out, deny_hit) = lint(
        "models/lints/race.xtuml",
        include_str!("../models/lints/race.xtuml"),
        None,
        &opts,
    );
    assert!(deny_hit);
    assert!(out.contains("error[X0010]"), "{out}");
}

#[test]
fn elevator_warnings_do_not_fail_the_run() {
    // The shipped elevator model has real (intentional) warnings; they
    // must stay below the failure threshold so CI's lint gate passes.
    let (out, deny_hit) = human(
        "models/elevator.xtuml",
        include_str!("../models/elevator.xtuml"),
        None,
    );
    assert!(!deny_hit, "{out}");
    assert!(out.contains("0 error(s)"), "{out}");
}
