//! Experiment E2 as tests: exhaustive partition sweeps over three model
//! families — behaviour is preserved by *every* mark placement, and the
//! only artefact edited between placements is the mark set.

use xtuml::core::marks::MarkSet;
use xtuml::exec::SchedPolicy;
use xtuml::verify::{check_equivalence, run_compiled, run_model, verify_partition, TestCase};
use xtuml_bench::workloads::{fanout_case, fanout_domain, pipeline_domain, ring_case, ring_domain};

#[test]
fn every_partition_of_the_pipeline_is_equivalent() {
    let stages = 4;
    let domain = pipeline_domain(stages).unwrap();
    let tc = TestCase::pipeline(stages, 4);
    for mask in 0..(1u32 << stages) {
        let mut marks = MarkSet::new();
        for k in 0..stages {
            if mask & (1 << k) != 0 {
                marks.mark_hardware(&format!("Stage{k}"));
            }
        }
        let report = verify_partition(&domain, &marks, &tc).unwrap();
        assert!(
            report.is_equivalent(),
            "pipeline mask {mask:04b}: {:?}",
            report.divergences
        );
    }
}

#[test]
fn every_partition_of_the_ring_is_equivalent() {
    let nodes = 3;
    let domain = ring_domain(nodes);
    let tc = ring_case(nodes, 8);
    for mask in 0..(1u32 << nodes) {
        let mut marks = MarkSet::new();
        for k in 0..nodes {
            if mask & (1 << k) != 0 {
                marks.mark_hardware(&format!("Node{k}"));
            }
        }
        let report = verify_partition(&domain, &marks, &tc).unwrap();
        assert!(
            report.is_equivalent(),
            "ring mask {mask:03b}: {:?}",
            report.divergences
        );
    }
}

#[test]
fn fanout_partitions_with_local_constraints_are_equivalent() {
    // Dispatcher and collector keep their workers' associations legal in
    // every placement (associations may cross; create/select do not occur
    // cross-side in this model).
    let workers = 3;
    let domain = fanout_domain(workers);
    let tc = fanout_case(workers, 1);
    for mask in 0..(1u32 << workers) {
        let mut marks = MarkSet::new();
        for k in 0..workers {
            if mask & (1 << k) != 0 {
                marks.mark_hardware(&format!("Worker{k}"));
            }
        }
        let report = verify_partition(&domain, &marks, &tc).unwrap();
        assert!(
            report.is_equivalent(),
            "fanout mask {mask:03b}: {:?}",
            report.divergences
        );
    }
}

#[test]
fn repartitioning_changes_only_marks() {
    // Two partitions of the same model: the domains compared *as models*
    // are identical; only the MarkSets differ.
    let domain = pipeline_domain(3).unwrap();
    let before = domain.clone();

    let mut marks_a = MarkSet::new();
    marks_a.mark_hardware("Stage0");
    let mut marks_b = MarkSet::new();
    marks_b.mark_hardware("Stage2");

    let design_a = xtuml::mda::ModelCompiler::new()
        .compile(&domain, &marks_a)
        .unwrap();
    let design_b = xtuml::mda::ModelCompiler::new()
        .compile(&domain, &marks_b)
        .unwrap();

    // The model was never touched.
    assert_eq!(domain, before);
    // The partitions (and thus generated artefacts) differ.
    assert_ne!(design_a.partition, design_b.partition);
    assert_ne!(design_a.vhdl_code, design_b.vhdl_code);
    // The mark edit distance is exactly two single-line marks.
    assert_eq!(marks_a.diff_count(&marks_b), 2);
}

#[test]
fn interleaving_seeds_do_not_change_pipeline_observables() {
    // The model's defined behaviour is seed-independent for this
    // confluent workload; partitioned implementations must match any
    // seed's trace.
    let domain = pipeline_domain(3).unwrap();
    let tc = TestCase::pipeline(3, 5);
    let base = run_model(&domain, SchedPolicy::seeded(0), &tc).unwrap();
    for seed in 1..12 {
        let t = run_model(&domain, SchedPolicy::seeded(seed), &tc).unwrap();
        assert!(check_equivalence(&base, &t).is_equivalent(), "seed {seed}");
    }
    let mut marks = MarkSet::new();
    marks.mark_hardware("Stage1");
    let design = xtuml::mda::ModelCompiler::new()
        .compile(&domain, &marks)
        .unwrap();
    let impl_trace = run_compiled(&design, &tc).unwrap();
    assert!(check_equivalence(&base, &impl_trace).is_equivalent());
}
