//! Golden replay of the checked-in fuzz corpus (`models/fuzz-corpus/`).
//!
//! Each corpus case is a minimized `.xtuml`/`.marks`/`.stim` triple
//! produced by shrinking a divergence the conformance fuzzer found under
//! the `pair-order` scheduler ablation. The committed bytes are the
//! regression artifact: every case must keep replaying **clean** under
//! the defined semantics and keep reproducing a **divergence** under the
//! injected fault. If either direction drifts, a scheduler or oracle
//! change altered observable behavior.

use std::path::Path;
use xtuml::fuzz::{load_dir, replay, Ablation, CaseOutcome, Engine};

fn corpus() -> Vec<xtuml::fuzz::CorpusEntry> {
    let entries = load_dir(Path::new("models/fuzz-corpus")).expect("corpus dir is readable");
    assert!(!entries.is_empty(), "corpus must not be empty");
    entries
}

#[test]
fn corpus_replays_clean_under_defined_semantics() {
    for e in corpus() {
        // Checkpointing on: corpus replay doubles as a snapshot/restore
        // conformance check on real minimized witnesses.
        let outcome = replay(
            &e.model,
            &e.marks,
            &e.stim,
            Ablation::None,
            Engine::Bc,
            true,
        )
        .unwrap_or_else(|err| panic!("{}: replay failed: {err}", e.name));
        assert!(
            !outcome.is_failure(),
            "{}: expected a clean replay, got: {}",
            e.name,
            outcome.describe()
        );
    }
}

#[test]
fn corpus_reproduces_divergence_under_pair_order_fault() {
    for e in corpus() {
        let outcome = replay(
            &e.model,
            &e.marks,
            &e.stim,
            Ablation::PairOrder,
            Engine::Bc,
            false,
        )
        .unwrap_or_else(|err| panic!("{}: replay failed: {err}", e.name));
        assert!(
            matches!(outcome, CaseOutcome::Divergence { .. }),
            "{}: the minimized witness no longer reproduces; got: {}",
            e.name,
            outcome.describe()
        );
    }
}

#[test]
fn corpus_cases_are_minimized() {
    // Shrinking guarantees small witnesses; keep them that way so a
    // regression in the shrinker (or an unshrunk check-in) fails loudly.
    for e in corpus() {
        let domain = xtuml::lang::parse_domain(&e.model)
            .unwrap_or_else(|err| panic!("{}: model does not parse: {err}", e.name));
        assert!(
            domain.classes.len() <= 3,
            "{}: {} classes — corpus cases must be shrunk",
            e.name,
            domain.classes.len()
        );
    }
}
