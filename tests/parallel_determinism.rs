//! End-to-end determinism contract of `xtuml run` under parallelism.
//!
//! The engine's guarantee: the trace is a pure function of
//! `(seed, shards)`. The worker count (`--jobs`) is pure mechanism and
//! must never leak into the output — at any pinned shard count the CLI
//! must print byte-identical reports whether the epoch runs on one
//! thread or eight. This suite drives the full stack (parser → stimulus
//! script → sharded engine → observable rendering) over the builder
//! pipeline, the doorbell example and the checked-in fuzz corpus.

use xtuml::cli::{cmd_run_with, RunOptions};

const SEEDS: u64 = 16;

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// A synthetic pipeline in source form, so this test exercises the same
/// parser path a user's model takes (the in-crate suites already cover
/// the builder path).
fn pipeline_src(stages: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("domain pipe;\n\nactor SINK {\n    signal out(v: int);\n}\n");
    for k in 0..stages {
        let body = if k + 1 < stages {
            format!(
                "self.seen = (self.seen + 1);\n\
                 gen Feed((rcvd.v + 1)) to any(self -> Stage{}[R{}]);",
                k + 1,
                k + 1
            )
        } else {
            "self.seen = (self.seen + 1);\ngen out(rcvd.v) to SINK;".to_owned()
        };
        let _ = write!(
            s,
            "\nclass Stage{k} {{\n\
             \x20   attr seen: int;\n\
             \x20   event Feed(v: int);\n\
             \x20   initial Idle;\n\
             \x20   state Idle {{\n    }}\n\
             \x20   state Busy {{\n{body}\n    }}\n\
             \x20   on Idle: Feed -> Busy;\n\
             \x20   on Busy: Feed -> Busy;\n\
             }}\n"
        );
    }
    for k in 1..stages {
        let _ = write!(s, "\nassoc R{k}: Stage{} one -- Stage{k} one;\n", k - 1);
    }
    s
}

fn pipeline_stim(stages: usize, feeds: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for k in 0..stages {
        let _ = writeln!(s, "create s{k} Stage{k}");
    }
    for k in 1..stages {
        let _ = writeln!(s, "relate s{} s{k} R{k}", k - 1);
    }
    for i in 0..feeds {
        let _ = writeln!(s, "at {i} s0 Feed {i}");
    }
    s
}

/// A model the shard-safety analysis must reject: it writes an attribute
/// of an instance found by a class-wide `select`, which no relationship
/// colocation can justify. The sweeps thus also cover the sequential
/// fallback path — which must still be worker-count invariant.
fn unsafe_src() -> (String, String) {
    let model = "domain nonlocal;\n\n\
         actor SINK {\n    signal out(v: int);\n}\n\n\
         class A {\n\
         \x20   event Go();\n\
         \x20   initial I;\n\
         \x20   state I {\n    }\n\
         \x20   state W {\n\
         \x20       select any b from B;\n\
         \x20       b.x = (b.x + 1);\n\
         \x20       gen out(b.x) to SINK;\n\
         \x20   }\n\
         \x20   on I: Go -> W;\n\
         \x20   on W: Go -> W;\n\
         }\n\n\
         class B {\n\
         \x20   attr x: int;\n\
         \x20   event Nop();\n\
         \x20   initial I;\n\
         \x20   state I {\n    }\n\
         \x20   on I: Nop ignore;\n\
         }\n\n\
         assoc R1: A one -- B one;\n"
        .to_owned();
    let stim = "create a A\ncreate b B\nrelate a b R1\nat 0 a Go\nat 1 a Go\n".to_owned();
    (model, stim)
}

/// A model only the effect analysis admits to sharding: the action
/// reads a child attribute through navigation, but that attribute is
/// written nowhere, so every shard's replica holds the correct declared
/// default and no colocation is needed. The old syntactic reject-list
/// refused any non-self access.
fn const_read_src() -> (String, String) {
    let model = "domain constread;\n\n\
         actor SINK {\n    signal out(v: int);\n}\n\n\
         class A {\n\
         \x20   attr acc: int;\n\
         \x20   event Go();\n\
         \x20   initial I;\n\
         \x20   state I {\n    }\n\
         \x20   state W {\n\
         \x20       self.acc = ((self.acc + (any(self -> B[R1])).k) + 1);\n\
         \x20       gen out(self.acc) to SINK;\n\
         \x20   }\n\
         \x20   on I: Go -> W;\n\
         \x20   on W: Go -> W;\n\
         }\n\n\
         class B {\n\
         \x20   attr k: int;\n\
         \x20   event Nop();\n\
         \x20   initial I;\n\
         \x20   state I {\n    }\n\
         \x20   on I: Nop ignore;\n\
         }\n\n\
         assoc R1: A one -- B one;\n"
        .to_owned();
    let stim =
        "create a A\ncreate b B\nrelate a b R1\nat 0 a Go\nat 1 a Go\nat 2 a Go\n".to_owned();
    (model, stim)
}

/// Admitted through the colocation rule: the action *writes* a child
/// attribute through the single association `R1`, which is safe exactly
/// when every `R1` link stays on one shard. The stimulus pads the store
/// with inert instances so the linked pair's indices agree mod 8 — the
/// runtime precondition then holds at 2, 4 and 8 shards and the model
/// really executes sharded.
fn coloc_write_src() -> (String, String) {
    let model = "domain colocw;\n\n\
         actor SINK {\n    signal out(v: int);\n}\n\n\
         class A {\n\
         \x20   attr n: int;\n\
         \x20   event Go();\n\
         \x20   initial I;\n\
         \x20   state I {\n    }\n\
         \x20   state W {\n\
         \x20       self.n = (self.n + 1);\n\
         \x20       (any(self -> B[R1])).w = self.n;\n\
         \x20       gen out(self.n) to SINK;\n\
         \x20   }\n\
         \x20   on I: Go -> W;\n\
         \x20   on W: Go -> W;\n\
         }\n\n\
         class B {\n\
         \x20   attr w: int;\n\
         \x20   event Nop();\n\
         \x20   initial I;\n\
         \x20   state I {\n    }\n\
         \x20   on I: Nop ignore;\n\
         }\n\n\
         assoc R1: A one -- B one;\n"
        .to_owned();
    let mut stim = String::from("create a A\n");
    for k in 0..7 {
        stim.push_str(&format!("create pad{k} B\n"));
    }
    stim.push_str("create b B\nrelate a b R1\nat 0 a Go\nat 1 a Go\n");
    (model, stim)
}

/// Every (model, stimulus) pair the suite sweeps.
fn cases() -> Vec<(String, String, String)> {
    let mut v = vec![("pipeline".to_owned(), pipeline_src(6), pipeline_stim(6, 12))];
    let (model, stim) = unsafe_src();
    v.push(("nonlocal-counter".to_owned(), model, stim));
    let (model, stim) = const_read_src();
    v.push(("const-read".to_owned(), model, stim));
    let (model, stim) = coloc_write_src();
    v.push(("coloc-write".to_owned(), model, stim));
    for (name, model, stim) in [
        ("doorbell", "models/doorbell.xtuml", "models/doorbell.stim"),
        (
            "fuzz-seed2",
            "models/fuzz-corpus/seed2.xtuml",
            "models/fuzz-corpus/seed2.stim",
        ),
        (
            "fuzz-seed5",
            "models/fuzz-corpus/seed5.xtuml",
            "models/fuzz-corpus/seed5.stim",
        ),
    ] {
        v.push((name.to_owned(), read(model), read(stim)));
    }
    v
}

#[test]
fn run_output_is_worker_count_invariant_at_every_shard_count() {
    for (name, model, stim) in cases() {
        for shards in [2usize, 4, 8] {
            for seed in 0..SEEDS {
                let opts = |jobs| RunOptions {
                    seed,
                    jobs,
                    shards: Some(shards),
                    ..RunOptions::default()
                };
                let reference = cmd_run_with(&model, &stim, opts(1))
                    .unwrap_or_else(|e| panic!("{name}: jobs=1 failed: {e}"));
                for jobs in [2usize, 4, 8] {
                    let got = cmd_run_with(&model, &stim, opts(jobs))
                        .unwrap_or_else(|e| panic!("{name}: jobs={jobs} failed: {e}"));
                    assert_eq!(
                        reference, got,
                        "{name}: seed {seed} shards {shards}: jobs=1 vs jobs={jobs} diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn single_shard_run_reproduces_the_sequential_cli_output() {
    // `--shards 1` (and plain `--jobs 1`) must replay the classic
    // sequential engine exactly, whatever worker count carries it.
    for (name, model, stim) in cases() {
        for seed in 0..SEEDS {
            let sequential = cmd_run_with(
                &model,
                &stim,
                RunOptions {
                    seed,
                    jobs: 1,
                    shards: None,
                    ..RunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: sequential run failed: {e}"));
            let pinned = cmd_run_with(
                &model,
                &stim,
                RunOptions {
                    seed,
                    jobs: 4,
                    shards: Some(1),
                    ..RunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: pinned run failed: {e}"));
            assert_eq!(
                sequential, pinned,
                "{name}: seed {seed}: --shards 1 must reproduce the sequential output"
            );
        }
    }
}

#[test]
fn the_pipeline_actually_exercises_the_sharded_engine() {
    // Guard against the suite silently degenerating: the pipeline case
    // must pass the shard-safety analysis (so the sweeps above really
    // ran sharded), and an unsafe model run with `--shards > 1` must
    // fall back with a note rather than erroring.
    let pipeline = xtuml::lang::parse_domain(&pipeline_src(6)).unwrap();
    xtuml_exec::shard_safety(&pipeline).expect("pipeline must be shard-safe");

    // The two admitted-by-analysis cases must really need the effect
    // summaries: self-only models pass the old reject-list too, so
    // `uses_admission` is what proves the sweeps exercise the new rules.
    for (name, src) in [
        ("const-read", const_read_src().0),
        ("coloc-write", coloc_write_src().0),
    ] {
        let domain = xtuml::lang::parse_domain(&src).unwrap();
        let plan = xtuml_core::effects::analyze(&domain);
        assert!(plan.admitted(), "{name}: must be admitted");
        assert!(
            plan.uses_admission(),
            "{name}: must need the admission rules"
        );
    }

    let mut safety = Vec::new();
    for (name, model, stim) in cases() {
        let domain = xtuml::lang::parse_domain(&model).unwrap();
        let safe = xtuml_exec::shard_safety(&domain).is_ok();
        safety.push(safe);
        let out = cmd_run_with(
            &model,
            &stim,
            RunOptions {
                seed: 0,
                jobs: 4,
                shards: Some(4),
                ..RunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
        assert_eq!(
            out.starts_with("note: running sequentially"),
            !safe,
            "{name}: fallback note must appear exactly when the model is unsafe"
        );
    }
    assert!(
        safety.iter().any(|s| *s) && safety.iter().any(|s| !*s),
        "suite must cover both shard-safe and fallback models"
    );
}

#[test]
fn unflagged_run_defaults_to_the_sequential_schedule_on_any_host() {
    // Reproducibility contract: without `--shards`, the effective shard
    // count is a constant 1 — never the worker count or the host's core
    // count — so a plain `xtuml run model script` prints the same bytes
    // everywhere, and `--jobs` stays pure mechanism.
    for (name, model, stim) in cases() {
        let sequential = cmd_run_with(
            &model,
            &stim,
            RunOptions {
                seed: 0,
                jobs: 1,
                shards: None,
                ..RunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: sequential run failed: {e}"));
        for jobs in [2usize, 8] {
            let unflagged = cmd_run_with(
                &model,
                &stim,
                RunOptions {
                    seed: 0,
                    jobs,
                    shards: None,
                    ..RunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{name}: jobs={jobs} run failed: {e}"));
            assert_eq!(
                sequential, unflagged,
                "{name}: default shard count must not follow jobs={jobs}"
            );
        }
    }
}
