//! Determinism contract of the telemetry layer.
//!
//! The metrics snapshot is a pure function of `(seed, shards)`: the
//! worker count (`--jobs`), host speed and wall time must never leak
//! into any counter, gauge, histogram or per-epoch row. Wall-clock
//! measurements live in the segregated `Timing` struct and are excluded
//! from every comparison here. The suite also pins `xtuml stats` output
//! byte-for-byte against committed goldens, and checks that the
//! instrumented single-shard delegation path produces the exact
//! snapshot the plain sequential engine does.

use xtuml::cli::{cmd_run_full, cmd_stats, LintFormat, ObsOptions, RunOptions};
use xtuml_bench::workloads::manycore_domain;
use xtuml_core::value::Value;
use xtuml_exec::{SchedPolicy, ShardedSimulation, Simulation};
use xtuml_obs::Recorder;

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn doorbell() -> (String, String) {
    (read("models/doorbell.xtuml"), read("models/doorbell.stim"))
}

fn opts(seed: u64, jobs: usize, shards: usize) -> RunOptions {
    RunOptions {
        seed,
        jobs,
        shards: Some(shards),
        ..RunOptions::default()
    }
}

#[test]
fn stats_json_is_jobs_invariant_at_every_shard_count() {
    let (model, stim) = doorbell();
    for shards in [1usize, 2, 4] {
        for seed in 0..4u64 {
            let reference = cmd_stats(&model, &stim, opts(seed, 1, shards), LintFormat::Json)
                .expect("stats jobs=1");
            for jobs in [2usize, 4] {
                let got = cmd_stats(&model, &stim, opts(seed, jobs, shards), LintFormat::Json)
                    .expect("stats");
                assert_eq!(
                    reference, got,
                    "seed {seed} shards {shards}: snapshot depends on jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn metrics_jsonl_streams_are_jobs_invariant() {
    // The streaming sink includes per-epoch rows; those too must be a
    // pure function of (seed, shards).
    let (model, stim) = doorbell();
    let obs = ObsOptions {
        counters: true,
        profile: false,
        stream_epochs: true,
    };
    for shards in [2usize, 4] {
        let reference = cmd_run_full(&model, &stim, opts(7, 1, shards), &obs)
            .expect("run jobs=1")
            .metrics
            .expect("counters on")
            .to_jsonl(&[]);
        for jobs in [2usize, 4] {
            let got = cmd_run_full(&model, &stim, opts(7, jobs, shards), &obs)
                .expect("run")
                .metrics
                .expect("counters on")
                .to_jsonl(&[]);
            assert_eq!(
                reference, got,
                "shards {shards}: epoch stream depends on jobs={jobs}"
            );
        }
    }
}

#[test]
fn profiling_does_not_perturb_the_snapshot() {
    // Spans carry wall time, so enabling them must not change a single
    // deterministic counter.
    let (model, stim) = doorbell();
    let plain = ObsOptions {
        counters: true,
        profile: false,
        stream_epochs: false,
    };
    let profiled = ObsOptions {
        counters: true,
        profile: true,
        stream_epochs: false,
    };
    let a = cmd_run_full(&model, &stim, opts(0, 2, 4), &plain)
        .expect("plain run")
        .metrics
        .expect("counters on")
        .to_json();
    let b = cmd_run_full(&model, &stim, opts(0, 2, 4), &profiled)
        .expect("profiled run")
        .metrics
        .expect("counters on")
        .to_json();
    assert_eq!(a, b, "profiling changed the deterministic snapshot");
}

#[test]
fn sharded_delegation_matches_the_plain_sequential_snapshot() {
    // `--shards 1` delegates to the classic sequential engine; the
    // instrumented delegation must count at exactly the same sites, so
    // the two snapshots are byte-identical.
    const CORES: usize = 8;
    const WORK: i64 = 16;
    let domain = manycore_domain(CORES);
    for seed in 0..4u64 {
        let mut plain = Simulation::with_policy(&domain, SchedPolicy::seeded(seed));
        plain.attach_recorder(Recorder::new());
        let insts: Vec<_> = (0..CORES)
            .map(|k| plain.create(&format!("Core{k}")).expect("create"))
            .collect();
        for (k, inst) in insts.iter().enumerate() {
            plain
                .inject(0, *inst, "Tick", vec![Value::Int(WORK + (k % 3) as i64)])
                .expect("inject");
        }
        plain.run_to_quiescence().expect("plain run");
        let plain_snap = plain.take_recorder().expect("recorder").metrics.to_json();

        let policy = SchedPolicy::seeded(seed).with_shards(1);
        let mut sharded = ShardedSimulation::with_policy(&domain, policy);
        sharded.attach_recorder(Recorder::new());
        let insts: Vec<_> = (0..CORES)
            .map(|k| sharded.create(&format!("Core{k}")).expect("create"))
            .collect();
        for (k, inst) in insts.iter().enumerate() {
            sharded
                .inject(0, *inst, "Tick", vec![Value::Int(WORK + (k % 3) as i64)])
                .expect("inject");
        }
        sharded.run_to_quiescence(4).expect("sharded run");
        let sharded_snap = sharded.take_recorder().expect("recorder").metrics.to_json();

        assert_eq!(
            plain_snap, sharded_snap,
            "seed {seed}: delegation snapshot diverged from the sequential engine"
        );
    }
}

#[test]
fn stats_json_output_is_well_formed_and_matches_golden() {
    let (model, stim) = doorbell();
    let out = cmd_stats(&model, &stim, opts(0, 2, 4), LintFormat::Json).expect("stats json");
    let doc = xtuml_obs::parse(&out).expect("stats --format json must be valid JSON");
    assert_eq!(
        doc.get("deterministic").and_then(xtuml_obs::Value::as_str),
        None,
        "deterministic is a bool, not a string"
    );
    assert!(doc.get("metrics").is_some(), "missing metrics object");
    assert_eq!(out, include_str!("golden/stats_doorbell.json"));
}

#[test]
fn stats_human_deterministic_section_matches_golden() {
    // Everything above the wall-clock section is a pure function of
    // (seed, shards); the golden pins it byte-for-byte. The wall-clock
    // lines vary run to run and are only checked for presence.
    let (model, stim) = doorbell();
    let out = cmd_stats(&model, &stim, opts(0, 2, 4), LintFormat::Human).expect("stats human");
    let marker = "wall-clock (not deterministic):";
    let (deterministic, rest) = out
        .split_once(marker)
        .unwrap_or_else(|| panic!("missing `{marker}` section:\n{out}"));
    assert_eq!(deterministic, include_str!("golden/stats_doorbell.txt"));
    assert!(rest.contains("run_wall_us"), "{rest}");
}
