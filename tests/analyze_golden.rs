//! Golden-output tests for `xtuml analyze` — the whole-model effect
//! analysis (`xtuml_core::effects`) over every checked-in lint fixture
//! and fuzz-corpus model.
//!
//! Each golden under `tests/golden/analyze_*.txt` pins the rendered
//! summary table byte-for-byte: per-action read/write/send footprints,
//! the class partition, race witnesses and the admission verdict. Any
//! drift in the effect lattice, receiver-shape classification or
//! admission rules fails loudly. Regenerate a golden by running
//! `xtuml analyze <model>` and committing the new output — after
//! reading the diff.

use xtuml::cli::{cmd_analyze, LintFormat};

fn analyze(model: &str) -> String {
    cmd_analyze(model, LintFormat::Human).expect("model parses")
}

#[test]
fn lint_fixtures_match_their_analyze_goldens() {
    for (name, model, golden) in [
        (
            "cycle",
            include_str!("../models/lints/cycle.xtuml"),
            include_str!("golden/analyze_cycle.txt"),
        ),
        (
            "dead",
            include_str!("../models/lints/dead.xtuml"),
            include_str!("golden/analyze_dead.txt"),
        ),
        (
            "marked",
            include_str!("../models/lints/marked.xtuml"),
            include_str!("golden/analyze_marked.txt"),
        ),
        (
            "race",
            include_str!("../models/lints/race.xtuml"),
            include_str!("golden/analyze_race.txt"),
        ),
        (
            "shardrace",
            include_str!("../models/lints/shardrace.xtuml"),
            include_str!("golden/analyze_shardrace.txt"),
        ),
    ] {
        assert_eq!(analyze(model), golden, "analyze golden drifted: {name}");
    }
}

#[test]
fn fuzz_corpus_matches_its_analyze_goldens() {
    for (name, model, golden) in [
        (
            "seed2",
            include_str!("../models/fuzz-corpus/seed2.xtuml"),
            include_str!("golden/analyze_seed2.txt"),
        ),
        (
            "seed5",
            include_str!("../models/fuzz-corpus/seed5.xtuml"),
            include_str!("golden/analyze_seed5.txt"),
        ),
    ] {
        assert_eq!(analyze(model), golden, "analyze golden drifted: {name}");
    }
}

#[test]
fn the_race_fixture_is_rejected_with_a_two_action_witness() {
    let out = analyze(include_str!("../models/lints/shardrace.xtuml"));
    assert!(
        out.contains(
            "race on `Cell.v`: Producer.Left writes at 13:9 vs Producer.Right writes at 17:9"
        ),
        "{out}"
    );
    assert!(
        out.contains("verdict: falls back to sequential execution"),
        "{out}"
    );
}

#[test]
fn analyze_json_is_valid_and_carries_the_verdict() {
    let json = cmd_analyze(
        include_str!("../models/lints/shardrace.xtuml"),
        LintFormat::Json,
    )
    .expect("model parses");
    assert!(json.contains("\"admitted\": false"), "{json}");
    assert!(json.contains("\"races\""), "{json}");
    let clean = cmd_analyze(include_str!("../models/doorbell.xtuml"), LintFormat::Json)
        .expect("model parses");
    assert!(clean.contains("\"admitted\": true"), "{clean}");
}
