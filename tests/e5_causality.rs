//! Experiment E5 as tests: the §2 event rules are exactly what preserves
//! cause-and-effect; ablating either rule breaks observable behaviour.

use xtuml::core::builder::DomainBuilder;
use xtuml::core::value::DataType;
use xtuml::core::Domain;
use xtuml::exec::{SchedPolicy, Simulation};

/// A sender bursts ordered messages at a receiver that records the last
/// payload seen.
fn burst_domain(n: usize) -> Domain {
    let mut b = DomainBuilder::new("burst");
    b.actor("SINK").event("last", &[("k", DataType::Int)]);
    b.class("Recv")
        .attr("last", DataType::Int)
        .event("Msg", &[("k", DataType::Int)])
        .event("Report", &[])
        .state("Idle", "")
        .state("Got", "self.last = rcvd.k;")
        .state("Reported", "gen last(self.last) to SINK;")
        .initial("Idle")
        .transition("Idle", "Msg", "Got")
        .transition("Got", "Msg", "Got")
        .transition("Got", "Report", "Reported")
        .transition("Reported", "Msg", "Got")
        .ignore("Idle", "Report");
    b.class("Send")
        .event("Go", &[])
        .state("Idle", "")
        .state(
            "Burst",
            &format!(
                "select any r from Recv;\n\
                 k = 0;\n\
                 while (k < {n}) {{ gen Msg(k) to r; k = k + 1; }}\n\
                 gen Report() to r;"
            ),
        )
        .initial("Idle")
        .transition("Idle", "Go", "Burst");
    b.build().unwrap()
}

fn run(domain: &Domain, policy: SchedPolicy) -> (usize, i64) {
    let mut sim = Simulation::with_policy(domain, policy);
    let _r = sim.create("Recv").unwrap();
    let s = sim.create("Send").unwrap();
    sim.inject(0, s, "Go", vec![]).unwrap();
    sim.run_to_quiescence().unwrap();
    let violations = sim.trace().causality_violations();
    let last = sim
        .trace()
        .observable(domain)
        .first()
        .map(|e| e.args[0].as_int().unwrap())
        .unwrap_or(-1);
    (violations, last)
}

#[test]
fn rules_on_is_causal_for_every_seed() {
    let d = burst_domain(30);
    for seed in 0..24 {
        let (violations, last) = run(&d, SchedPolicy::seeded(seed));
        assert_eq!(violations, 0, "seed {seed}");
        // With FIFO pair order, the last message processed before Report
        // is always the final one of the burst.
        assert_eq!(last, 29, "seed {seed}");
    }
}

#[test]
fn pair_order_ablation_violates_causality_and_changes_behaviour() {
    let d = burst_domain(30);
    let mut any_violation = false;
    let mut any_wrong_output = false;
    for seed in 0..24 {
        let policy = SchedPolicy {
            pair_order: false,
            ..SchedPolicy::seeded(seed)
        };
        let (violations, last) = run(&d, policy);
        any_violation |= violations > 0;
        any_wrong_output |= last != 29;
    }
    assert!(any_violation, "reordering must be detected in the trace");
    assert!(
        any_wrong_output,
        "reordering must corrupt the observable output"
    );
}

#[test]
fn self_priority_ablation_changes_observable_behaviour() {
    // A state machine that queues work to itself and must finish it
    // before reacting to external queries.
    let mut b = DomainBuilder::new("selfy");
    b.actor("SINK").event("answer", &[("v", DataType::Int)]);
    b.class("Worker")
        .attr("acc", DataType::Int)
        .event("Kick", &[])
        .event("Step", &[("v", DataType::Int)])
        .event("Query", &[])
        .state("Idle", "")
        .state(
            "Kicked",
            "gen Step(1) to self;\n\
             gen Step(2) to self;\n\
             gen Step(4) to self;",
        )
        .state("Stepping", "self.acc = self.acc + rcvd.v;")
        .state("Answering", "gen answer(self.acc) to SINK;")
        .initial("Idle")
        .transition("Idle", "Kick", "Kicked")
        .transition("Kicked", "Step", "Stepping")
        .transition("Stepping", "Step", "Stepping")
        .transition("Kicked", "Query", "Answering")
        .transition("Stepping", "Query", "Answering")
        .transition("Answering", "Step", "Stepping")
        .ignore("Answering", "Query");
    let d = b.build().unwrap();

    let run = |policy: SchedPolicy| -> i64 {
        let mut sim = Simulation::with_policy(&d, policy);
        let w = sim.create("Worker").unwrap();
        sim.inject(0, w, "Kick", vec![]).unwrap();
        sim.inject(0, w, "Query", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        sim.trace().observable(&d)[0].args[0].as_int().unwrap()
    };

    // Rules on: the self-queued Steps are consumed before the external
    // Query, so the answer is always the full sum.
    for seed in 0..16 {
        assert_eq!(run(SchedPolicy::seeded(seed)), 7, "seed {seed}");
    }

    // Ablated: the Query can preempt pending self-work.
    let mut any_early_answer = false;
    for seed in 0..16 {
        let v = run(SchedPolicy {
            self_priority: false,
            ..SchedPolicy::seeded(seed)
        });
        any_early_answer |= v != 7;
    }
    assert!(
        any_early_answer,
        "ablating self-priority must let the query jump the queue"
    );
}
