//! VM conformance: the bytecode engine must be *observably invisible*.
//!
//! The register bytecode VM is the default hot path, so its contract is
//! absolute: for every model, stimulus, seed, shard count and worker
//! count, the run transcript and the execution trace must be
//! byte-identical to the compiled-frame interpreter's. The suite pins
//! that over the shipped golden models, the checked-in fuzz corpus and
//! the bench workload generators, across shards ∈ {1, 2, 4} ×
//! jobs ∈ {1, 2} — the fallback matrix the fuzzer also sweeps.

use std::path::Path;
use xtuml::cli::{cmd_run_with, RunOptions};
use xtuml_bench::workloads::{fanout_case, manycore_case, pipeline_domain, ring_case};
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_exec::{Engine, SchedPolicy, ShardedSimulation};
use xtuml_verify::TestCase;

const SHARDS: [usize; 3] = [1, 2, 4];
const JOBS: [usize; 2] = [1, 2];

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Every on-disk (model, stimulus) pair: the golden doorbell model plus
/// the minimized fuzz-corpus witnesses.
fn disk_cases() -> Vec<(String, String, String)> {
    let mut cases = vec![(
        "doorbell".to_owned(),
        read("models/doorbell.xtuml"),
        read("models/doorbell.stim"),
    )];
    for e in xtuml::fuzz::load_dir(Path::new("models/fuzz-corpus")).expect("corpus readable") {
        cases.push((format!("corpus/{}", e.name), e.model, e.stim));
    }
    cases
}

#[test]
fn disk_models_are_byte_identical_across_engines() {
    for (name, model, stim) in disk_cases() {
        for shards in SHARDS {
            for jobs in JOBS {
                for seed in [0u64, 7] {
                    let opts = |engine| RunOptions {
                        seed,
                        jobs,
                        shards: Some(shards),
                        engine,
                        // Differential legs must compare full traces.
                        trace: xtuml_exec::TraceMode::Full,
                    };
                    let bc = cmd_run_with(&model, &stim, opts(Engine::Bc))
                        .unwrap_or_else(|e| panic!("{name}: bc run failed: {e}"));
                    let frames = cmd_run_with(&model, &stim, opts(Engine::Frames))
                        .unwrap_or_else(|e| panic!("{name}: frames run failed: {e}"));
                    assert_eq!(
                        bc, frames,
                        "{name}: transcript diverged at seed={seed} shards={shards} jobs={jobs}"
                    );
                }
            }
        }
    }
}

/// The bench workload generators, driven through the sharded engine with
/// the full execution trace (not just the observable transcript)
/// compared event for event.
fn workload_cases() -> Vec<(Domain, TestCase)> {
    let mut pipeline = TestCase::new("pipeline-4");
    for k in 0..4 {
        pipeline.create(&format!("Stage{k}"));
    }
    for k in 0..3 {
        pipeline.relate(k, k + 1, &format!("R{}", k + 1));
    }
    for i in 0..8 {
        pipeline.inject(i, 0, "Feed", vec![Value::Int(i as i64)]);
    }
    vec![
        (pipeline_domain(4).expect("pipeline builds"), pipeline),
        (xtuml_bench::workloads::fanout_domain(3), fanout_case(3, 4)),
        (xtuml_bench::workloads::ring_domain(4), ring_case(4, 9)),
        (
            xtuml_bench::workloads::manycore_domain(4),
            manycore_case(4, 6),
        ),
    ]
}

fn run_trace(
    domain: &Domain,
    tc: &TestCase,
    engine: Engine,
    seed: u64,
    shards: usize,
    jobs: usize,
) -> (u64, xtuml_exec::Trace) {
    let policy = SchedPolicy::seeded(seed).with_shards(shards);
    let mut sim = ShardedSimulation::with_policy(domain, policy);
    sim.set_engine(engine);
    let insts: Vec<_> = tc
        .creates
        .iter()
        .map(|c| sim.create(c).expect("create"))
        .collect();
    for (a, b, assoc) in &tc.relates {
        sim.relate(insts[*a], insts[*b], assoc).expect("relate");
    }
    for s in &tc.stimuli {
        sim.inject(s.time, insts[s.inst], &s.event, s.args.clone())
            .expect("inject");
    }
    sim.run_to_quiescence(jobs).expect("run");
    (sim.now(), sim.trace().clone())
}

#[test]
fn workload_traces_are_event_identical_across_engines() {
    for (domain, tc) in workload_cases() {
        for shards in SHARDS {
            for jobs in JOBS {
                let bc = run_trace(&domain, &tc, Engine::Bc, 0, shards, jobs);
                let frames = run_trace(&domain, &tc, Engine::Frames, 0, shards, jobs);
                assert_eq!(
                    bc, frames,
                    "{}: trace diverged at shards={shards} jobs={jobs}",
                    tc.name
                );
            }
        }
    }
}

#[test]
fn engine_choice_never_leaks_into_the_unflagged_default() {
    // The default engine is the VM; a plain run must keep printing the
    // bytes every release printed.
    let model = read("models/doorbell.xtuml");
    let stim = read("models/doorbell.stim");
    let default = cmd_run_with(&model, &stim, RunOptions::default()).unwrap();
    let explicit = cmd_run_with(
        &model,
        &stim,
        RunOptions {
            engine: Engine::Bc,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(default, explicit);
    assert_eq!(RunOptions::default().engine, Engine::Bc);
}
