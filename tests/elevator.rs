//! Integration test over the shipped `models/elevator.xtuml`: dynamic
//! instance creation/deletion (`Job` objects), `select ... where` over
//! live populations, timers, and a hardware-markable door motor.

use xtuml::core::marks::MarkSet;
use xtuml::core::value::Value;
use xtuml::exec::{SchedPolicy, Simulation};
use xtuml::lang::parse_domain;
use xtuml::verify::{check_equivalence, run_compiled, run_model, TestCase};

fn model() -> xtuml::core::Domain {
    let src = include_str!("../models/elevator.xtuml");
    parse_domain(src).expect("elevator model parses and validates")
}

fn test_case() -> TestCase {
    let mut tc = TestCase::new("two-calls-one-car");
    let bank = tc.create("Bank");
    let car = tc.create("Car");
    let motor = tc.create("DoorMotor");
    tc.relate(bank, car, "R1");
    tc.relate(car, motor, "R2");
    // First call is served immediately; the second arrives while the car
    // is busy, gets queued, and is served on CarFreed.
    tc.inject(0, bank, "Call", vec![Value::Int(3)]);
    tc.inject(10, bank, "Call", vec![Value::Int(1)]);
    tc
}

#[test]
fn elevator_serves_both_calls_in_the_model() {
    let domain = model();
    let tc = test_case();
    let obs = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    let arrived: Vec<(i64, i64)> = obs
        .iter()
        .filter(|e| e.event == "arrived")
        .map(|e| (e.args[0].as_int().unwrap(), e.args[1].as_int().unwrap()))
        .collect();
    assert_eq!(arrived, vec![(0, 3), (0, 1)]);
    // The second call found the car busy.
    assert_eq!(obs.iter().filter(|e| e.event == "queued").count(), 1);
}

#[test]
fn jobs_are_created_and_deleted_at_runtime() {
    let domain = model();
    let mut sim = Simulation::new(&domain);
    let bank = sim.create("Bank").unwrap();
    let car = sim.create("Car").unwrap();
    let motor = sim.create("DoorMotor").unwrap();
    sim.relate(bank, car, "R1").unwrap();
    sim.relate(car, motor, "R2").unwrap();
    sim.inject(0, bank, "Call", vec![Value::Int(2)]).unwrap();
    sim.inject(10, bank, "Call", vec![Value::Int(5)]).unwrap();
    sim.run_to_quiescence().unwrap();
    // Both Jobs were served and deleted.
    let job_class = domain.class_id("Job").unwrap();
    assert!(sim.store().instances_of(job_class).is_empty());
    // Creation/deletion visible in the full trace.
    let rendered = sim.trace().render(&domain);
    assert!(rendered.contains("create I3 : Job"));
    assert!(rendered.contains("delete I3"));
    assert_eq!(sim.attr(car, "idle").unwrap(), Value::Bool(true));
    assert_eq!(sim.attr(motor, "cycles").unwrap(), Value::Int(2));
}

#[test]
fn door_motor_can_move_to_hardware() {
    let domain = model();
    let tc = test_case();
    let model_trace = run_model(&domain, SchedPolicy::default(), &tc).unwrap();

    let mut marks = MarkSet::new();
    marks.mark_hardware("DoorMotor");
    let design = xtuml::mda::ModelCompiler::new()
        .compile(&domain, &marks)
        .unwrap();
    // Exactly Open (sw→hw) and DoorShut (hw→sw) cross the boundary.
    assert_eq!(design.interface.channels.len(), 2);
    let impl_trace = run_compiled(&design, &tc).unwrap();
    let report = check_equivalence(&model_trace, &impl_trace);
    assert!(report.is_equivalent(), "{:?}", report.divergences);
}

#[test]
fn bank_car_and_job_must_stay_together() {
    // Bank selects Jobs and Cars; Car deletes Jobs: marking any of them
    // to a different side than the others is a mapping error.
    let domain = model();
    for lone in ["Bank", "Car", "Job"] {
        let mut marks = MarkSet::new();
        marks.mark_hardware(lone);
        let err = xtuml::mda::ModelCompiler::new()
            .compile(&domain, &marks)
            .unwrap_err();
        assert!(
            matches!(err, xtuml::mda::MdaError::Mapping { .. }),
            "marking only {lone} hardware must be rejected, got: {err}"
        );
    }
    // Moving the whole cluster (plus the motor) to hardware is fine.
    let mut marks = MarkSet::new();
    for c in ["Bank", "Car", "Job", "DoorMotor"] {
        marks.mark_hardware(c);
    }
    let tc = test_case();
    let model_trace = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    let design = xtuml::mda::ModelCompiler::new()
        .compile(&domain, &marks)
        .unwrap();
    let impl_trace = run_compiled(&design, &tc).unwrap();
    assert!(check_equivalence(&model_trace, &impl_trace).is_equivalent());
}
