//! Trace-ring equivalence suite (ISSUE 10, satellite c).
//!
//! The packed trace ring replaced the per-dispatch `TraceEvent` enum
//! push; its contract is that nothing downstream can tell. This suite
//! locks three faces of that contract across the checked-in fuzz corpus
//! for engines {frames, bc} × shard counts {1, 2, 4}:
//!
//! 1. `Trace::render` over the ring is byte-identical to the legacy
//!    formatter applied to the materialized `TraceEvent` stream;
//! 2. `restore(snapshot(sim))` roundtrips mid-ring — including the
//!    payload/function side tables that actor signals and bridge calls
//!    index into;
//! 3. `TraceMode::Off` records nothing while leaving execution itself
//!    (simulated time, final state) untouched.

use std::fmt::Write as _;
use std::path::Path;
use xtuml_core::Domain;
use xtuml_exec::{
    Engine, SchedPolicy, ShardedSimulation, Simulation, Trace, TraceEvent, TraceMode,
};
use xtuml_fuzz::{generate, load_dir, parse_stim};
use xtuml_lang::parse_domain;
use xtuml_verify::TestCase;

const SEED: u64 = 11;

/// Shard counts a model may legally run at: shard-unsafe models are
/// restricted to the sequential path (1 shard).
fn shard_counts(domain: &Domain) -> &'static [usize] {
    if xtuml_exec::shard_safety(domain).is_ok() {
        &[1, 2, 4]
    } else {
        &[1]
    }
}

/// Generated-model sweep width (seeds `0..FUZZ_SEEDS`). Generated specs
/// include actor signals and bridge calls, which exercise the ring's
/// payload/function side tables and their rebasing on shard merge.
const FUZZ_SEEDS: u64 = 24;

fn cases() -> Vec<(String, Domain, TestCase)> {
    let mut out = Vec::new();
    for e in load_dir(Path::new("models/fuzz-corpus")).expect("corpus dir is readable") {
        let domain = parse_domain(&e.model)
            .unwrap_or_else(|err| panic!("{}: corpus model does not parse: {err}", e.name));
        let tc = parse_stim(&e.stim)
            .unwrap_or_else(|err| panic!("{}: corpus stim does not parse: {err}", e.name));
        out.push((e.name.clone(), domain, tc));
    }
    assert!(!out.is_empty(), "fuzz corpus must not be empty");
    for seed in 0..FUZZ_SEEDS {
        let spec = generate(seed);
        let domain = spec.lower().expect("generated specs lower by construction");
        out.push((format!("seed{seed}"), domain, spec.testcase()));
    }
    out
}

fn setup<'d>(
    domain: &'d Domain,
    tc: &TestCase,
    shards: usize,
    engine: Engine,
    mode: TraceMode,
) -> ShardedSimulation<'d> {
    let policy = SchedPolicy::seeded(SEED).with_shards(shards);
    let mut sim = ShardedSimulation::with_policy(domain, policy);
    sim.set_engine(engine);
    sim.set_trace_mode(mode);
    let mut handles = Vec::with_capacity(tc.creates.len());
    for class in &tc.creates {
        handles.push(sim.create(class).expect("create"));
    }
    for (a, b, assoc) in &tc.relates {
        sim.relate(handles[*a], handles[*b], assoc).expect("relate");
    }
    let mut stims = tc.stimuli.clone();
    stims.sort_by_key(|s| s.time);
    for s in &stims {
        sim.inject(s.time, handles[s.inst], &s.event, s.args.clone())
            .expect("inject");
    }
    sim
}

/// The legacy formatter, applied to materialized `TraceEvent`s — the
/// reference the ring's direct `render` must match byte for byte.
fn legacy_render(trace: &Trace, domain: &Domain) -> String {
    let events: Vec<TraceEvent> = trace.iter().collect();
    let mut out = String::new();
    for e in &events {
        match e {
            TraceEvent::Create { time, inst, class } => {
                let _ = writeln!(
                    out,
                    "[{time:>6}] create {inst} : {}",
                    domain.class(*class).name
                );
            }
            TraceEvent::Delete { time, inst } => {
                let _ = writeln!(out, "[{time:>6}] delete {inst}");
            }
            TraceEvent::Dispatch {
                time,
                inst,
                from,
                event,
                from_state,
                to_state,
                ..
            } => {
                let class = events.iter().find_map(|c| match c {
                    TraceEvent::Create {
                        inst: ci,
                        class: cc,
                        ..
                    } if ci == inst => Some(*cc),
                    _ => None,
                });
                let (ev_name, s0, s1) = match class {
                    Some(c) => {
                        let cls = domain.class(c);
                        let machine = cls.state_machine.as_ref();
                        (
                            cls.events[event.index()].name.clone(),
                            machine.map_or(from_state.to_string(), |m| {
                                m.state(*from_state).name.clone()
                            }),
                            machine
                                .map_or(to_state.to_string(), |m| m.state(*to_state).name.clone()),
                        )
                    }
                    None => (
                        event.to_string(),
                        from_state.to_string(),
                        to_state.to_string(),
                    ),
                };
                let from_s = from.map_or("<env>".to_owned(), |f| f.to_string());
                let _ = writeln!(
                    out,
                    "[{time:>6}] {from_s} -> {inst} : {ev_name} ({s0} -> {s1})"
                );
            }
            TraceEvent::Ignored { time, inst, event } => {
                let _ = writeln!(out, "[{time:>6}] {inst} ignored {event}");
            }
            TraceEvent::Dropped { time, inst, event } => {
                let _ = writeln!(out, "[{time:>6}] {inst} DROPPED {event}");
            }
            TraceEvent::ActorSignal {
                time,
                actor,
                event,
                args,
            } => {
                let a_decl = domain.actor(*actor);
                let _ = write!(
                    out,
                    "[{time:>6}] >> {}.{}(",
                    a_decl.name,
                    a_decl.events[event.index()].name
                );
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{a}");
                }
                let _ = writeln!(out, ")");
            }
            TraceEvent::BridgeCall {
                time,
                actor,
                func,
                args,
            } => {
                let _ = write!(
                    out,
                    "[{time:>6}] :: {}::{}(",
                    domain.actor(*actor).name,
                    func
                );
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{a}");
                }
                let _ = writeln!(out, ")");
            }
        }
    }
    out
}

#[test]
fn ring_render_is_byte_identical_to_legacy_event_render() {
    for (name, domain, tc) in &cases() {
        let mut renders = Vec::new();
        for engine in [Engine::Frames, Engine::Bc] {
            for &shards in shard_counts(domain) {
                let mut sim = setup(domain, tc, shards, engine, TraceMode::Full);
                sim.run_to_quiescence(1)
                    .unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
                let direct = sim.trace().render(domain);
                let reference = legacy_render(sim.trace(), domain);
                assert_eq!(
                    direct, reference,
                    "{name}: ring render diverges from the legacy event render \
                     (engine {engine:?}, {shards} shards)"
                );
                renders.push((engine, shards, direct));
            }
        }
        // Engines are pure mechanism: for a given shard count the render
        // must not depend on frames vs bc.
        for &shards in shard_counts(domain) {
            let of = |eng: Engine| {
                renders
                    .iter()
                    .find(|(e, s, _)| *e == eng && *s == shards)
                    .map(|(_, _, r)| r.clone())
                    .expect("rendered above")
            };
            assert_eq!(
                of(Engine::Frames),
                of(Engine::Bc),
                "{name}: engines disagree at {shards} shards"
            );
        }
    }
}

#[test]
fn sequential_snapshot_roundtrips_mid_ring() {
    for (name, domain, tc) in &cases() {
        for engine in [Engine::Frames, Engine::Bc] {
            // Reference: the uninterrupted sequential run.
            let mut reference = Simulation::with_policy(domain, SchedPolicy::seeded(SEED));
            reference.set_engine(engine);
            let mut handles = Vec::with_capacity(tc.creates.len());
            for class in &tc.creates {
                handles.push(reference.create(class).expect("create"));
            }
            for (a, b, assoc) in &tc.relates {
                reference
                    .relate(handles[*a], handles[*b], assoc)
                    .expect("relate");
            }
            let mut stims = tc.stimuli.clone();
            stims.sort_by_key(|s| s.time);
            for s in &stims {
                reference
                    .inject(s.time, handles[s.inst], &s.event, s.args.clone())
                    .expect("inject");
            }
            let mut total = 0u64;
            while reference.step().expect("reference step") {
                total += 1;
                assert!(total < 1_000_000, "{name}: runaway reference run");
            }

            // Cut mid-ring: the snapshot serializes a partially-filled
            // ring (records plus payload/function side tables); restore
            // must rebuild it and continue byte-identically.
            let mut sim = Simulation::with_policy(domain, SchedPolicy::seeded(SEED));
            sim.set_engine(engine);
            let mut handles = Vec::with_capacity(tc.creates.len());
            for class in &tc.creates {
                handles.push(sim.create(class).expect("create"));
            }
            for (a, b, assoc) in &tc.relates {
                sim.relate(handles[*a], handles[*b], assoc).expect("relate");
            }
            for s in &stims {
                sim.inject(s.time, handles[s.inst], &s.event, s.args.clone())
                    .expect("inject");
            }
            for _ in 0..total / 2 {
                assert!(sim.step().expect("step before cut"));
            }
            let bytes = sim.snapshot();
            let mut restored =
                Simulation::restore(domain, &bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            while restored.step().expect("restored step") {}
            assert_eq!(
                restored.trace(),
                reference.trace(),
                "{name}: restored trace diverges (engine {engine:?})"
            );
            assert_eq!(
                restored.trace().render(domain),
                reference.trace().render(domain),
                "{name}: restored render diverges (engine {engine:?})"
            );
            assert_eq!(
                restored.snapshot(),
                reference.snapshot(),
                "{name}: re-snapshot"
            );
        }
    }
}

#[test]
fn trace_off_records_nothing_but_execution_is_unchanged() {
    for (name, domain, tc) in &cases() {
        for &shards in shard_counts(domain) {
            let mut full = setup(domain, tc, shards, Engine::Bc, TraceMode::Full);
            full.run_to_quiescence(1)
                .unwrap_or_else(|e| panic!("{name}: full run failed: {e}"));
            let mut off = setup(domain, tc, shards, Engine::Bc, TraceMode::Off);
            off.run_to_quiescence(1)
                .unwrap_or_else(|e| panic!("{name}: off run failed: {e}"));
            assert_eq!(off.trace().len(), 0, "{name}: off-mode ring not empty");
            assert_eq!(
                off.now(),
                full.now(),
                "{name}: trace mode changed simulated time ({shards} shards)"
            );
            assert_eq!(
                off.dropped_events(),
                full.dropped_events(),
                "{name}: trace mode changed drop accounting ({shards} shards)"
            );
        }
    }
}
