//! Experiment E1 as a test: generated interfaces cannot drift; manual
//! ones invariably do (paper §1: "Invariably, the two components do not
//! mesh properly").

use xtuml::verify::drift::{simulate_generated_flow, simulate_manual_flow, DriftConfig};

#[test]
fn generated_interfaces_never_mismatch() {
    for seed in 0..32 {
        for p in [0.0, 0.05, 0.25, 0.5] {
            let r = simulate_generated_flow(&DriftConfig {
                steps: 150,
                miss_probability: p,
                seed,
            });
            assert_eq!(r.final_mismatches(), 0, "seed {seed}, p {p}");
            assert_eq!(r.first_divergence(), None);
        }
    }
}

#[test]
fn manual_interfaces_invariably_drift() {
    // "Invariably": with a realistic miss rate and enough evolution steps,
    // every seed eventually diverges.
    let mut diverged = 0;
    for seed in 0..32 {
        let r = simulate_manual_flow(&DriftConfig {
            steps: 300,
            miss_probability: 0.1,
            seed,
        });
        diverged += usize::from(r.first_divergence().is_some());
    }
    assert_eq!(diverged, 32, "all seeds must diverge at this rate");
}

#[test]
fn drift_monotone_in_miss_probability_on_average() {
    let mean = |p: f64| -> f64 {
        (0..16)
            .map(|seed| {
                simulate_manual_flow(&DriftConfig {
                    steps: 150,
                    miss_probability: p,
                    seed,
                })
                .final_mismatches() as f64
            })
            .sum::<f64>()
            / 16.0
    };
    let low = mean(0.02);
    let mid = mean(0.1);
    let high = mean(0.3);
    assert!(low <= mid + 1.0, "low {low} vs mid {mid}");
    assert!(mid <= high + 1.0, "mid {mid} vs high {high}");
    assert!(high > low, "drift must grow overall: {low} vs {high}");
}

#[test]
fn generated_interface_is_structurally_single_sourced() {
    // The toolchain analogue of E1: the C text, the VHDL text and the
    // executable bridge all print/derive from one InterfaceSpec — check
    // the channel ids agree everywhere.
    use xtuml::core::builder::pipeline_domain;
    use xtuml::core::marks::MarkSet;
    use xtuml::mda::ModelCompiler;

    let domain = pipeline_domain(4).unwrap();
    let mut marks = MarkSet::new();
    marks.mark_hardware("Stage1");
    marks.mark_hardware("Stage3");
    let design = ModelCompiler::new().compile(&domain, &marks).unwrap();

    for ch in &design.interface.channels {
        let class = &domain.class(ch.target_class).name;
        let event = &domain.class(ch.target_class).events[ch.event.index()].name;
        let c_define = format!("#define CH_{class}_{event} {}u", ch.id);
        assert!(
            design.c_code.contains(&c_define),
            "C driver missing `{c_define}`"
        );
        let vhdl_const = format!("constant CH_{class}_{event} : natural := {};", ch.id);
        assert!(
            design.vhdl_code.contains(&vhdl_const),
            "VHDL bridge missing `{vhdl_const}`"
        );
    }
    let cfg = design
        .interface
        .to_bridge_config(design.params.fifo_depth, design.params.bus_latency);
    assert_eq!(cfg.channels.len(), design.interface.channels.len());
}
