//! End-to-end integration: textual model → parse → validate → execute →
//! mark → compile → co-simulate → verify equivalence → inspect generated
//! text. One continuous tour of the whole toolchain.

use xtuml::core::marks::{keys, ElemRef, MarkSet};
use xtuml::core::value::Value;
use xtuml::exec::{SchedPolicy, Simulation};
use xtuml::lang::{parse_domain, parse_marks, print_domain, print_marks};
use xtuml::mda::ModelCompiler;
use xtuml::verify::{check_equivalence, run_compiled, run_model, TestCase};

const MODEL: &str = r#"
domain Doorbell;

actor SPEAKER {
    signal chime(pattern: int);
}

actor LOGGER {
    func note(msg: string);
}

class Button {
    attr presses: int = 0;

    event Press();

    initial Ready;

    state Ready {
    }
    state Pressed {
        self.presses = self.presses + 1;
        c = any(self -> Chimer[R1]);
        gen Ring(self.presses) to c;
    }

    on Ready: Press -> Pressed;
    on Pressed: Press -> Pressed;
}

class Chimer {
    attr rings: int = 0;

    event Ring(pattern: int);
    event Quiet();

    initial Silent;

    state Silent {
    }
    state Chiming {
        self.rings = self.rings + 1;
        gen chime(rcvd.pattern) to SPEAKER;
        LOGGER::note("ding");
        gen Quiet() to self after 250;
    }
    state Resting {
    }

    on Silent: Ring -> Chiming;
    on Chiming: Ring -> Chiming;
    on Chiming: Quiet -> Resting;
    on Resting: Ring -> Chiming;
    on Resting: Quiet ignore;
    on Silent: Quiet ignore;
}

assoc R1: Button one -- Chimer one;
"#;

const MARKS: &str = r#"
marks for Doorbell;
mark class Chimer isHardware = true;
mark class Chimer queueDepth = 8;
mark domain cpuKhz = 120000;
mark domain hwKhz = 60000;
mark domain busLatency = 3;
"#;

fn test_case() -> TestCase {
    let mut tc = TestCase::new("three-presses");
    let b = tc.create("Button");
    let c = tc.create("Chimer");
    tc.relate(b, c, "R1");
    for i in 0..3u64 {
        tc.inject(i * 10, b, "Press", vec![]);
    }
    tc
}

#[test]
fn parse_execute_compile_cosimulate_verify() {
    // Parse the model and the marks from their separate files.
    let domain = parse_domain(MODEL).expect("model parses and validates");
    let (marks_domain, marks) = parse_marks(MARKS).expect("marks parse");
    assert_eq!(marks_domain, domain.name);

    // Execute the formal test case against the abstract model.
    let tc = test_case();
    let model_trace = run_model(&domain, SchedPolicy::default(), &tc).expect("model runs");
    let chimes = model_trace.iter().filter(|e| e.event == "chime").count();
    assert_eq!(chimes, 3);
    assert!(model_trace.iter().any(|e| e.actor == "LOGGER"));

    // Compile under the marks; check the derived artefacts.
    let design = ModelCompiler::new()
        .compile(&domain, &marks)
        .expect("compiles");
    assert_eq!(design.params.cpu_khz, 120_000);
    assert_eq!(design.params.bus_latency, 3);
    assert_eq!(design.interface.channels.len(), 1, "only Ring crosses");
    assert!(design.c_code.contains("Button_dispatch"));
    assert!(design.vhdl_code.contains("entity Chimer_fsm"));
    assert!(design
        .vhdl_code
        .contains("generic (QUEUE_DEPTH : positive := 8)"));

    // Co-simulate and compare observable traces.
    let impl_trace = run_compiled(&design, &tc).expect("cosim runs");
    let report = check_equivalence(&model_trace, &impl_trace);
    assert!(report.is_equivalent(), "{:#?}", report.divergences);
}

#[test]
fn printed_model_is_the_same_model() {
    let domain = parse_domain(MODEL).unwrap();
    let reparsed = parse_domain(&print_domain(&domain)).unwrap();
    assert_eq!(domain, reparsed);

    let (name, marks) = parse_marks(MARKS).unwrap();
    let (name2, marks2) = parse_marks(&print_marks(&name, &marks)).unwrap();
    assert_eq!(name, name2);
    assert_eq!(marks, marks2);
}

#[test]
fn moving_the_mark_moves_the_partition_not_the_model() {
    let domain = parse_domain(MODEL).unwrap();
    let tc = test_case();
    let model_trace = run_model(&domain, SchedPolicy::default(), &tc).unwrap();

    // Four placements of the two classes.
    for (button_hw, chimer_hw) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut marks = MarkSet::new();
        if button_hw {
            marks.mark_hardware("Button");
        }
        if chimer_hw {
            marks.mark_hardware("Chimer");
        }
        let design = ModelCompiler::new().compile(&domain, &marks).unwrap();
        let impl_trace = run_compiled(&design, &tc).unwrap();
        let report = check_equivalence(&model_trace, &impl_trace);
        assert!(
            report.is_equivalent(),
            "partition (button_hw={button_hw}, chimer_hw={chimer_hw}) diverged: {:?}",
            report.divergences
        );
    }
}

#[test]
fn model_level_attributes_match_cosim_attributes() {
    let domain = parse_domain(MODEL).unwrap();
    let tc = test_case();

    // Model side.
    let mut sim = Simulation::new(&domain);
    let b = sim.create("Button").unwrap();
    let c = sim.create("Chimer").unwrap();
    sim.relate(b, c, "R1").unwrap();
    for s in &tc.stimuli {
        sim.inject(s.time, b, &s.event, s.args.clone()).unwrap();
    }
    sim.run_to_quiescence().unwrap();

    // Cosim side (hardware chimer).
    let mut marks = MarkSet::new();
    marks.mark_hardware("Chimer");
    marks.set(ElemRef::domain(), keys::BUS_LATENCY, 2i64);
    let design = ModelCompiler::new().compile(&domain, &marks).unwrap();
    let mut sys = design.instantiate();
    let b2 = sys.create("Button").unwrap();
    let c2 = sys.create("Chimer").unwrap();
    sys.relate(b2, c2, "R1").unwrap();
    for s in &tc.stimuli {
        sys.inject(s.time, b2, &s.event, s.args.clone()).unwrap();
    }
    sys.run_to_quiescence().unwrap();

    assert_eq!(
        sim.attr(b, "presses").unwrap(),
        sys.attr(b2, "presses").unwrap()
    );
    assert_eq!(
        sim.attr(c, "rings").unwrap(),
        sys.attr(c2, "rings").unwrap()
    );
    assert_eq!(sim.attr(c, "rings").unwrap(), Value::Int(3));
}
