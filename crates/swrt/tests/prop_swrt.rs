//! Property tests for the software-runtime substrate: the scheduler
//! against a sort-based reference, the timer wheel against a reference
//! ordering, and CPU time conversion laws.

use proptest::prelude::*;
use xtuml_swrt::{Cpu, Scheduler, TimerWheel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Drain order equals the stable sort of (priority, enqueue index).
    #[test]
    fn prop_scheduler_matches_stable_sort(jobs in proptest::collection::vec(0u8..5, 0..50)) {
        let mut sched = Scheduler::new();
        for (i, prio) in jobs.iter().enumerate() {
            sched.post(*prio, i);
        }
        let drained: Vec<usize> = std::iter::from_fn(|| sched.pop().map(|j| j.payload)).collect();
        let mut expected: Vec<(u8, usize)> =
            jobs.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        expected.sort_by_key(|(p, i)| (*p, *i)); // stable by construction
        let expected: Vec<usize> = expected.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(drained, expected);
        prop_assert!(sched.is_empty());
        prop_assert_eq!(sched.max_backlog(), jobs.len());
    }

    /// Interleaved post/pop keeps counts consistent and never pops a
    /// lower-urgency job while a higher-urgency one waits.
    #[test]
    fn prop_scheduler_priority_invariant(
        ops in proptest::collection::vec(prop_oneof![(0u8..4).prop_map(Some), Just(None)], 0..60),
    ) {
        let mut sched = Scheduler::new();
        let mut pending: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                Some(p) => {
                    sched.post(p, p);
                    pending.push(p);
                }
                None => {
                    let popped = sched.pop();
                    match popped {
                        None => prop_assert!(pending.is_empty()),
                        Some(job) => {
                            let min = *pending.iter().min().unwrap();
                            prop_assert_eq!(job.priority, min);
                            let idx = pending.iter().position(|p| *p == min).unwrap();
                            pending.remove(idx);
                        }
                    }
                }
            }
            prop_assert_eq!(sched.len(), pending.len());
        }
    }

    /// The timer wheel releases exactly the due set, ordered by
    /// (deadline, arm order), and never loses a timer.
    #[test]
    fn prop_timer_wheel_release_order(
        arms in proptest::collection::vec(0u64..50, 0..40),
        cut in 0u64..60,
    ) {
        let mut wheel = TimerWheel::new();
        for (i, d) in arms.iter().enumerate() {
            wheel.arm(*d, (*d, i));
        }
        let due = wheel.pop_due(cut);
        let mut expected: Vec<(u64, usize)> = arms
            .iter()
            .enumerate()
            .filter(|(_, d)| **d <= cut)
            .map(|(i, d)| (*d, i))
            .collect();
        expected.sort();
        let expected_len = expected.len();
        prop_assert_eq!(due, expected);
        prop_assert_eq!(wheel.len(), arms.iter().filter(|d| **d > cut).count());
        // Everything else releases at the horizon.
        let rest = wheel.pop_due(u64::MAX);
        prop_assert_eq!(rest.len() + expected_len, arms.len());
        prop_assert!(wheel.is_empty());
    }

    /// Cycle→time conversion is monotone and consistent with the clock
    /// rate.
    #[test]
    fn prop_cpu_time_conversion(khz in 1u64..1_000_000, cycles in 0u64..1_000_000) {
        let mut cpu = Cpu::new(khz);
        cpu.consume(cycles);
        prop_assert_eq!(cpu.cycles(), cycles);
        prop_assert_eq!(cpu.micros(), cycles * 1000 / khz);
        prop_assert_eq!(cpu.cycles_to_micros(cycles), cpu.micros());
        let before = cpu.micros();
        cpu.consume(khz); // one more millisecond of work
        prop_assert!(cpu.micros() >= before);
    }
}
