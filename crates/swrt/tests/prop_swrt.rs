//! Property tests for the software-runtime substrate: the scheduler
//! against a sort-based reference, the timer wheel against a reference
//! ordering, and CPU time conversion laws.
//!
//! Runs offline on the in-repo `xtuml-prop` harness; reproduce a failure
//! with the `XTUML_PROP_SEED` value printed on panic.

use xtuml_swrt::{Cpu, Scheduler, TimerWheel};

/// Drain order equals the stable sort of (priority, enqueue index).
#[test]
fn prop_scheduler_matches_stable_sort() {
    xtuml_prop::run("scheduler_matches_stable_sort", |g| {
        let jobs: Vec<u8> = (0..g.index(50)).map(|_| g.below(5) as u8).collect();
        let mut sched = Scheduler::new();
        for (i, prio) in jobs.iter().enumerate() {
            sched.post(*prio, i);
        }
        let drained: Vec<usize> = std::iter::from_fn(|| sched.pop().map(|j| j.payload)).collect();
        let mut expected: Vec<(u8, usize)> =
            jobs.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        expected.sort_by_key(|(p, i)| (*p, *i)); // stable by construction
        let expected: Vec<usize> = expected.into_iter().map(|(_, i)| i).collect();
        assert_eq!(drained, expected);
        assert!(sched.is_empty());
        assert_eq!(sched.max_backlog(), jobs.len());
    });
}

/// Interleaved post/pop keeps counts consistent and never pops a
/// lower-urgency job while a higher-urgency one waits.
#[test]
fn prop_scheduler_priority_invariant() {
    xtuml_prop::run("scheduler_priority_invariant", |g| {
        let ops: Vec<Option<u8>> = (0..g.index(60))
            .map(|_| {
                if g.ratio(2, 3) {
                    Some(g.below(4) as u8)
                } else {
                    None
                }
            })
            .collect();
        let mut sched = Scheduler::new();
        let mut pending: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                Some(p) => {
                    sched.post(p, p);
                    pending.push(p);
                }
                None => {
                    let popped = sched.pop();
                    match popped {
                        None => assert!(pending.is_empty()),
                        Some(job) => {
                            let min = *pending.iter().min().unwrap();
                            assert_eq!(job.priority, min);
                            let idx = pending.iter().position(|p| *p == min).unwrap();
                            pending.remove(idx);
                        }
                    }
                }
            }
            assert_eq!(sched.len(), pending.len());
        }
    });
}

/// The timer wheel releases exactly the due set, ordered by (deadline,
/// arm order), and never loses a timer.
#[test]
fn prop_timer_wheel_release_order() {
    xtuml_prop::run("timer_wheel_release_order", |g| {
        let arms: Vec<u64> = (0..g.index(40)).map(|_| g.below(50)).collect();
        let cut = g.below(60);
        let mut wheel = TimerWheel::new();
        for (i, d) in arms.iter().enumerate() {
            wheel.arm(*d, (*d, i));
        }
        let due = wheel.pop_due(cut);
        let mut expected: Vec<(u64, usize)> = arms
            .iter()
            .enumerate()
            .filter(|(_, d)| **d <= cut)
            .map(|(i, d)| (*d, i))
            .collect();
        expected.sort();
        let expected_len = expected.len();
        assert_eq!(due, expected);
        assert_eq!(wheel.len(), arms.iter().filter(|d| **d > cut).count());
        // Everything else releases at the horizon.
        let rest = wheel.pop_due(u64::MAX);
        assert_eq!(rest.len() + expected_len, arms.len());
        assert!(wheel.is_empty());
    });
}

/// Cycle→time conversion is monotone and consistent with the clock rate.
#[test]
fn prop_cpu_time_conversion() {
    xtuml_prop::run("cpu_time_conversion", |g| {
        let khz = 1 + g.below(999_999);
        let cycles = g.below(1_000_000);
        let mut cpu = Cpu::new(khz);
        cpu.consume(cycles);
        assert_eq!(cpu.cycles(), cycles);
        assert_eq!(cpu.micros(), cycles * 1000 / khz);
        assert_eq!(cpu.cycles_to_micros(cycles), cpu.micros());
        let before = cpu.micros();
        cpu.consume(khz); // one more millisecond of work
        assert!(cpu.micros() >= before);
    });
}
