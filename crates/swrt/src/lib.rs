//! # xtuml-swrt — the embedded software runtime model
//!
//! The software half of the toolchain. The paper's model compiler emits C
//! for an embedded target; this crate implements the *runtime architecture*
//! that generated C executes on — a CPU cycle model ([`Cpu`]), a
//! priority-scheduled run-to-completion event queue ([`Scheduler`]), a
//! software timer wheel ([`TimerWheel`]) and the memory-mapped I/O trait
//! ([`Mmio`]) through which the generated driver talks to the hardware
//! partition.
//!
//! The architecture mirrors what xtUML model compilers actually generate:
//! a single dispatch loop pops the highest-priority pending event and runs
//! the receiving instance's state action to completion; actions cost
//! cycles; the CPU clock converts cycles to time so the co-simulation can
//! align the software partition with the hardware clock.
//!
//! ```
//! use xtuml_swrt::{Cpu, Scheduler};
//!
//! let mut cpu = Cpu::new(100_000); // 100 MHz
//! let mut sched: Scheduler<&str> = Scheduler::new();
//! sched.post(1, "low");
//! sched.post(0, "high");      // numerically lower = more urgent
//! sched.post(1, "low2");
//! assert_eq!(sched.pop().unwrap().payload, "high");
//! assert_eq!(sched.pop().unwrap().payload, "low");
//! assert_eq!(sched.pop().unwrap().payload, "low2");
//! cpu.consume(250);
//! assert_eq!(cpu.cycles(), 250);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod cpu;
pub mod mmio;
pub mod sched;
pub mod timer;

pub use cpu::Cpu;
pub use mmio::Mmio;
pub use sched::{Job, Scheduler};
pub use timer::TimerWheel;
