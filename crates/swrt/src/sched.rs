//! The run-to-completion event scheduler of the generated software.
//!
//! A strict-priority queue: the dispatch loop always pops the pending job
//! with the numerically lowest priority value; jobs of equal priority are
//! served FIFO (which is what preserves per-pair signal order inside the
//! software partition).

use std::collections::{BTreeMap, VecDeque};

/// A queued unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job<P> {
    /// Priority; lower value = more urgent.
    pub priority: u8,
    /// Monotonic enqueue sequence (global across priorities).
    pub seq: u64,
    /// Caller-defined payload.
    pub payload: P,
}

/// Strict-priority, FIFO-within-priority scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler<P> {
    queues: BTreeMap<u8, VecDeque<Job<P>>>,
    seq: u64,
    len: usize,
    /// High-water mark across all queues.
    max_backlog: usize,
}

impl<P> Default for Scheduler<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> Scheduler<P> {
    /// Creates an empty scheduler.
    pub fn new() -> Scheduler<P> {
        Scheduler {
            queues: BTreeMap::new(),
            seq: 0,
            len: 0,
            max_backlog: 0,
        }
    }

    /// Enqueues a job at the given priority; returns its sequence number.
    pub fn post(&mut self, priority: u8, payload: P) -> u64 {
        self.seq += 1;
        self.queues.entry(priority).or_default().push_back(Job {
            priority,
            seq: self.seq,
            payload,
        });
        self.len += 1;
        self.max_backlog = self.max_backlog.max(self.len);
        self.seq
    }

    /// Pops the most urgent pending job.
    pub fn pop(&mut self) -> Option<Job<P>> {
        let (&prio, _) = self.queues.iter().find(|(_, q)| !q.is_empty())?;
        let job = self.queues.get_mut(&prio)?.pop_front()?;
        self.len -= 1;
        Some(job)
    }

    /// Pending job count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest backlog observed (dimensioning data for queue-depth marks).
    pub fn max_backlog(&self) -> usize {
        self.max_backlog
    }

    /// Drops every pending job matching the predicate; returns how many
    /// were removed (used when an instance is deleted).
    pub fn drop_matching(&mut self, mut pred: impl FnMut(&P) -> bool) -> usize {
        let mut removed = 0;
        for q in self.queues.values_mut() {
            let before = q.len();
            q.retain(|j| !pred(&j.payload));
            removed += before - q.len();
        }
        self.len -= removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_fifo() {
        let mut s = Scheduler::new();
        s.post(2, "c1");
        s.post(0, "a1");
        s.post(1, "b1");
        s.post(0, "a2");
        let order: Vec<&str> = std::iter::from_fn(|| s.pop().map(|j| j.payload)).collect();
        assert_eq!(order, vec!["a1", "a2", "b1", "c1"]);
        assert!(s.is_empty());
    }

    #[test]
    fn sequence_numbers_are_global_and_monotonic() {
        let mut s = Scheduler::new();
        let s1 = s.post(5, ());
        let s2 = s.post(0, ());
        assert!(s2 > s1);
    }

    #[test]
    fn backlog_high_water_mark() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.post(0, i);
        }
        for _ in 0..5 {
            s.pop();
        }
        s.post(0, 99);
        assert_eq!(s.max_backlog(), 10);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn drop_matching_removes_and_recounts() {
        let mut s = Scheduler::new();
        for i in 0..6 {
            s.post((i % 2) as u8, i);
        }
        let removed = s.drop_matching(|p| *p % 3 == 0);
        assert_eq!(removed, 2); // 0 and 3
        assert_eq!(s.len(), 4);
        let left: Vec<i32> = std::iter::from_fn(|| s.pop().map(|j| j.payload)).collect();
        // Priority 0 (even payloads) drains first, then priority 1.
        assert_eq!(left, vec![2, 4, 1, 5]);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(s.pop().is_none());
    }
}
