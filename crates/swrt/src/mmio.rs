//! Memory-mapped I/O: the software side of the generated HW/SW interface.
//!
//! The generated C driver reads and writes device registers through this
//! trait; in co-simulation the bridge implements it over the register file
//! the model compiler generated. Word-addressed, 32-bit registers —
//! exactly the shape of a simple AHB/APB peripheral.

/// A 32-bit, word-addressed register space.
pub trait Mmio {
    /// Reads the register at `addr` (word address).
    fn read(&mut self, addr: u32) -> u32;
    /// Writes the register at `addr` (word address).
    fn write(&mut self, addr: u32, value: u32);
}

/// A flat RAM-backed register space; useful for tests and as scratch
/// memory in software-only targets.
#[derive(Debug, Clone)]
pub struct RamMmio {
    words: Vec<u32>,
    /// Total accesses (reads + writes) — the bus-traffic metric.
    accesses: u64,
}

impl RamMmio {
    /// Creates a register space with `words` 32-bit registers, zeroed.
    pub fn new(words: usize) -> RamMmio {
        RamMmio {
            words: vec![0; words],
            accesses: 0,
        }
    }

    /// Total bus accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

impl Mmio for RamMmio {
    fn read(&mut self, addr: u32) -> u32 {
        self.accesses += 1;
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    fn write(&mut self, addr: u32, value: u32) {
        self.accesses += 1;
        if let Some(w) = self.words.get_mut(addr as usize) {
            *w = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_read_write() {
        let mut m = RamMmio::new(8);
        m.write(3, 0xDEAD_BEEF);
        assert_eq!(m.read(3), 0xDEAD_BEEF);
        assert_eq!(m.read(0), 0);
        assert_eq!(m.accesses(), 3);
    }

    #[test]
    fn out_of_range_reads_zero_writes_ignored() {
        let mut m = RamMmio::new(2);
        m.write(100, 7);
        assert_eq!(m.read(100), 0);
    }

    #[test]
    fn trait_object_usable() {
        let mut m = RamMmio::new(4);
        let dynm: &mut dyn Mmio = &mut m;
        dynm.write(1, 42);
        assert_eq!(dynm.read(1), 42);
    }
}
