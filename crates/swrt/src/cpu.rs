//! CPU cycle accounting.
//!
//! The generated software's cost model is deliberately coarse: every
//! primitive action step costs a configurable number of CPU cycles
//! (default [`Cpu::DEFAULT_CYCLES_PER_STEP`]), every dispatch has a fixed
//! overhead. What matters for the paper's claims is not absolute accuracy
//! but that the software partition runs on a *clocked* platform whose
//! speed differs from the hardware's, so partition choices have visible
//! performance consequences.

/// A single-core CPU clock model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cpu {
    khz: u64,
    cycles: u64,
    cycles_per_step: u64,
    dispatch_overhead: u64,
}

impl Cpu {
    /// Default cost of one interpreted action step, in CPU cycles.
    pub const DEFAULT_CYCLES_PER_STEP: u64 = 12;
    /// Default fixed cost of one event dispatch (queue pop, state lookup).
    pub const DEFAULT_DISPATCH_OVERHEAD: u64 = 40;

    /// Creates a CPU clocked at `khz` kilohertz.
    ///
    /// # Panics
    ///
    /// Panics if `khz` is zero.
    pub fn new(khz: u64) -> Cpu {
        assert!(khz > 0, "CPU clock must be nonzero");
        Cpu {
            khz,
            cycles: 0,
            cycles_per_step: Self::DEFAULT_CYCLES_PER_STEP,
            dispatch_overhead: Self::DEFAULT_DISPATCH_OVERHEAD,
        }
    }

    /// Overrides the per-step cost (for calibration experiments).
    pub fn set_cycles_per_step(&mut self, c: u64) {
        self.cycles_per_step = c;
    }

    /// The clock rate in kHz.
    pub fn khz(&self) -> u64 {
        self.khz
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Consumes raw cycles.
    pub fn consume(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Consumes the cost of `steps` interpreted action steps plus one
    /// dispatch overhead; returns the cycles charged.
    pub fn charge_dispatch(&mut self, steps: u64) -> u64 {
        let c = self.dispatch_overhead + steps * self.cycles_per_step;
        self.cycles += c;
        c
    }

    /// Elapsed time in microseconds at the configured clock rate.
    pub fn micros(&self) -> u64 {
        // cycles / (khz * 1000) seconds = cycles * 1000 / khz µs.
        self.cycles * 1000 / self.khz
    }

    /// Converts a cycle count at this CPU's clock into microseconds.
    pub fn cycles_to_micros(&self, cycles: u64) -> u64 {
        cycles * 1000 / self.khz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accounting() {
        let mut cpu = Cpu::new(1_000); // 1 MHz
        cpu.consume(500);
        assert_eq!(cpu.cycles(), 500);
        assert_eq!(cpu.micros(), 500);
    }

    #[test]
    fn dispatch_charging() {
        let mut cpu = Cpu::new(100_000);
        let charged = cpu.charge_dispatch(10);
        assert_eq!(
            charged,
            Cpu::DEFAULT_DISPATCH_OVERHEAD + 10 * Cpu::DEFAULT_CYCLES_PER_STEP
        );
        assert_eq!(cpu.cycles(), charged);
    }

    #[test]
    fn custom_step_cost() {
        let mut cpu = Cpu::new(100_000);
        cpu.set_cycles_per_step(1);
        assert_eq!(cpu.charge_dispatch(5), Cpu::DEFAULT_DISPATCH_OVERHEAD + 5);
    }

    #[test]
    fn faster_clock_means_less_time() {
        let mut slow = Cpu::new(1_000);
        let mut fast = Cpu::new(100_000);
        slow.consume(10_000);
        fast.consume(10_000);
        assert!(slow.micros() > fast.micros());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_clock_panics() {
        let _ = Cpu::new(0);
    }
}
