//! A software timer wheel.
//!
//! Generated software arms timers for `gen ... after n;` signals; the
//! wheel releases them when the CPU clock passes their deadline. Deadlines
//! are in CPU cycles; ties release in arm order.

/// A pending timer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<P> {
    deadline: u64,
    seq: u64,
    payload: P,
}

/// Deadline-ordered timer store.
#[derive(Debug, Clone)]
pub struct TimerWheel<P> {
    entries: Vec<Entry<P>>,
    seq: u64,
}

impl<P> Default for TimerWheel<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> TimerWheel<P> {
    /// Creates an empty wheel.
    pub fn new() -> TimerWheel<P> {
        TimerWheel {
            entries: Vec::new(),
            seq: 0,
        }
    }

    /// Arms a timer for `deadline` (absolute cycles).
    pub fn arm(&mut self, deadline: u64, payload: P) {
        self.seq += 1;
        self.entries.push(Entry {
            deadline,
            seq: self.seq,
            payload,
        });
    }

    /// Releases every timer with `deadline <= now`, in (deadline, arm)
    /// order.
    pub fn pop_due(&mut self, now: u64) -> Vec<P> {
        let mut due: Vec<Entry<P>> = Vec::new();
        let mut keep: Vec<Entry<P>> = Vec::new();
        for e in self.entries.drain(..) {
            if e.deadline <= now {
                due.push(e);
            } else {
                keep.push(e);
            }
        }
        self.entries = keep;
        due.sort_by_key(|e| (e.deadline, e.seq));
        due.into_iter().map(|e| e.payload).collect()
    }

    /// Cancels timers matching the predicate; returns how many.
    pub fn cancel_matching(&mut self, mut pred: impl FnMut(&P) -> bool) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !pred(&e.payload));
        before - self.entries.len()
    }

    /// The earliest pending deadline.
    pub fn next_deadline(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.deadline).min()
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_deadline_then_arm_order() {
        let mut w = TimerWheel::new();
        w.arm(20, "late");
        w.arm(10, "early1");
        w.arm(10, "early2");
        assert_eq!(w.next_deadline(), Some(10));
        assert_eq!(w.pop_due(5), Vec::<&str>::new());
        assert_eq!(w.pop_due(10), vec!["early1", "early2"]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(100), vec!["late"]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_matching_removes() {
        let mut w = TimerWheel::new();
        w.arm(10, 1);
        w.arm(20, 2);
        w.arm(30, 1);
        assert_eq!(w.cancel_matching(|p| *p == 1), 2);
        assert_eq!(w.pop_due(100), vec![2]);
    }

    #[test]
    fn empty_wheel_behaviour() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
        assert!(w.pop_due(1_000).is_empty());
    }
}
