//! Parser for model files (`domain ... ;` declarations).
//!
//! Declaration parsing reuses the core lexer and hands action bodies to
//! the core action parser with the declared actor names in scope. Because
//! actors may be declared after the classes that signal them, parsing is
//! two-pass: a cheap token scan collects actor names first.

use std::collections::BTreeSet;
use xtuml_core::builder::{ActorBuilder, ClassBuilder, DomainBuilder};
use xtuml_core::diag::SourceMap;
use xtuml_core::error::{CoreError, Result};
use xtuml_core::lex::{lex, Spanned, Tok};
use xtuml_core::model::{Domain, Multiplicity};
use xtuml_core::parse::Parser;
use xtuml_core::value::{DataType, Value};

/// Parses a complete model file into a validated [`Domain`].
///
/// # Errors
///
/// Returns lexical, syntax, resolution, structural-validation or type
/// errors — a domain returned by this function is ready to execute.
pub fn parse_domain(src: &str) -> Result<Domain> {
    let (builder, _spans) = parse_to_builder(src)?;
    builder.build()
}

/// Parses a model file for *linting*: name resolution and indexing run,
/// but whole-model validation does **not** — structural and type findings
/// are left for the caller to accumulate (via
/// `xtuml_core::validate::validate_into`). Also returns the
/// [`SourceMap`] of declaration positions so diagnostics can point at
/// real source locations.
///
/// # Errors
///
/// Returns lexical, syntax and name-resolution errors — defects that
/// leave no coherent model to lint.
pub fn parse_domain_for_lint(src: &str) -> Result<(Domain, SourceMap)> {
    let (builder, spans) = parse_to_builder(src)?;
    Ok((builder.build_unvalidated()?, spans))
}

fn parse_to_builder(src: &str) -> Result<(DomainBuilder, SourceMap)> {
    let toks = lex(src)?;
    let actors = scan_actor_names(&toks);
    let mut p = Parser::with_actors(&toks, actors);
    let mut spans = SourceMap::new();

    p.expect_kw("domain")?;
    let name = p.expect_ident()?;
    p.expect(&Tok::Semi)?;

    let mut builder = DomainBuilder::new(&name);
    loop {
        if p.eat_kw("class") {
            let pos = p.pos();
            let name = p.expect_ident()?;
            spans.record(SourceMap::class_key(&name), pos);
            parse_class(&mut p, builder.class(&name), &name, &mut spans)?;
        } else if p.eat_kw("actor") {
            let pos = p.pos();
            let name = p.expect_ident()?;
            spans.record(SourceMap::actor_key(&name), pos);
            parse_actor(&mut p, builder.actor(&name))?;
        } else if p.eat_kw("assoc") {
            parse_assoc(&mut p, &mut builder, &mut spans)?;
        } else if p.peek() == &Tok::Eof {
            break;
        } else {
            return Err(CoreError::Parse {
                pos: p.pos(),
                msg: format!("expected `class`, `actor` or `assoc`, found {}", p.peek()),
            });
        }
    }
    Ok((builder, spans))
}

/// First pass: find every `actor <Name>` pair in the token stream.
fn scan_actor_names(toks: &[Spanned]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for w in toks.windows(2) {
        if let (Tok::Ident(kw), Tok::Ident(name)) = (&w[0].tok, &w[1].tok) {
            if kw == "actor" {
                names.insert(name.clone());
            }
        }
    }
    names
}

fn parse_type(p: &mut Parser<'_>) -> Result<DataType> {
    let name = p.expect_ident()?;
    match name.as_str() {
        "bool" => Ok(DataType::Bool),
        "int" => Ok(DataType::Int),
        "real" => Ok(DataType::Real),
        "string" => Ok(DataType::Str),
        other => Err(CoreError::Parse {
            pos: p.pos(),
            msg: format!(
                "unknown type `{other}` (attribute and parameter types must be scalar: bool, int, real, string)"
            ),
        }),
    }
}

fn parse_literal(p: &mut Parser<'_>) -> Result<Value> {
    let neg = p.eat(&Tok::Minus);
    match p.next() {
        Tok::Int(v) => Ok(Value::Int(if neg { -v } else { v })),
        Tok::Real(v) => Ok(Value::Real(if neg { -v } else { v })),
        Tok::Str(s) if !neg => Ok(Value::Str(s)),
        Tok::Ident(w) if w == "true" && !neg => Ok(Value::Bool(true)),
        Tok::Ident(w) if w == "false" && !neg => Ok(Value::Bool(false)),
        other => Err(CoreError::Parse {
            pos: p.pos(),
            msg: format!("expected literal default value, found {other}"),
        }),
    }
}

fn parse_params(p: &mut Parser<'_>) -> Result<Vec<(String, DataType)>> {
    p.expect(&Tok::LParen)?;
    let mut params = Vec::new();
    if p.peek() != &Tok::RParen {
        loop {
            let name = p.expect_ident()?;
            p.expect(&Tok::Colon)?;
            let ty = parse_type(p)?;
            params.push((name, ty));
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
    }
    p.expect(&Tok::RParen)?;
    Ok(params)
}

fn parse_class(
    p: &mut Parser<'_>,
    cb: &mut ClassBuilder,
    class_name: &str,
    spans: &mut SourceMap,
) -> Result<()> {
    p.expect(&Tok::LBrace)?;
    loop {
        if p.eat_kw("attr") {
            let pos = p.pos();
            let name = p.expect_ident()?;
            spans.record(SourceMap::attr_key(class_name, &name), pos);
            p.expect(&Tok::Colon)?;
            let ty = parse_type(p)?;
            if p.eat(&Tok::Assign) {
                let v = parse_literal(p)?;
                if v.data_type() != ty {
                    return Err(CoreError::Parse {
                        pos: p.pos(),
                        msg: format!("default value type {} != declared {ty}", v.data_type()),
                    });
                }
                cb.attr_default(&name, ty, v);
            } else {
                cb.attr(&name, ty);
            }
            p.expect(&Tok::Semi)?;
        } else if p.eat_kw("event") {
            let pos = p.pos();
            let name = p.expect_ident()?;
            spans.record(SourceMap::event_key(class_name, &name), pos);
            let params = parse_params(p)?;
            let refs: Vec<(&str, DataType)> =
                params.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            cb.event(&name, &refs);
            p.expect(&Tok::Semi)?;
        } else if p.eat_kw("initial") {
            let name = p.expect_ident()?;
            cb.initial(&name);
            p.expect(&Tok::Semi)?;
        } else if p.eat_kw("state") {
            let pos = p.pos();
            let name = p.expect_ident()?;
            spans.record(SourceMap::state_key(class_name, &name), pos);
            let block = p.parse_braced_block()?;
            cb.state_block(&name, block);
        } else if p.eat_kw("on") {
            let pos = p.pos();
            let from = p.expect_ident()?;
            p.expect(&Tok::Colon)?;
            let event = p.expect_ident()?;
            spans.record(SourceMap::transition_key(class_name, &from, &event), pos);
            if p.eat(&Tok::Arrow) {
                let to = p.expect_ident()?;
                cb.transition(&from, &event, &to);
            } else if p.eat_kw("ignore") {
                cb.ignore(&from, &event);
            } else {
                return Err(CoreError::Parse {
                    pos: p.pos(),
                    msg: format!("expected `->` or `ignore`, found {}", p.peek()),
                });
            }
            p.expect(&Tok::Semi)?;
        } else if p.eat(&Tok::RBrace) {
            return Ok(());
        } else {
            return Err(CoreError::Parse {
                pos: p.pos(),
                msg: format!(
                    "expected `attr`, `event`, `initial`, `state`, `on` or `}}`, found {}",
                    p.peek()
                ),
            });
        }
    }
}

fn parse_actor(p: &mut Parser<'_>, ab: &mut ActorBuilder) -> Result<()> {
    p.expect(&Tok::LBrace)?;
    loop {
        if p.eat_kw("signal") {
            let name = p.expect_ident()?;
            let params = parse_params(p)?;
            let refs: Vec<(&str, DataType)> =
                params.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            ab.event(&name, &refs);
            p.expect(&Tok::Semi)?;
        } else if p.eat_kw("func") {
            let name = p.expect_ident()?;
            let params = parse_params(p)?;
            let ret = if p.eat(&Tok::Arrow) {
                Some(parse_type(p)?)
            } else {
                None
            };
            let refs: Vec<(&str, DataType)> =
                params.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            ab.func(&name, &refs, ret);
            p.expect(&Tok::Semi)?;
        } else if p.eat(&Tok::RBrace) {
            return Ok(());
        } else {
            return Err(CoreError::Parse {
                pos: p.pos(),
                msg: format!("expected `signal`, `func` or `}}`, found {}", p.peek()),
            });
        }
    }
}

fn parse_mult(p: &mut Parser<'_>) -> Result<Multiplicity> {
    let word = p.expect_ident()?;
    match word.as_str() {
        "one" => Ok(Multiplicity::One),
        "maybe" => Ok(Multiplicity::ZeroOne),
        "many" => Ok(Multiplicity::Many),
        other => Err(CoreError::Parse {
            pos: p.pos(),
            msg: format!("expected multiplicity `one`, `maybe` or `many`, found `{other}`"),
        }),
    }
}

fn parse_assoc(
    p: &mut Parser<'_>,
    builder: &mut DomainBuilder,
    spans: &mut SourceMap,
) -> Result<()> {
    // assoc R1: From one -- To many;
    let pos = p.pos();
    let name = p.expect_ident()?;
    spans.record(SourceMap::assoc_key(&name), pos);
    p.expect(&Tok::Colon)?;
    let from = p.expect_ident()?;
    let from_mult = parse_mult(p)?;
    p.expect(&Tok::DashDash)?;
    let to = p.expect_ident()?;
    let to_mult = parse_mult(p)?;
    p.expect(&Tok::Semi)?;
    builder.association(&name, &from, from_mult, &to, to_mult);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLINKER: &str = r#"
domain Blinker;

actor ENV {
    signal blinked(count: int);
    func now() -> int;
    func info(msg: string);
}

class Led {
    attr on: bool;
    attr blinks: int = 0;

    event Toggle();
    event SetRate(hz: int);

    initial Off;

    state Off {
        self.on = false;
    }
    state On {
        self.on = true;
        self.blinks = self.blinks + 1;
        gen blinked(self.blinks) to ENV;
    }

    on Off: Toggle -> On;
    on On: Toggle -> Off;
    on Off: SetRate ignore;
}

class Board {
    attr name: string = "b0";
}

assoc R1: Board one -- Led many;
"#;

    #[test]
    fn parses_full_model() {
        let d = parse_domain(BLINKER).unwrap();
        assert_eq!(d.name, "Blinker");
        assert_eq!(d.classes.len(), 2);
        assert_eq!(d.actors.len(), 1);
        assert_eq!(d.associations.len(), 1);
        let led = d.class(d.class_id("Led").unwrap());
        assert_eq!(led.attributes.len(), 2);
        assert_eq!(led.events.len(), 2);
        let m = led.state_machine.as_ref().unwrap();
        assert_eq!(m.states.len(), 2);
        assert_eq!(m.transitions.len(), 3);
        let board = d.class(d.class_id("Board").unwrap());
        assert!(board.state_machine.is_none());
        assert_eq!(board.attributes[0].default, Value::Str("b0".into()));
        let env = d.actor(d.actor_id("ENV").unwrap());
        assert_eq!(env.events.len(), 1);
        assert_eq!(env.funcs.len(), 2);
        assert_eq!(env.funcs[0].ret, Some(DataType::Int));
        assert_eq!(env.funcs[1].ret, None);
    }

    #[test]
    fn actor_declared_after_class_still_resolves() {
        let src = r#"
domain D;
class C {
    event E();
    initial S;
    state S { gen ping() to OUT; }
    on S: E -> S;
}
actor OUT { signal ping(); }
"#;
        let d = parse_domain(src).unwrap();
        assert_eq!(d.actors.len(), 1);
    }

    #[test]
    fn negative_default_values() {
        let src = "domain D; class C { attr x: int = -5; attr y: real = -2.5; }";
        let d = parse_domain(src).unwrap();
        let c = d.class(d.class_id("C").unwrap());
        assert_eq!(c.attributes[0].default, Value::Int(-5));
        assert_eq!(c.attributes[1].default, Value::Real(-2.5));
    }

    #[test]
    fn default_type_mismatch_rejected() {
        assert!(parse_domain("domain D; class C { attr x: int = true; }").is_err());
    }

    #[test]
    fn nonscalar_attr_type_rejected() {
        assert!(parse_domain("domain D; class C { attr x: Lamp; }").is_err());
    }

    #[test]
    fn junk_at_top_level_rejected() {
        assert!(parse_domain("domain D; junk").is_err());
    }

    #[test]
    fn missing_transition_arrow_rejected() {
        let src = "domain D; class C { event E(); initial S; state S { } on S: E 5; }";
        assert!(parse_domain(src).is_err());
    }

    #[test]
    fn semantic_errors_surface() {
        // Transition references an unknown state.
        let src = "domain D; class C { event E(); initial S; state S { } on S: E -> T; }";
        assert!(parse_domain(src).is_err());
        // Action type error.
        let src =
            "domain D; class C { attr n: int; event E(); initial S; state S { self.n = true; } on S: E -> S; }";
        assert!(parse_domain(src).is_err());
    }

    #[test]
    fn lint_parse_records_declaration_spans() {
        let (d, spans) = parse_domain_for_lint(BLINKER).unwrap();
        assert_eq!(d.name, "Blinker");
        // Line numbers follow declaration order in the BLINKER source.
        let led = spans.get(&SourceMap::class_key("Led"));
        assert!(led.line > 0, "class span missing");
        let on_attr = spans.get(&SourceMap::attr_key("Led", "on"));
        let toggle = spans.get(&SourceMap::event_key("Led", "Toggle"));
        let off = spans.get(&SourceMap::state_key("Led", "Off"));
        let row = spans.get(&SourceMap::transition_key("Led", "Off", "Toggle"));
        let r1 = spans.get(&SourceMap::assoc_key("R1"));
        let env = spans.get(&SourceMap::actor_key("ENV"));
        for p in [on_attr, toggle, off, row, r1, env] {
            assert!(p.line > 0, "span missing: {spans:?}");
        }
        assert!(led.line < on_attr.line);
        assert!(on_attr.line < toggle.line);
        assert!(toggle.line < off.line);
        assert!(off.line < row.line);
        assert!(env.line < led.line);
    }

    #[test]
    fn lint_parse_skips_validation() {
        // A type error in an action must NOT fail parse_domain_for_lint —
        // it is the lint driver's job to report it with full accumulation.
        let src =
            "domain D; class C { attr n: int; event E(); initial S; state S { self.n = true; } on S: E -> S; }";
        assert!(parse_domain(src).is_err());
        let (d, _spans) = parse_domain_for_lint(src).unwrap();
        assert_eq!(d.classes.len(), 1);
    }

    #[test]
    fn multiplicities_parse() {
        let src = "domain D; class A { } class B { } assoc R1: A maybe -- B many;";
        let d = parse_domain(src).unwrap();
        assert_eq!(d.associations[0].from_mult, Multiplicity::ZeroOne);
        assert_eq!(d.associations[0].to_mult, Multiplicity::Many);
        assert!(parse_domain("domain D; class A { } assoc R1: A two -- A one;").is_err());
    }
}
