//! Pretty-printer: renders a [`Domain`] back to canonical model-file text.
//!
//! `parse_domain(print_domain(d)) == d` for every valid domain — the
//! property tests in `tests/` rely on this round trip, and the experiment
//! harness uses the printed form when reporting model sizes.

use std::fmt::Write as _;
use xtuml_core::model::{Domain, Multiplicity, TransitionTarget};
use xtuml_core::value::{DataType, Value};

fn type_name(ty: DataType) -> &'static str {
    match ty {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Real => "real",
        DataType::Str => "string",
        // Scalars only in the surface language; instance-typed
        // attributes cannot be declared, so this is unreachable for
        // parseable domains.
        DataType::Inst(_) => "inst",
        DataType::Set(_) => "set",
    }
}

fn literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        Value::Real(r) if r.fract() == 0.0 && r.is_finite() => format!("{r:.1}"),
        other => other.to_string(),
    }
}

fn params(out: &mut String, ps: &[(String, DataType)]) {
    out.push('(');
    for (i, (n, t)) in ps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{n}: {}", type_name(*t));
    }
    out.push(')');
}

fn mult(m: Multiplicity) -> &'static str {
    match m {
        Multiplicity::One => "one",
        Multiplicity::ZeroOne => "maybe",
        Multiplicity::Many => "many",
    }
}

/// Renders a domain as model-file text accepted by
/// [`parse_domain`](crate::parse_domain).
pub fn print_domain(domain: &Domain) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "domain {};", domain.name);

    for actor in &domain.actors {
        let _ = writeln!(out, "\nactor {} {{", actor.name);
        for ev in &actor.events {
            out.push_str("    signal ");
            out.push_str(&ev.name);
            params(&mut out, &ev.params);
            out.push_str(";\n");
        }
        for f in &actor.funcs {
            out.push_str("    func ");
            out.push_str(&f.name);
            params(&mut out, &f.params);
            if let Some(r) = f.ret {
                let _ = write!(out, " -> {}", type_name(r));
            }
            out.push_str(";\n");
        }
        out.push_str("}\n");
    }

    for class in &domain.classes {
        let _ = writeln!(out, "\nclass {} {{", class.name);
        for attr in &class.attributes {
            let _ = write!(out, "    attr {}: {}", attr.name, type_name(attr.ty));
            if attr.default != Value::default_for(attr.ty) {
                let _ = write!(out, " = {}", literal(&attr.default));
            }
            out.push_str(";\n");
        }
        for ev in &class.events {
            out.push_str("    event ");
            out.push_str(&ev.name);
            params(&mut out, &ev.params);
            out.push_str(";\n");
        }
        if let Some(machine) = &class.state_machine {
            let _ = writeln!(
                out,
                "\n    initial {};",
                machine.state(machine.initial).name
            );
            for state in &machine.states {
                let _ = writeln!(out, "\n    state {} {{", state.name);
                let body = state.action.to_string();
                for line in body.lines() {
                    let _ = writeln!(out, "        {line}");
                }
                out.push_str("    }\n");
            }
            out.push('\n');
            for t in &machine.transitions {
                let from = &machine.state(t.from).name;
                let event = &class.events[t.event.index()].name;
                match t.target {
                    TransitionTarget::To(s) => {
                        let _ =
                            writeln!(out, "    on {from}: {event} -> {};", machine.state(s).name);
                    }
                    TransitionTarget::Ignore => {
                        let _ = writeln!(out, "    on {from}: {event} ignore;");
                    }
                    TransitionTarget::CantHappen => {
                        // Implicit default; never printed.
                    }
                }
            }
        }
        out.push_str("}\n");
    }

    for assoc in &domain.associations {
        let _ = writeln!(
            out,
            "\nassoc {}: {} {} -- {} {};",
            assoc.name,
            domain.class(assoc.from).name,
            mult(assoc.from_mult),
            domain.class(assoc.to).name,
            mult(assoc.to_mult),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{parse_domain, print_domain};
    use xtuml_core::builder::pipeline_domain;

    const SRC: &str = r#"
domain Roundtrip;

actor ENV {
    signal out(v: int);
    func clock() -> int;
}

class Worker {
    attr count: int = 3;
    attr label: string = "w";

    event Go(step: int);
    event Halt();

    initial Idle;

    state Idle {
    }
    state Running {
        self.count = self.count + rcvd.step;
        if (self.count > 10) {
            gen out(self.count) to ENV;
        }
        gen Halt() to self after 5;
    }
    state Stopped {
        cancel Halt;
    }

    on Idle: Go -> Running;
    on Running: Go -> Running;
    on Running: Halt -> Stopped;
    on Stopped: Go ignore;
}

class Peer {
}

assoc R1: Worker one -- Peer many;
"#;

    #[test]
    fn print_parse_round_trip() {
        let d = parse_domain(SRC).unwrap();
        let printed = print_domain(&d);
        let reparsed = parse_domain(&printed).unwrap();
        assert_eq!(d, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn builder_models_round_trip_too() {
        for n in [1, 3, 6] {
            let d = pipeline_domain(n).unwrap();
            let printed = print_domain(&d);
            let reparsed = parse_domain(&printed).unwrap();
            assert_eq!(d, reparsed, "printed:\n{printed}");
        }
    }

    #[test]
    fn non_zero_defaults_are_printed() {
        let d = parse_domain("domain D; class C { attr x: int = 7; attr y: int; }").unwrap();
        let printed = print_domain(&d);
        assert!(printed.contains("attr x: int = 7;"));
        assert!(printed.contains("attr y: int;"));
        assert!(!printed.contains("y: int = 0"));
    }
}
