//! Parser and printer for mark files.
//!
//! Marks live in their own file, keyed to a domain by name, so the model
//! file is never edited to change the implementation mapping (paper §3):
//!
//! ```text
//! marks for Blinker;
//! mark class Led isHardware = true;
//! mark class Led queueDepth = 8;
//! mark domain cpuKhz = 100000;
//! mark actor ENV busLatency = 4;
//! ```

use xtuml_core::error::{CoreError, Result};
use xtuml_core::lex::{lex, Tok};
use xtuml_core::marks::{ElemKind, ElemRef, MarkSet, MarkValue};
use xtuml_core::parse::Parser;

/// Parses a mark file; returns the target domain name and the marks.
///
/// # Errors
///
/// Returns lexical or syntax errors. Mark *keys* are free-form by design
/// (mapping rules define which keys they understand), so unknown keys are
/// not errors here.
pub fn parse_marks(src: &str) -> Result<(String, MarkSet)> {
    let toks = lex(src)?;
    let mut p = Parser::new(&toks);
    p.expect_kw("marks")?;
    p.expect_kw("for")?;
    let domain = p.expect_ident()?;
    p.expect(&Tok::Semi)?;

    let mut marks = MarkSet::new();
    while p.peek() != &Tok::Eof {
        p.expect_kw("mark")?;
        let kind = p.expect_ident()?;
        let elem = match kind.as_str() {
            "domain" => ElemRef::domain(),
            "class" => ElemRef::class(p.expect_ident()?),
            "actor" => ElemRef::actor(p.expect_ident()?),
            "assoc" => ElemRef::assoc(p.expect_ident()?),
            other => {
                return Err(CoreError::Parse {
                    pos: p.pos(),
                    msg: format!("expected `domain`, `class`, `actor` or `assoc`, found `{other}`"),
                })
            }
        };
        let key = p.expect_ident()?;
        p.expect(&Tok::Assign)?;
        let neg = p.eat(&Tok::Minus);
        let value = match p.next() {
            Tok::Int(v) => MarkValue::Int(if neg { -v } else { v }),
            Tok::Str(s) if !neg => MarkValue::Str(s),
            Tok::Ident(w) if w == "true" && !neg => MarkValue::Bool(true),
            Tok::Ident(w) if w == "false" && !neg => MarkValue::Bool(false),
            other => {
                return Err(CoreError::Parse {
                    pos: p.pos(),
                    msg: format!("expected mark value, found {other}"),
                })
            }
        };
        p.expect(&Tok::Semi)?;
        marks.set(elem, key, value);
    }
    Ok((domain, marks))
}

/// Renders a mark set as a mark file for `domain`.
pub fn print_marks(domain: &str, marks: &MarkSet) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "marks for {domain};");
    for (elem, key, value) in marks.iter() {
        let target = match elem.kind {
            ElemKind::Domain => "domain".to_owned(),
            ElemKind::Class => format!("class {}", elem.name),
            ElemKind::Actor => format!("actor {}", elem.name),
            ElemKind::Assoc => format!("assoc {}", elem.name),
        };
        let _ = writeln!(out, "mark {target} {key} = {value};");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::marks::keys;

    #[test]
    fn parses_marks_of_all_kinds() {
        let src = r#"
marks for Blinker;
mark class Led isHardware = true;
mark class Led queueDepth = 8;
mark domain cpuKhz = 100000;
mark actor ENV label = "north";
mark assoc R1 weight = -2;
"#;
        let (domain, marks) = parse_marks(src).unwrap();
        assert_eq!(domain, "Blinker");
        assert_eq!(marks.len(), 5);
        assert!(marks.is_hardware("Led"));
        assert_eq!(
            marks.get_int_or(&ElemRef::class("Led"), keys::QUEUE_DEPTH, 0),
            8
        );
        assert_eq!(
            marks.get(&ElemRef::assoc("R1"), "weight"),
            Some(&MarkValue::Int(-2))
        );
        assert_eq!(
            marks.get(&ElemRef::actor("ENV"), "label"),
            Some(&MarkValue::Str("north".into()))
        );
    }

    #[test]
    fn round_trip() {
        let src = "marks for D;\nmark class A isHardware = true;\nmark domain cpuKhz = 5;\n";
        let (domain, marks) = parse_marks(src).unwrap();
        let printed = print_marks(&domain, &marks);
        let (d2, m2) = parse_marks(&printed).unwrap();
        assert_eq!(domain, d2);
        assert_eq!(marks, m2);
    }

    #[test]
    fn bad_target_kind_rejected() {
        assert!(parse_marks("marks for D; mark widget X k = 1;").is_err());
    }

    #[test]
    fn bad_value_rejected() {
        assert!(parse_marks("marks for D; mark class A k = ;").is_err());
        assert!(parse_marks("marks for D; mark class A k = -true;").is_err());
    }

    #[test]
    fn empty_mark_file_is_valid() {
        let (d, m) = parse_marks("marks for D;").unwrap();
        assert_eq!(d, "D");
        assert!(m.is_empty());
    }
}
