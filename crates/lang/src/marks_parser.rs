//! Parser and printer for mark files.
//!
//! Marks live in their own file, keyed to a domain by name, so the model
//! file is never edited to change the implementation mapping (paper §3):
//!
//! ```text
//! marks for Blinker;
//! mark class Led isHardware = true;
//! mark class Led queueDepth = 8;
//! mark domain cpuKhz = 100000;
//! mark actor ENV busLatency = 4;
//! ```

use xtuml_core::error::{CoreError, Pos, Result};
use xtuml_core::lex::{lex, Tok};
use xtuml_core::marks::{ElemKind, ElemRef, MarkSet, MarkValue};
use xtuml_core::parse::Parser;

/// Where one mark was declared, for span-accurate mark lints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkSpan {
    /// The marked element.
    pub elem: ElemRef,
    /// The mark key.
    pub key: String,
    /// Position of the `mark` keyword that declared it.
    pub pos: Pos,
}

/// Parses a mark file; returns the target domain name and the marks.
///
/// # Errors
///
/// Returns lexical or syntax errors. Mark *keys* are free-form by design
/// (mapping rules define which keys they understand), so unknown keys are
/// not errors here.
pub fn parse_marks(src: &str) -> Result<(String, MarkSet)> {
    let (domain, marks, _spans) = parse_marks_spanned(src)?;
    Ok((domain, marks))
}

/// Like [`parse_marks`], but also returns the position of every mark
/// declaration so mark lints can point at the offending line.
///
/// # Errors
///
/// Returns lexical or syntax errors.
pub fn parse_marks_spanned(src: &str) -> Result<(String, MarkSet, Vec<MarkSpan>)> {
    let toks = lex(src)?;
    let mut p = Parser::new(&toks);
    p.expect_kw("marks")?;
    p.expect_kw("for")?;
    let domain = p.expect_ident()?;
    p.expect(&Tok::Semi)?;

    let mut marks = MarkSet::new();
    let mut spans = Vec::new();
    while p.peek() != &Tok::Eof {
        let mark_pos = p.pos();
        p.expect_kw("mark")?;
        let kind = p.expect_ident()?;
        let elem = match kind.as_str() {
            "domain" => ElemRef::domain(),
            "class" => ElemRef::class(p.expect_ident()?),
            "actor" => ElemRef::actor(p.expect_ident()?),
            "assoc" => ElemRef::assoc(p.expect_ident()?),
            other => {
                return Err(CoreError::Parse {
                    pos: p.pos(),
                    msg: format!("expected `domain`, `class`, `actor` or `assoc`, found `{other}`"),
                })
            }
        };
        let key = p.expect_ident()?;
        p.expect(&Tok::Assign)?;
        let neg = p.eat(&Tok::Minus);
        let value = match p.next() {
            Tok::Int(v) => MarkValue::Int(if neg { -v } else { v }),
            Tok::Str(s) if !neg => MarkValue::Str(s),
            Tok::Ident(w) if w == "true" && !neg => MarkValue::Bool(true),
            Tok::Ident(w) if w == "false" && !neg => MarkValue::Bool(false),
            other => {
                return Err(CoreError::Parse {
                    pos: p.pos(),
                    msg: format!("expected mark value, found {other}"),
                })
            }
        };
        p.expect(&Tok::Semi)?;
        spans.push(MarkSpan {
            elem: elem.clone(),
            key: key.clone(),
            pos: mark_pos,
        });
        marks.set(elem, key, value);
    }
    Ok((domain, marks, spans))
}

/// Renders a mark set as a mark file for `domain`.
pub fn print_marks(domain: &str, marks: &MarkSet) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "marks for {domain};");
    for (elem, key, value) in marks.iter() {
        let target = match elem.kind {
            ElemKind::Domain => "domain".to_owned(),
            ElemKind::Class => format!("class {}", elem.name),
            ElemKind::Actor => format!("actor {}", elem.name),
            ElemKind::Assoc => format!("assoc {}", elem.name),
        };
        let _ = writeln!(out, "mark {target} {key} = {value};");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::marks::keys;

    #[test]
    fn parses_marks_of_all_kinds() {
        let src = r#"
marks for Blinker;
mark class Led isHardware = true;
mark class Led queueDepth = 8;
mark domain cpuKhz = 100000;
mark actor ENV label = "north";
mark assoc R1 weight = -2;
"#;
        let (domain, marks) = parse_marks(src).unwrap();
        assert_eq!(domain, "Blinker");
        assert_eq!(marks.len(), 5);
        assert!(marks.is_hardware("Led"));
        assert_eq!(
            marks.get_int_or(&ElemRef::class("Led"), keys::QUEUE_DEPTH, 0),
            8
        );
        assert_eq!(
            marks.get(&ElemRef::assoc("R1"), "weight"),
            Some(&MarkValue::Int(-2))
        );
        assert_eq!(
            marks.get(&ElemRef::actor("ENV"), "label"),
            Some(&MarkValue::Str("north".into()))
        );
    }

    #[test]
    fn round_trip() {
        let src = "marks for D;\nmark class A isHardware = true;\nmark domain cpuKhz = 5;\n";
        let (domain, marks) = parse_marks(src).unwrap();
        let printed = print_marks(&domain, &marks);
        let (d2, m2) = parse_marks(&printed).unwrap();
        assert_eq!(domain, d2);
        assert_eq!(marks, m2);
    }

    #[test]
    fn bad_target_kind_rejected() {
        assert!(parse_marks("marks for D; mark widget X k = 1;").is_err());
    }

    #[test]
    fn bad_value_rejected() {
        assert!(parse_marks("marks for D; mark class A k = ;").is_err());
        assert!(parse_marks("marks for D; mark class A k = -true;").is_err());
    }

    #[test]
    fn spanned_parse_reports_mark_positions() {
        let src = "marks for D;\nmark class A isHardware = true;\nmark domain cpuKhz = 5;\n";
        let (_, _, spans) = parse_marks_spanned(src).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].elem, ElemRef::class("A"));
        assert_eq!(spans[0].key, "isHardware");
        assert_eq!(spans[0].pos.line, 2);
        assert_eq!(spans[1].pos.line, 3);
    }

    #[test]
    fn empty_mark_file_is_valid() {
        let (d, m) = parse_marks("marks for D;").unwrap();
        assert_eq!(d, "D");
        assert!(m.is_empty());
    }
}
