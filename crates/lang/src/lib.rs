//! # xtuml-lang — the textual Executable UML model format
//!
//! BridgePoint-era xtUML tools captured models graphically; for a
//! reproducible, diffable toolchain we use a textual format instead (the
//! modeling *surface* is irrelevant to the paper's claims). A model file
//! declares one domain:
//!
//! ```text
//! domain Blinker;
//!
//! actor ENV {
//!     signal blinked(count: int);
//! }
//!
//! class Led {
//!     attr on: bool;
//!     attr blinks: int = 0;
//!
//!     event Toggle();
//!
//!     initial Off;
//!
//!     state Off {
//!         self.on = false;
//!     }
//!     state On {
//!         self.on = true;
//!         self.blinks = self.blinks + 1;
//!         gen blinked(self.blinks) to ENV;
//!     }
//!
//!     on Off: Toggle -> On;
//!     on On: Toggle -> Off;
//! }
//!
//! assoc R1: Led one -- Led many;
//! ```
//!
//! Marks live in a *separate* file (paper §3 — marks never pollute the
//! model):
//!
//! ```text
//! marks for Blinker;
//! mark class Led isHardware = true;
//! mark domain cpuKhz = 100000;
//! ```
//!
//! Attribute, event-parameter and bridge-function types are restricted to
//! the scalar types (`bool`, `int`, `real`, `string`): instance references
//! never cross the model boundary or the generated HW/SW interface, which
//! is what makes the mapping rules' interface generation total.
//!
//! ```
//! let src = "domain D; class C { attr n: int; event E(); initial S; state S { self.n = 1; } on S: E -> S; }";
//! let domain = xtuml_lang::parse_domain(src)?;
//! assert_eq!(domain.name, "D");
//! let printed = xtuml_lang::print_domain(&domain);
//! let reparsed = xtuml_lang::parse_domain(&printed)?;
//! assert_eq!(domain, reparsed);
//! # Ok::<(), xtuml_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
mod marks_parser;
mod model_parser;
mod printer;

pub use marks_parser::{parse_marks, parse_marks_spanned, print_marks, MarkSpan};
pub use model_parser::{parse_domain, parse_domain_for_lint};
pub use printer::print_domain;
