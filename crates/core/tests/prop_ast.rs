//! Property tests for the action-language front end:
//! * pretty-print → reparse is the identity on ASTs;
//! * the lexer never panics on arbitrary input;
//! * the parser never panics on arbitrary input.
//!
//! Runs offline on the in-repo `xtuml-prop` harness; reproduce a failure
//! with the `XTUML_PROP_SEED` value printed on panic.

use xtuml_core::action::{Block, Expr, GenTarget, LValue, Stmt};
use xtuml_core::error::Pos;
use xtuml_core::lex::lex;
use xtuml_core::parse::{parse_block, parse_expr};
use xtuml_core::value::{BinOp, UnOp, Value};
use xtuml_prop::Gen;

/// Variable names guaranteed not to collide with reserved words.
fn var_name(g: &mut Gen) -> String {
    format!("v{}", g.below(12))
}

fn class_name(g: &mut Gen) -> String {
    format!("Klass{}", g.below(4))
}

fn event_name(g: &mut Gen) -> String {
    format!("Ev{}", g.below(4))
}

fn assoc_name(g: &mut Gen) -> String {
    format!("R{}", 1 + g.below(4))
}

/// Literals restricted to forms whose `Display` the parser accepts
/// (non-negative numbers; escape-free strings).
fn literal(g: &mut Gen) -> Value {
    match g.below(4) {
        0 => Value::Bool(g.flip()),
        1 => Value::Int(g.int_in(0, 999_999)),
        2 => Value::Real(g.int_in(0, 7999) as f64 / 8.0),
        _ => {
            let len = g.index(13);
            let palette: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
            let mut s: String = (0..len).map(|_| *g.choose(&palette)).collect();
            if g.flip() && !s.is_empty() {
                s.insert(g.index(s.len()), ' ');
            }
            Value::Str(s)
        }
    }
}

const UNOPS: [UnOp; 9] = [
    UnOp::Neg,
    UnOp::Not,
    UnOp::Cardinality,
    UnOp::Empty,
    UnOp::NotEmpty,
    UnOp::Any,
    UnOp::ToInt,
    UnOp::ToReal,
    UnOp::ToStr,
];

const BINOPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::And,
    BinOp::Or,
];

fn expr(g: &mut Gen, depth: usize) -> Expr {
    if depth == 0 || g.ratio(1, 3) {
        return match g.below(4) {
            0 => Expr::Lit(literal(g)),
            1 => Expr::Var(var_name(g)),
            2 => Expr::SelfRef,
            _ => Expr::Param(var_name(g)),
        };
    }
    match g.below(5) {
        0 => Expr::Attr(Box::new(expr(g, depth - 1)), var_name(g)),
        1 => Expr::Nav(Box::new(expr(g, depth - 1)), class_name(g), assoc_name(g)),
        2 => Expr::Unary(*g.choose(&UNOPS), Box::new(expr(g, depth - 1))),
        3 => Expr::bin(*g.choose(&BINOPS), expr(g, depth - 1), expr(g, depth - 1)),
        _ => {
            let n = g.index(3);
            let args = (0..n).map(|_| expr(g, depth - 1)).collect();
            Expr::BridgeCall(class_name(g), var_name(g), args)
        }
    }
}

fn block(g: &mut Gen, depth: usize, max_len: usize) -> Block {
    let n = g.index(max_len + 1);
    Block {
        stmts: (0..n).map(|_| stmt(g, depth)).collect(),
    }
}

fn stmt(g: &mut Gen, depth: usize) -> Stmt {
    let p = Pos::UNKNOWN;
    let structured = depth > 0 && g.ratio(1, 4);
    if structured {
        return match g.below(3) {
            0 => {
                let arms = (0..1 + g.index(2))
                    .map(|_| (expr(g, 2), block(g, depth - 1, 2)))
                    .collect();
                let otherwise = if g.flip() {
                    Some(block(g, depth - 1, 2))
                } else {
                    None
                };
                Stmt::If {
                    arms,
                    otherwise,
                    pos: p,
                }
            }
            1 => Stmt::While {
                cond: expr(g, 2),
                body: block(g, depth - 1, 2),
                pos: p,
            },
            _ => Stmt::ForEach {
                var: var_name(g),
                set: expr(g, 2),
                body: block(g, depth - 1, 2),
                pos: p,
            },
        };
    }
    match g.below(12) {
        0 => {
            let lhs = if g.flip() {
                LValue::Var(var_name(g))
            } else {
                LValue::Attr(Expr::Var(var_name(g)), var_name(g))
            };
            Stmt::Assign {
                lhs,
                expr: expr(g, 2),
                pos: p,
            }
        }
        1 => Stmt::Create {
            var: var_name(g),
            class: class_name(g),
            pos: p,
        },
        2 => Stmt::Delete {
            expr: expr(g, 2),
            pos: p,
        },
        3 => Stmt::SelectAny {
            var: var_name(g),
            class: class_name(g),
            filter: if g.flip() { Some(expr(g, 2)) } else { None },
            pos: p,
        },
        4 => Stmt::SelectMany {
            var: var_name(g),
            class: class_name(g),
            filter: if g.flip() { Some(expr(g, 2)) } else { None },
            pos: p,
        },
        5 => Stmt::Relate {
            a: expr(g, 1),
            b: expr(g, 1),
            assoc: assoc_name(g),
            pos: p,
        },
        6 => Stmt::Unrelate {
            a: expr(g, 1),
            b: expr(g, 1),
            assoc: assoc_name(g),
            pos: p,
        },
        7 => {
            let n = g.index(3);
            Stmt::Generate {
                event: event_name(g),
                args: (0..n).map(|_| expr(g, 1)).collect(),
                target: GenTarget::Inst(expr(g, 1)),
                delay: if g.flip() { Some(expr(g, 1)) } else { None },
                pos: p,
            }
        }
        8 => Stmt::Cancel {
            event: event_name(g),
            pos: p,
        },
        9 => Stmt::Break { pos: p },
        10 => Stmt::Continue { pos: p },
        _ => {
            let n = g.index(2);
            Stmt::ExprStmt {
                expr: Expr::BridgeCall(
                    class_name(g),
                    var_name(g),
                    (0..n).map(|_| expr(g, 1)).collect(),
                ),
                pos: p,
            }
        }
    }
}

/// Printable noise, mostly ASCII with occasional multi-byte characters.
fn noise(g: &mut Gen, max_len: usize) -> String {
    let len = g.index(max_len + 1);
    (0..len)
        .map(|_| {
            if g.ratio(1, 8) {
                *g.choose(&['é', 'λ', '→', '字', '𝕏', '~', '\t'])
            } else {
                char::from(0x20 + g.below(0x5F) as u8)
            }
        })
        .collect()
}

#[test]
fn prop_expr_display_reparses() {
    xtuml_prop::run("expr_display_reparses", |g| {
        let e = expr(g, 3);
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        assert_eq!(e, reparsed, "printed: {printed}");
    });
}

#[test]
fn prop_block_display_reparses() {
    xtuml_prop::run("block_display_reparses", |g| {
        let b = block(g, 2, 5);
        let printed = b.to_string();
        let reparsed =
            parse_block(&printed).unwrap_or_else(|err| panic!("reparse failed: {err}\n{printed}"));
        assert_eq!(b, reparsed, "printed:\n{printed}");
    });
}

#[test]
fn prop_lexer_never_panics() {
    xtuml_prop::run("lexer_never_panics", |g| {
        let src = noise(g, 60);
        let _ = lex(&src); // must not panic, may err
    });
}

#[test]
fn prop_lexer_accepts_all_ascii_noise() {
    xtuml_prop::run("lexer_ascii_noise", |g| {
        let len = g.index(61);
        let src: String = (0..len)
            .map(|_| char::from(32 + g.below(95) as u8))
            .collect();
        let _ = lex(&src);
    });
}

#[test]
fn prop_parser_never_panics() {
    xtuml_prop::run("parser_never_panics", |g| {
        let src = noise(g, 60);
        let _ = parse_block(&src);
        let _ = parse_expr(&src);
    });
}
