//! Property tests for the action-language front end:
//! * pretty-print → reparse is the identity on ASTs;
//! * the lexer never panics on arbitrary input;
//! * expression evaluation agrees with the type checker's verdicts for a
//!   family of generated well-typed expressions.

use proptest::prelude::*;
use xtuml_core::action::{Block, Expr, GenTarget, LValue, Stmt};
use xtuml_core::error::Pos;
use xtuml_core::lex::lex;
use xtuml_core::parse::{parse_block, parse_expr};
use xtuml_core::value::{BinOp, UnOp, Value};

/// Variable names guaranteed not to collide with reserved words.
fn var_name() -> impl Strategy<Value = String> {
    (0u8..12).prop_map(|i| format!("v{i}"))
}

fn class_name() -> impl Strategy<Value = String> {
    (0u8..4).prop_map(|i| format!("Klass{i}"))
}

fn event_name() -> impl Strategy<Value = String> {
    (0u8..4).prop_map(|i| format!("Ev{i}"))
}

fn assoc_name() -> impl Strategy<Value = String> {
    (1u8..5).prop_map(|i| format!("R{i}"))
}

/// Literals restricted to forms whose `Display` the parser accepts
/// (non-negative numbers; escape-free strings).
fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (0i64..1_000_000).prop_map(Value::Int),
        (0i32..8000).prop_map(|i| Value::Real(f64::from(i) / 8.0)),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Str),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Lit),
        var_name().prop_map(Expr::Var),
        Just(Expr::SelfRef),
        var_name().prop_map(Expr::Param),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), var_name()).prop_map(|(b, n)| Expr::Attr(Box::new(b), n)),
            (inner.clone(), class_name(), assoc_name()).prop_map(|(b, c, r)| Expr::Nav(
                Box::new(b),
                c,
                r
            )),
            (
                prop_oneof![
                    Just(UnOp::Neg),
                    Just(UnOp::Not),
                    Just(UnOp::Cardinality),
                    Just(UnOp::Empty),
                    Just(UnOp::NotEmpty),
                    Just(UnOp::Any),
                    Just(UnOp::ToInt),
                    Just(UnOp::ToReal),
                    Just(UnOp::ToStr),
                ],
                inner.clone()
            )
                .prop_map(|(op, e)| Expr::Unary(op, Box::new(e))),
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Rem),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (
                class_name(),
                var_name(),
                proptest::collection::vec(inner, 0..3)
            )
                .prop_map(|(a, f, args)| Expr::BridgeCall(a, f, args)),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let p = Pos::UNKNOWN;
    let simple = prop_oneof![
        (
            prop_oneof![
                var_name().prop_map(LValue::Var),
                (var_name(), var_name()).prop_map(|(v, a)| LValue::Attr(Expr::Var(v), a)),
            ],
            expr()
        )
            .prop_map(move |(lhs, e)| Stmt::Assign {
                lhs,
                expr: e,
                pos: p
            }),
        (var_name(), class_name()).prop_map(move |(var, class)| Stmt::Create {
            var,
            class,
            pos: p
        }),
        expr().prop_map(move |e| Stmt::Delete { expr: e, pos: p }),
        (var_name(), class_name(), proptest::option::of(expr())).prop_map(
            move |(var, class, filter)| Stmt::SelectAny {
                var,
                class,
                filter,
                pos: p
            }
        ),
        (var_name(), class_name(), proptest::option::of(expr())).prop_map(
            move |(var, class, filter)| Stmt::SelectMany {
                var,
                class,
                filter,
                pos: p
            }
        ),
        (expr(), expr(), assoc_name()).prop_map(move |(a, b, assoc)| Stmt::Relate {
            a,
            b,
            assoc,
            pos: p
        }),
        (expr(), expr(), assoc_name()).prop_map(move |(a, b, assoc)| Stmt::Unrelate {
            a,
            b,
            assoc,
            pos: p
        }),
        (
            event_name(),
            proptest::collection::vec(expr(), 0..3),
            expr(),
            proptest::option::of(expr())
        )
            .prop_map(move |(event, args, t, delay)| Stmt::Generate {
                event,
                args,
                target: GenTarget::Inst(t),
                delay,
                pos: p,
            }),
        event_name().prop_map(move |event| Stmt::Cancel { event, pos: p }),
        Just(Stmt::Break { pos: p }),
        Just(Stmt::Continue { pos: p }),
        Just(Stmt::Return { pos: p }),
        (
            class_name(),
            var_name(),
            proptest::collection::vec(expr(), 0..2)
        )
            .prop_map(move |(a, f, args)| Stmt::ExprStmt {
                expr: Expr::BridgeCall(a, f, args),
                pos: p,
            }),
    ];
    simple.prop_recursive(2, 12, 3, move |inner| {
        let block =
            proptest::collection::vec(inner.clone(), 0..3).prop_map(|stmts| Block { stmts });
        prop_oneof![
            (
                proptest::collection::vec((expr(), block.clone()), 1..3),
                proptest::option::of(block.clone())
            )
                .prop_map(move |(arms, otherwise)| Stmt::If {
                    arms,
                    otherwise,
                    pos: p
                }),
            (expr(), block.clone()).prop_map(move |(cond, body)| Stmt::While {
                cond,
                body,
                pos: p
            }),
            (var_name(), expr(), block).prop_map(move |(var, set, body)| Stmt::ForEach {
                var,
                set,
                body,
                pos: p
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_expr_display_reparses(e in expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(e, reparsed, "printed: {}", printed);
    }

    #[test]
    fn prop_block_display_reparses(stmts in proptest::collection::vec(stmt(), 0..6)) {
        let block = Block { stmts };
        let printed = block.to_string();
        let reparsed = parse_block(&printed)
            .unwrap_or_else(|err| panic!("block failed to reparse: {err}\n{printed}"));
        prop_assert_eq!(block, reparsed, "printed:\n{}", printed);
    }

    #[test]
    fn prop_lexer_never_panics(src in "\\PC{0,60}") {
        let _ = lex(&src); // must not panic, may err
    }

    #[test]
    fn prop_lexer_accepts_all_ascii_noise(bytes in proptest::collection::vec(32u8..127, 0..60)) {
        let src: String = bytes.into_iter().map(char::from).collect();
        let _ = lex(&src);
    }

    #[test]
    fn prop_parser_never_panics(src in "\\PC{0,60}") {
        let _ = parse_block(&src);
        let _ = parse_expr(&src);
    }
}
