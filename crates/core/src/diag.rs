//! The unified diagnostics subsystem.
//!
//! The paper's promise is that executable models are *specifications* you
//! verify **before** translation (§2). That is only credible if the static
//! checks behave like a real compiler front end: every finding carries a
//! **stable code** (`X0001`..), a **severity**, a **source span**, and both
//! a rustc-style human rendering and a machine-readable JSON form. All
//! passes — the type checker ([`crate::typeck`]), structural validation
//! ([`crate::validate`]), the whole-model lints ([`crate::lint`]) and the
//! mark/partition lints in `xtuml-mda` — *accumulate* into one
//! [`Diagnostics`] sink instead of bailing on the first error.
//!
//! Severities can be promoted or demoted per code (`--deny`/`--allow` on
//! the CLI) via [`LintLevels`].

use crate::error::{CoreError, Pos};
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Lint codes
// ---------------------------------------------------------------------------

/// A stable diagnostic code. Codes are append-only: once published, a code
/// never changes meaning (tooling and CI gates key off them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `X0001` — a name declared twice in one scope.
    DuplicateDefinition,
    /// `X0002` — a reference to a name that does not exist.
    UnresolvedReference,
    /// `X0003` — a static type error in an action block.
    TypeError,
    /// `X0004` — an attribute default that does not match its declared type.
    BadDefault,
    /// `X0005` — a state no transition chain from the initial state reaches.
    UnreachableState,
    /// `X0006` — an event no transition row of its class consumes.
    DeadEvent,
    /// `X0007` — a transition whose trigger no action ever generates (and
    /// which is not an environment entry point on the initial state).
    DeadTransition,
    /// `X0008` — an attribute whose value is never read by any action.
    WriteOnlyAttribute,
    /// `X0009` — an attribute read by actions but never written: every read
    /// yields the declared default.
    ConstantAttribute,
    /// `X0010` — two machines signal the same target class with
    /// order-sensitive events; the causality rule does not order them.
    SignalRace,
    /// `X0011` — a cycle in the dispatch graph in which every participant
    /// re-generates on receipt: potential livelock or unbounded queue
    /// growth under the execution scheduler.
    SignalCycle,
    /// `X0012` — a mark that names a model element that does not exist.
    UnknownMarkTarget,
    /// `X0013` — a class marked `isHardware` carrying string-typed events
    /// or attributes, which the VHDL generator cannot synthesize.
    HardwareStringPayload,
    /// `X0014` — an event that crosses the hardware/software partition with
    /// a payload the interface generator cannot marshal: no ICD entry can
    /// exist for it.
    UnmarshallableChannel,
    /// `X0015` — a state action using a construct the sharded executor
    /// cannot run in parallel (`create`/`delete`/`relate`/`unrelate` or a
    /// non-self attribute access): `--shards N` falls back to sequential
    /// execution.
    ShardUnsafe,
    /// `X0016` — a state action using a construct the bytecode lowering
    /// does not cover (or one that exceeds the 16-bit operand encoding):
    /// `--engine bc` falls back to the compiled-frame interpreter for that
    /// action.
    BcUnsupported,
    /// `X0017` — two state actions access the same written attribute
    /// through receiver shapes the effect analysis cannot reconcile to
    /// one shard: a genuine cross-shard write race, reported with a
    /// two-action witness path.
    CrossShardRace,
}

/// Every code, in ascending order — the lint catalogue.
pub const ALL_CODES: &[Code] = &[
    Code::DuplicateDefinition,
    Code::UnresolvedReference,
    Code::TypeError,
    Code::BadDefault,
    Code::UnreachableState,
    Code::DeadEvent,
    Code::DeadTransition,
    Code::WriteOnlyAttribute,
    Code::ConstantAttribute,
    Code::SignalRace,
    Code::SignalCycle,
    Code::UnknownMarkTarget,
    Code::HardwareStringPayload,
    Code::UnmarshallableChannel,
    Code::ShardUnsafe,
    Code::BcUnsupported,
    Code::CrossShardRace,
];

impl Code {
    /// The stable code string, e.g. `"X0003"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DuplicateDefinition => "X0001",
            Code::UnresolvedReference => "X0002",
            Code::TypeError => "X0003",
            Code::BadDefault => "X0004",
            Code::UnreachableState => "X0005",
            Code::DeadEvent => "X0006",
            Code::DeadTransition => "X0007",
            Code::WriteOnlyAttribute => "X0008",
            Code::ConstantAttribute => "X0009",
            Code::SignalRace => "X0010",
            Code::SignalCycle => "X0011",
            Code::UnknownMarkTarget => "X0012",
            Code::HardwareStringPayload => "X0013",
            Code::UnmarshallableChannel => "X0014",
            Code::ShardUnsafe => "X0015",
            Code::BcUnsupported => "X0016",
            Code::CrossShardRace => "X0017",
        }
    }

    /// The human-oriented lint name, e.g. `"signal-race"`, accepted by
    /// `--deny`/`--allow` interchangeably with the code string.
    pub fn name(self) -> &'static str {
        match self {
            Code::DuplicateDefinition => "duplicate-definition",
            Code::UnresolvedReference => "unresolved-reference",
            Code::TypeError => "type-error",
            Code::BadDefault => "bad-default",
            Code::UnreachableState => "unreachable-state",
            Code::DeadEvent => "dead-event",
            Code::DeadTransition => "dead-transition",
            Code::WriteOnlyAttribute => "write-only-attribute",
            Code::ConstantAttribute => "constant-attribute",
            Code::SignalRace => "signal-race",
            Code::SignalCycle => "signal-cycle",
            Code::UnknownMarkTarget => "unknown-mark-target",
            Code::HardwareStringPayload => "hardware-string-payload",
            Code::UnmarshallableChannel => "unmarshallable-channel",
            Code::ShardUnsafe => "shard-unsafe",
            Code::BcUnsupported => "bc-unsupported",
            Code::CrossShardRace => "cross-shard-race",
        }
    }

    /// The severity a finding of this code carries before any
    /// [`LintLevels`] promotion.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::DuplicateDefinition
            | Code::UnresolvedReference
            | Code::TypeError
            | Code::BadDefault
            | Code::UnmarshallableChannel => Severity::Error,
            Code::UnreachableState
            | Code::DeadEvent
            | Code::DeadTransition
            | Code::WriteOnlyAttribute
            | Code::SignalRace
            | Code::SignalCycle
            | Code::UnknownMarkTarget
            | Code::HardwareStringPayload
            | Code::CrossShardRace => Severity::Warning,
            Code::ConstantAttribute | Code::ShardUnsafe | Code::BcUnsupported => Severity::Note,
        }
    }

    /// Parses a code from either the stable string (`"X0010"`) or the
    /// lint name (`"signal-race"`).
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s) || c.name() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Severity
// ---------------------------------------------------------------------------

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a build.
    Note,
    /// Suspicious but legal; fails builds only under `--deny`.
    Warning,
    /// A defect; the model (or model+marks) is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

// ---------------------------------------------------------------------------
// Diagnostic
// ---------------------------------------------------------------------------

/// One finding: a code, a severity, a span and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: Code,
    /// Severity (the code's default until [`LintLevels::apply`] runs).
    pub severity: Severity,
    /// Source position; [`Pos::UNKNOWN`] when the element was built
    /// programmatically.
    pub pos: Pos,
    /// The model element the finding is about, as a human-readable path
    /// (e.g. `"class Chimer, state Chiming"`); may be empty.
    pub element: String,
    /// The primary message.
    pub message: String,
    /// Secondary notes rendered under the snippet.
    pub notes: Vec<String>,
    /// Which file the span refers to: `None` for the model file, or the
    /// name of a secondary file (e.g. the mark file).
    pub file: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: Code, pos: Pos, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            pos,
            element: String::new(),
            message: message.into(),
            notes: Vec::new(),
            file: None,
        }
    }

    /// Attaches the element path.
    #[must_use]
    pub fn with_element(mut self, element: impl Into<String>) -> Diagnostic {
        self.element = element.into();
        self
    }

    /// Appends a secondary note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attributes the span to a secondary file (e.g. the mark file).
    #[must_use]
    pub fn in_file(mut self, file: impl Into<String>) -> Diagnostic {
        self.file = Some(file.into());
        self
    }

    /// Converts a [`CoreError`] surfaced by a check pass into a diagnostic,
    /// using `fallback` when the error carries no position of its own.
    pub fn from_core_error(err: &CoreError, fallback: Pos) -> Diagnostic {
        let (code, pos) = match err {
            CoreError::Lex { pos, .. } | CoreError::Parse { pos, .. } => {
                (Code::UnresolvedReference, *pos)
            }
            CoreError::Type { pos, .. } => {
                let p = if pos.line == 0 { fallback } else { *pos };
                (Code::TypeError, p)
            }
            CoreError::Unresolved { .. } => (Code::UnresolvedReference, fallback),
            CoreError::Duplicate { .. } => (Code::DuplicateDefinition, fallback),
            CoreError::Validate { .. }
            | CoreError::Runtime { .. }
            | CoreError::CantHappen { .. } => (Code::UnresolvedReference, fallback),
        };
        Diagnostic::new(code, pos, err.to_string())
    }
}

// ---------------------------------------------------------------------------
// Accumulator
// ---------------------------------------------------------------------------

/// An ordered accumulation of diagnostics — the sink every check pass
/// writes into.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    list: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty sink.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.list.push(d);
    }

    /// All diagnostics, in emission (then sorted, if [`Diagnostics::sort`]
    /// was called) order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.list.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// True if any diagnostic is [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.list.iter().any(|d| d.severity == Severity::Error)
    }

    /// Counts diagnostics of the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.list.iter().filter(|d| d.severity == severity).count()
    }

    /// Pins every diagnostic with an implicit file (`file: None`) to
    /// `primary`, the model file's name.
    ///
    /// Without this, [`Diagnostics::sort`] orders by the *internal*
    /// attribution — `None` sorts before every `Some(...)` — so findings
    /// that render under the same file name can interleave differently
    /// depending on which pass produced them. Call this before `sort`
    /// whenever diagnostics from several files are mixed (e.g. model +
    /// marks) and the output order must be a pure function of the
    /// rendered (file, position, code) key.
    pub fn resolve_files(&mut self, primary: &str) {
        for d in &mut self.list {
            if d.file.is_none() {
                d.file = Some(primary.to_owned());
            }
        }
    }

    /// Stable-sorts by file, position, then code, for deterministic output.
    pub fn sort(&mut self) {
        self.list.sort_by(|a, b| {
            (&a.file, a.pos, a.code, &a.message).cmp(&(&b.file, b.pos, b.code, &b.message))
        });
    }

    /// Renders every diagnostic in rustc style, with source snippets.
    ///
    /// `files` maps file names to their source text; the first entry is the
    /// primary (model) file used for diagnostics with `file: None`.
    pub fn render_human(&self, files: &[(&str, &str)]) -> String {
        let mut out = String::new();
        for d in &self.list {
            render_one(&mut out, d, files);
        }
        let errors = self.count(Severity::Error);
        let warnings = self.count(Severity::Warning);
        let notes = self.count(Severity::Note);
        if self.list.is_empty() {
            out.push_str("no diagnostics\n");
        } else {
            out.push_str(&format!(
                "{errors} error(s), {warnings} warning(s), {notes} note(s)\n"
            ));
        }
        out
    }

    /// Renders every diagnostic as a JSON document:
    /// `{"file": ..., "diagnostics": [...]}`.
    pub fn render_json(&self, primary_file: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"file\": ");
        json_string(&mut out, primary_file);
        out.push_str(",\n  \"diagnostics\": [");
        for (i, d) in self.list.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"code\": ");
            json_string(&mut out, d.code.as_str());
            out.push_str(", \"name\": ");
            json_string(&mut out, d.code.name());
            out.push_str(", \"severity\": ");
            json_string(&mut out, &d.severity.to_string());
            out.push_str(", \"file\": ");
            json_string(&mut out, d.file.as_deref().unwrap_or(primary_file));
            out.push_str(&format!(
                ", \"line\": {}, \"col\": {}, \"element\": ",
                d.pos.line, d.pos.col
            ));
            json_string(&mut out, &d.element);
            out.push_str(", \"message\": ");
            json_string(&mut out, &d.message);
            out.push_str(", \"notes\": [");
            for (j, n) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json_string(&mut out, n);
            }
            out.push_str("]}");
        }
        if !self.list.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn render_one(out: &mut String, d: &Diagnostic, files: &[(&str, &str)]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    let (fname, src) = match &d.file {
        None => files.first().copied().unwrap_or(("<model>", "")),
        Some(name) => files
            .iter()
            .find(|(n, _)| n == name)
            .copied()
            .unwrap_or((name.as_str(), "")),
    };
    let loc = if d.pos.line == 0 {
        fname.to_owned()
    } else {
        format!("{fname}:{}:{}", d.pos.line, d.pos.col)
    };
    if d.element.is_empty() {
        let _ = writeln!(out, "  --> {loc}");
    } else {
        let _ = writeln!(out, "  --> {loc} ({})", d.element);
    }
    if d.pos.line > 0 {
        if let Some(line) = src.lines().nth(d.pos.line as usize - 1) {
            let gutter = d.pos.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "  {pad} |");
            let _ = writeln!(out, "  {gutter} | {line}");
            let caret_at = (d.pos.col as usize).saturating_sub(1);
            let _ = writeln!(out, "  {pad} | {}^", " ".repeat(caret_at));
        }
    }
    for n in &d.notes {
        let _ = writeln!(out, "  = note: {n}");
    }
}

/// Appends `s` to `out` as a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Lint levels (--deny / --allow)
// ---------------------------------------------------------------------------

/// Per-code severity overrides, built from `--deny`/`--allow` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintLevels {
    /// `Some(sev)` forces the severity; `None` suppresses the code.
    overrides: BTreeMap<Code, Option<Severity>>,
    /// Promote every warning to an error (`--deny all`).
    deny_all_warnings: bool,
}

impl LintLevels {
    /// No overrides: every code keeps its default severity.
    pub fn new() -> LintLevels {
        LintLevels::default()
    }

    /// Promotes a code to [`Severity::Error`].
    pub fn deny(&mut self, code: Code) -> &mut Self {
        self.overrides.insert(code, Some(Severity::Error));
        self
    }

    /// Promotes every warning-level finding to an error.
    pub fn deny_all(&mut self) -> &mut Self {
        self.deny_all_warnings = true;
        self
    }

    /// Suppresses a code entirely.
    pub fn allow(&mut self, code: Code) -> &mut Self {
        self.overrides.insert(code, None);
        self
    }

    /// Applies the overrides: rewrites severities and drops allowed codes.
    pub fn apply(&self, diags: &mut Diagnostics) {
        diags
            .list
            .retain_mut(|d| match self.overrides.get(&d.code) {
                Some(None) => false,
                Some(Some(sev)) => {
                    d.severity = *sev;
                    true
                }
                None => {
                    if self.deny_all_warnings && d.severity == Severity::Warning {
                        d.severity = Severity::Error;
                    }
                    true
                }
            });
    }
}

// ---------------------------------------------------------------------------
// Source map
// ---------------------------------------------------------------------------

/// Maps model-element paths to source positions.
///
/// The metamodel ([`crate::model`]) is deliberately position-free — models
/// may be built programmatically and compared structurally — so the parser
/// records element spans *beside* the model, keyed by canonical path
/// strings. Lint passes look spans up here; a missing entry yields
/// [`Pos::UNKNOWN`], which renders without a snippet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    map: BTreeMap<String, Pos>,
}

impl SourceMap {
    /// Creates an empty map (all lookups yield [`Pos::UNKNOWN`]).
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Records the position of an element.
    pub fn record(&mut self, key: String, pos: Pos) {
        self.map.entry(key).or_insert(pos);
    }

    /// Looks a position up; [`Pos::UNKNOWN`] when absent.
    pub fn get(&self, key: &str) -> Pos {
        self.map.get(key).copied().unwrap_or(Pos::UNKNOWN)
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Canonical key for a class declaration.
    pub fn class_key(class: &str) -> String {
        format!("class {class}")
    }

    /// Canonical key for a state declaration.
    pub fn state_key(class: &str, state: &str) -> String {
        format!("class {class}::state {state}")
    }

    /// Canonical key for an event declaration.
    pub fn event_key(class: &str, event: &str) -> String {
        format!("class {class}::event {event}")
    }

    /// Canonical key for an attribute declaration.
    pub fn attr_key(class: &str, attr: &str) -> String {
        format!("class {class}::attr {attr}")
    }

    /// Canonical key for a transition row (`on <state>: <event> ...`).
    pub fn transition_key(class: &str, state: &str, event: &str) -> String {
        format!("class {class}::on {state}:{event}")
    }

    /// Canonical key for an actor declaration.
    pub fn actor_key(actor: &str) -> String {
        format!("actor {actor}")
    }

    /// Canonical key for an association declaration.
    pub fn assoc_key(assoc: &str) -> String {
        format!("assoc {assoc}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_by_string_and_name() {
        for c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(*c));
            assert_eq!(Code::parse(c.name()), Some(*c));
        }
        assert_eq!(Code::parse("X9999"), None);
        assert_eq!(Code::parse("x0010"), Some(Code::SignalRace));
    }

    #[test]
    fn human_rendering_has_snippet_and_caret() {
        let mut diags = Diagnostics::new();
        diags.push(
            Diagnostic::new(Code::TypeError, Pos::new(2, 5), "bad thing")
                .with_element("class C, state S")
                .with_note("because reasons"),
        );
        let out = diags.render_human(&[("m.xtuml", "line one\nline two here\n")]);
        assert!(out.contains("error[X0003]: bad thing"));
        assert!(out.contains("--> m.xtuml:2:5 (class C, state S)"));
        assert!(out.contains("2 | line two here"));
        assert!(out.contains("    ^"));
        assert!(out.contains("= note: because reasons"));
        assert!(out.contains("1 error(s), 0 warning(s), 0 note(s)"));
    }

    #[test]
    fn unknown_pos_renders_without_snippet() {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::new(
            Code::UnknownMarkTarget,
            Pos::UNKNOWN,
            "no such class",
        ));
        let out = diags.render_human(&[("m.xtuml", "src")]);
        assert!(out.contains("--> m.xtuml\n"));
        assert!(!out.contains(" | "));
    }

    #[test]
    fn json_escapes_and_lists() {
        let mut diags = Diagnostics::new();
        diags.push(
            Diagnostic::new(Code::SignalRace, Pos::new(1, 2), "say \"hi\"\n").with_note("n1"),
        );
        let json = diags.render_json("a\\b.xtuml");
        assert!(json.contains(r#""code": "X0010""#));
        assert!(json.contains(r#""name": "signal-race""#));
        assert!(json.contains(r#""message": "say \"hi\"\n""#));
        assert!(json.contains(r#""file": "a\\b.xtuml""#));
        assert!(json.contains(r#""notes": ["n1"]"#));
    }

    #[test]
    fn levels_promote_and_suppress() {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::new(Code::SignalRace, Pos::UNKNOWN, "race"));
        diags.push(Diagnostic::new(
            Code::ConstantAttribute,
            Pos::UNKNOWN,
            "const",
        ));
        assert!(!diags.has_errors());

        let mut levels = LintLevels::new();
        levels.deny(Code::SignalRace).allow(Code::ConstantAttribute);
        let mut promoted = diags.clone();
        levels.apply(&mut promoted);
        assert_eq!(promoted.len(), 1);
        assert!(promoted.has_errors());

        let mut all = diags.clone();
        LintLevels::new().deny_all().apply(&mut all);
        // deny-all only promotes warnings; the note stays a note.
        assert_eq!(all.count(Severity::Error), 1);
        assert_eq!(all.count(Severity::Note), 1);
    }

    #[test]
    fn sort_orders_by_position() {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::new(Code::DeadEvent, Pos::new(9, 1), "later"));
        diags.push(Diagnostic::new(Code::DeadEvent, Pos::new(2, 1), "earlier"));
        diags.sort();
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(msgs, ["earlier", "later"]);
    }

    #[test]
    fn source_map_lookup_and_keys() {
        let mut sm = SourceMap::new();
        sm.record(SourceMap::state_key("C", "S"), Pos::new(4, 5));
        assert_eq!(sm.get("class C::state S"), Pos::new(4, 5));
        assert_eq!(sm.get("class C::state T"), Pos::UNKNOWN);
        assert!(!sm.is_empty());
        assert_eq!(sm.len(), 1);
    }

    #[test]
    fn from_core_error_maps_codes_and_positions() {
        let e = CoreError::Type {
            pos: Pos::new(3, 7),
            msg: "bad".into(),
        };
        let d = Diagnostic::from_core_error(&e, Pos::new(1, 1));
        assert_eq!(d.code, Code::TypeError);
        assert_eq!(d.pos, Pos::new(3, 7));

        let e = CoreError::unresolved("attribute", "C.x");
        let d = Diagnostic::from_core_error(&e, Pos::new(5, 2));
        assert_eq!(d.code, Code::UnresolvedReference);
        assert_eq!(d.pos, Pos::new(5, 2));
    }
}
