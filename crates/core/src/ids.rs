//! Typed identifiers for model elements and runtime instances.
//!
//! Every index into the metamodel is a dedicated newtype (C-NEWTYPE): a
//! [`StateId`] can never be confused with an [`EventId`] even though both
//! are small integers. Identifiers are dense indices assigned by the
//! [`builder`](crate::builder) in declaration order, which keeps lookup
//! arrays flat and the whole model `Copy`-cheap to address.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a dense index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the dense index backing this id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }
    };
}

id_type!(
    /// Identifies a [`Class`](crate::model::Class) within a domain.
    ClassId,
    "C"
);
id_type!(
    /// Identifies an [`Attribute`](crate::model::Attribute) within a class.
    AttrId,
    "A"
);
id_type!(
    /// Identifies an [`EventDecl`](crate::model::EventDecl) within a class
    /// or actor.
    EventId,
    "E"
);
id_type!(
    /// Identifies a [`State`](crate::model::State) within a state machine.
    StateId,
    "S"
);
id_type!(
    /// Identifies an [`Association`](crate::model::Association) within a
    /// domain.
    AssocId,
    "R"
);
id_type!(
    /// Identifies an external [`Actor`](crate::model::Actor) (a terminator
    /// in Shlaer-Mellor terminology) within a domain.
    ActorId,
    "X"
);
id_type!(
    /// Identifies a live object instance at run time.
    ///
    /// Instance ids are assigned in creation order by whichever execution
    /// host is running the model and are never reused, so a dangling
    /// reference after `delete` is detectable.
    InstId,
    "I"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_are_distinct_types_with_dense_indices() {
        let c = ClassId::new(3);
        assert_eq!(c.index(), 3);
        assert_eq!(u32::from(c), 3);
        assert_eq!(ClassId::from(3u32), c);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ClassId::new(0).to_string(), "C0");
        assert_eq!(StateId::new(7).to_string(), "S7");
        assert_eq!(EventId::new(2).to_string(), "E2");
        assert_eq!(AssocId::new(1).to_string(), "R1");
        assert_eq!(ActorId::new(4).to_string(), "X4");
        assert_eq!(InstId::new(9).to_string(), "I9");
        assert_eq!(AttrId::new(5).to_string(), "A5");
    }

    #[test]
    fn ids_order_and_hash() {
        let set: BTreeSet<InstId> = [2u32, 0, 1].into_iter().map(InstId::new).collect();
        let ordered: Vec<u32> = set.into_iter().map(u32::from).collect();
        assert_eq!(ordered, vec![0, 1, 2]);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ClassId::default(), ClassId::new(0));
    }
}
