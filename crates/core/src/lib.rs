//! # xtuml-core — the Executable UML profile for SoC
//!
//! This crate defines the **Executable UML** metamodel described in Mellor,
//! Wolfe and McCausland, *"Why Systems-on-Chip Needs More UML like a Hole in
//! the Head"* (DATE 2005): a carefully selected, streamlined subset of UML
//! with a defined execution semantics.
//!
//! The essential elements (paper §2):
//!
//! * a set of [`Class`]es whose objects carry **concurrently executing
//!   state machines** ([`StateMachine`]),
//! * state machines that communicate **only by sending signals**
//!   ([`EventDecl`]),
//! * on receipt of a signal, the destination state's **actions run to
//!   completion** before the next signal is processed ([`action::Block`]),
//! * **marks** (paper §3) — lightweight, non-intrusive annotations kept
//!   *outside* the model ([`marks::MarkSet`]).
//!
//! The crate also provides the shared action-language interpreter
//! ([`interp`]): the same evaluator executes actions in the abstract model
//! interpreter (`xtuml-exec`), in the generated-hardware substrate and in
//! the generated-software substrate (`xtuml-mda`), which is how the paper's
//! "defined behavior is preserved" guarantee is made testable.
//!
//! ```
//! use xtuml_core::builder::DomainBuilder;
//! use xtuml_core::value::DataType;
//!
//! let mut d = DomainBuilder::new("blinker");
//! d.class("Led")
//!     .attr_default("on", DataType::Bool, false.into())
//!     .event("Toggle", &[])
//!     .state("Off", "self.on = false;")
//!     .state("On", "self.on = true;")
//!     .initial("Off")
//!     .transition("Off", "Toggle", "On")
//!     .transition("On", "Toggle", "Off");
//! let domain = d.build().expect("valid model");
//! assert_eq!(domain.classes.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod action;
pub mod bc;
pub mod builder;
pub mod code;
pub mod diag;
pub mod effects;
pub mod error;
pub mod ids;
pub mod interp;
pub mod lex;
pub mod lint;
pub mod marks;
pub mod model;
pub mod parse;
pub mod typeck;
pub mod validate;
pub mod value;

pub use error::{CoreError, Result};
pub use ids::{ActorId, AssocId, AttrId, ClassId, EventId, InstId, StateId};
pub use model::{
    Actor, Association, Attribute, Class, Domain, EventDecl, FuncDecl, Multiplicity, State,
    StateMachine, Transition, TransitionTarget,
};
pub use value::{DataType, Value};
