//! Recursive-descent parser for the action language.
//!
//! Grammar (statements):
//!
//! ```text
//! stmt  := lvalue '=' 'create' Class ';'
//!        | lvalue '=' expr ';'
//!        | 'delete' expr ';'
//!        | 'select' ('any'|'many') var 'from' Class ('where' expr)? ';'
//!        | 'relate' expr 'to' expr 'across' Rk ';'
//!        | 'unrelate' expr 'from' expr 'across' Rk ';'
//!        | 'gen' Event '(' args ')' 'to' gen_target ('after' expr)? ';'
//!        | 'cancel' Event ';'
//!        | 'if' '(' expr ')' block ('elif' '(' expr ')' block)* ('else' block)?
//!        | 'while' '(' expr ')' block
//!        | 'foreach' var 'in' expr block
//!        | 'break' ';' | 'continue' ';' | 'return' ';'
//!        | expr ';'                      // bridge-call statement
//! ```
//!
//! Expression precedence, loosest first: `or`, `and`, comparisons,
//! additive, multiplicative, unary (`-`, `not`), postfix (`.attr`,
//! `-> Class[Rk]`), primary. Built-ins (`cardinality`, `empty`,
//! `not_empty`, `any`, `int`, `real`, `string`) are keyword-call syntax:
//! `cardinality(expr)`.
//!
//! The parser is exported so that `xtuml-lang` can reuse it for the action
//! bodies inside model files (passing the set of declared actor names so
//! `gen E() to LOG;` resolves to an actor target at parse time).

use crate::action::{Block, Expr, GenTarget, LValue, Stmt};
use crate::error::{CoreError, Pos, Result};
use crate::lex::{lex, Spanned, Tok};
use crate::value::{BinOp, UnOp, Value};
use std::collections::BTreeSet;

/// Parses a standalone action block (no enclosing braces).
///
/// Actor names in `gen ... to <name>` targets cannot be distinguished from
/// variables without the declaration context; use [`Parser::with_actors`]
/// (as `xtuml-lang` does) to resolve them at parse time. Without it, the
/// interpreter and type checker fall back to treating an unknown variable
/// in target position as an actor name.
///
/// # Errors
///
/// Returns [`CoreError::Lex`] or [`CoreError::Parse`] on malformed input.
///
/// ```
/// let block = xtuml_core::parse::parse_block("self.x = self.x + 1;")?;
/// assert_eq!(block.stmts.len(), 1);
/// # Ok::<(), xtuml_core::CoreError>(())
/// ```
pub fn parse_block(src: &str) -> Result<Block> {
    let toks = lex(src)?;
    let mut p = Parser::new(&toks);
    let block = p.parse_block_until(&Tok::Eof)?;
    p.expect(&Tok::Eof)?;
    Ok(block)
}

/// Parses a standalone expression.
///
/// # Errors
///
/// Returns [`CoreError::Lex`] or [`CoreError::Parse`] on malformed input.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let toks = lex(src)?;
    let mut p = Parser::new(&toks);
    let e = p.parse_expr()?;
    p.expect(&Tok::Eof)?;
    Ok(e)
}

/// Statement keywords that may not be used as variable names.
const RESERVED: &[&str] = &[
    "create",
    "delete",
    "select",
    "any",
    "many",
    "from",
    "where",
    "relate",
    "unrelate",
    "to",
    "across",
    "gen",
    "after",
    "cancel",
    "if",
    "elif",
    "else",
    "while",
    "foreach",
    "in",
    "break",
    "continue",
    "return",
    "and",
    "or",
    "not",
    "true",
    "false",
    "self",
    "selected",
    "rcvd",
    "empty",
    "not_empty",
    "cardinality",
    "int",
    "real",
    "string",
    "bool",
];

/// A resumable recursive-descent parser over a token slice.
pub struct Parser<'t> {
    toks: &'t [Spanned],
    at: usize,
    actors: BTreeSet<String>,
}

impl<'t> Parser<'t> {
    /// Creates a parser with no actor-name context.
    pub fn new(toks: &'t [Spanned]) -> Parser<'t> {
        Parser {
            toks,
            at: 0,
            actors: BTreeSet::new(),
        }
    }

    /// Creates a parser that resolves the given names as actor targets in
    /// `gen` statements.
    pub fn with_actors(toks: &'t [Spanned], actors: BTreeSet<String>) -> Parser<'t> {
        Parser {
            toks,
            at: 0,
            actors,
        }
    }

    /// Current token.
    pub fn peek(&self) -> &Tok {
        &self.toks[self.at.min(self.toks.len() - 1)].tok
    }

    /// Position of the current token.
    pub fn pos(&self) -> Pos {
        self.toks[self.at.min(self.toks.len() - 1)].pos
    }

    /// Consumes and returns the current token.
    #[allow(clippy::should_implement_trait)] // a parser cursor, not an Iterator
    pub fn next(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.at < self.toks.len() - 1 {
            self.at += 1;
        }
        t
    }

    /// Consumes the current token if it equals `t`.
    pub fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consumes the current token, failing if it is not `t`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] naming the expected token.
    pub fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    /// Consumes an identifier token and returns its text.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] if the current token is not an
    /// identifier.
    pub fn expect_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    /// Consumes an identifier usable as a variable (not a reserved word).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] for reserved words or non-identifiers.
    pub fn expect_name(&mut self) -> Result<String> {
        let name = self.expect_ident()?;
        if RESERVED.contains(&name.as_str()) {
            return Err(self.err(format!("`{name}` is a reserved word")));
        }
        Ok(name)
    }

    /// True if the current token is the identifier `kw`.
    pub fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    /// Consumes the identifier `kw` if present.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consumes the identifier `kw`, failing otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] naming the expected keyword.
    pub fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn err(&self, msg: String) -> CoreError {
        CoreError::Parse {
            pos: self.pos(),
            msg,
        }
    }

    // -- statements ---------------------------------------------------------

    /// Parses statements until `end` (not consumed).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] on malformed statements.
    pub fn parse_block_until(&mut self, end: &Tok) -> Result<Block> {
        let mut stmts = Vec::new();
        while self.peek() != end && self.peek() != &Tok::Eof {
            stmts.push(self.parse_stmt()?);
        }
        Ok(Block { stmts })
    }

    /// Parses one `{ ... }`-braced block.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] on malformed input.
    pub fn parse_braced_block(&mut self) -> Result<Block> {
        self.expect(&Tok::LBrace)?;
        let b = self.parse_block_until(&Tok::RBrace)?;
        self.expect(&Tok::RBrace)?;
        Ok(b)
    }

    /// Parses a single statement.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] on malformed input.
    pub fn parse_stmt(&mut self) -> Result<Stmt> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(kw) => match kw.as_str() {
                "delete" => {
                    self.next();
                    let expr = self.parse_expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Delete { expr, pos })
                }
                "select" => self.parse_select(pos),
                "relate" => {
                    self.next();
                    let a = self.parse_expr()?;
                    self.expect_kw("to")?;
                    let b = self.parse_expr()?;
                    self.expect_kw("across")?;
                    let assoc = self.expect_ident()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Relate { a, b, assoc, pos })
                }
                "unrelate" => {
                    self.next();
                    let a = self.parse_expr()?;
                    self.expect_kw("from")?;
                    let b = self.parse_expr()?;
                    self.expect_kw("across")?;
                    let assoc = self.expect_ident()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Unrelate { a, b, assoc, pos })
                }
                "gen" => self.parse_generate(pos),
                "cancel" => {
                    self.next();
                    let event = self.expect_ident()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Cancel { event, pos })
                }
                "if" => self.parse_if(pos),
                "while" => {
                    self.next();
                    self.expect(&Tok::LParen)?;
                    let cond = self.parse_expr()?;
                    self.expect(&Tok::RParen)?;
                    let body = self.parse_braced_block()?;
                    Ok(Stmt::While { cond, body, pos })
                }
                "foreach" => {
                    self.next();
                    let var = self.expect_name()?;
                    self.expect_kw("in")?;
                    let set = self.parse_expr()?;
                    let body = self.parse_braced_block()?;
                    Ok(Stmt::ForEach {
                        var,
                        set,
                        body,
                        pos,
                    })
                }
                "break" => {
                    self.next();
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Break { pos })
                }
                "continue" => {
                    self.next();
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Continue { pos })
                }
                "return" => {
                    self.next();
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Return { pos })
                }
                _ => self.parse_assign_or_call(pos),
            },
            _ => self.parse_assign_or_call(pos),
        }
    }

    fn parse_select(&mut self, pos: Pos) -> Result<Stmt> {
        self.next(); // `select`
        let many = if self.eat_kw("any") {
            false
        } else if self.eat_kw("many") {
            true
        } else {
            return Err(self.err("expected `any` or `many` after `select`".into()));
        };
        let var = self.expect_name()?;
        self.expect_kw("from")?;
        let class = self.expect_ident()?;
        let filter = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi)?;
        if many {
            Ok(Stmt::SelectMany {
                var,
                class,
                filter,
                pos,
            })
        } else {
            Ok(Stmt::SelectAny {
                var,
                class,
                filter,
                pos,
            })
        }
    }

    fn parse_generate(&mut self, pos: Pos) -> Result<Stmt> {
        self.next(); // `gen`
        let event = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect_kw("to")?;
        let target = match self.peek().clone() {
            Tok::Ident(name) if self.actors.contains(&name) => {
                self.next();
                GenTarget::Actor(name)
            }
            _ => GenTarget::Inst(self.parse_expr()?),
        };
        let delay = if self.eat_kw("after") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Generate {
            event,
            args,
            target,
            delay,
            pos,
        })
    }

    fn parse_if(&mut self, pos: Pos) -> Result<Stmt> {
        self.next(); // `if`
        let mut arms = Vec::new();
        self.expect(&Tok::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&Tok::RParen)?;
        arms.push((cond, self.parse_braced_block()?));
        let mut otherwise = None;
        loop {
            if self.eat_kw("elif") {
                self.expect(&Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                arms.push((cond, self.parse_braced_block()?));
            } else if self.eat_kw("else") {
                otherwise = Some(self.parse_braced_block()?);
                break;
            } else {
                break;
            }
        }
        Ok(Stmt::If {
            arms,
            otherwise,
            pos,
        })
    }

    fn parse_assign_or_call(&mut self, pos: Pos) -> Result<Stmt> {
        let expr = self.parse_expr()?;
        if self.eat(&Tok::Assign) {
            let lhs = match expr {
                Expr::Var(n) => LValue::Var(n),
                Expr::Attr(base, name) => LValue::Attr(*base, name),
                other => {
                    return Err(self.err(format!("`{other}` is not assignable")));
                }
            };
            // `v = create Class;`
            if self.eat_kw("create") {
                let class = self.expect_ident()?;
                self.expect(&Tok::Semi)?;
                let LValue::Var(var) = lhs else {
                    return Err(self.err("`create` result must bind a variable".into()));
                };
                return Ok(Stmt::Create { var, class, pos });
            }
            let rhs = self.parse_expr()?;
            self.expect(&Tok::Semi)?;
            Ok(Stmt::Assign {
                lhs,
                expr: rhs,
                pos,
            })
        } else {
            self.expect(&Tok::Semi)?;
            if !matches!(expr, Expr::BridgeCall(..)) {
                return Err(self.err(format!(
                    "expression statement must be a bridge call, found `{expr}`"
                )));
            }
            Ok(Stmt::ExprStmt { expr, pos })
        }
    }

    // -- expressions --------------------------------------------------------

    /// Parses an expression at the lowest precedence level.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] on malformed input.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("or") {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_kw("and") {
            let rhs = self.parse_cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.parse_add()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat_kw("not") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        for (kw, op) in [
            ("cardinality", UnOp::Cardinality),
            ("empty", UnOp::Empty),
            ("not_empty", UnOp::NotEmpty),
            ("any", UnOp::Any),
            ("int", UnOp::ToInt),
            ("real", UnOp::ToReal),
            ("string", UnOp::ToStr),
        ] {
            if self.at_kw(kw) {
                self.next();
                self.expect(&Tok::LParen)?;
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                // Builtin calls are primaries: postfix (`.attr`, `->`)
                // chains onto their result.
                return self.parse_postfix_on(Expr::Unary(op, Box::new(e)));
            }
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let e = self.parse_primary()?;
        self.parse_postfix_on(e)
    }

    fn parse_postfix_on(&mut self, start: Expr) -> Result<Expr> {
        let mut e = start;
        loop {
            if self.eat(&Tok::Dot) {
                let name = self.expect_ident()?;
                e = Expr::Attr(Box::new(e), name);
            } else if self.eat(&Tok::Arrow) {
                let class = self.expect_ident()?;
                self.expect(&Tok::LBracket)?;
                let assoc = self.expect_ident()?;
                self.expect(&Tok::RBracket)?;
                e = Expr::Nav(Box::new(e), class, assoc);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.next();
                Ok(Expr::Lit(Value::Int(v)))
            }
            Tok::Real(v) => {
                self.next();
                Ok(Expr::Lit(Value::Real(v)))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Expr::Lit(Value::Str(s)))
            }
            Tok::LParen => {
                self.next();
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => {
                    self.next();
                    Ok(Expr::Lit(Value::Bool(true)))
                }
                "false" => {
                    self.next();
                    Ok(Expr::Lit(Value::Bool(false)))
                }
                "self" => {
                    self.next();
                    Ok(Expr::SelfRef)
                }
                "selected" => {
                    self.next();
                    Ok(Expr::Selected)
                }
                "rcvd" => {
                    self.next();
                    self.expect(&Tok::Dot)?;
                    let p = self.expect_ident()?;
                    Ok(Expr::Param(p))
                }
                _ => {
                    self.next();
                    if self.eat(&Tok::ColonColon) {
                        let func = self.expect_ident()?;
                        self.expect(&Tok::LParen)?;
                        let mut args = Vec::new();
                        if self.peek() != &Tok::RParen {
                            loop {
                                args.push(self.parse_expr()?);
                                if !self.eat(&Tok::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::BridgeCall(name, func, args))
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{GenTarget, LValue, Stmt};

    #[test]
    fn parse_simple_assign() {
        let b = parse_block("x = 1 + 2 * 3;").unwrap();
        assert_eq!(b.stmts.len(), 1);
        let Stmt::Assign { lhs, expr, .. } = &b.stmts[0] else {
            panic!("expected assign");
        };
        assert_eq!(lhs, &LValue::Var("x".into()));
        assert_eq!(expr.to_string(), "(1 + (2 * 3))");
    }

    #[test]
    fn precedence_and_parens() {
        assert_eq!(
            parse_expr("(1 + 2) * 3").unwrap().to_string(),
            "((1 + 2) * 3)"
        );
        assert_eq!(
            parse_expr("a or b and c == d").unwrap().to_string(),
            "(a or (b and (c == d)))"
        );
        assert_eq!(parse_expr("-a + b").unwrap().to_string(), "(-a + b)");
        assert_eq!(
            parse_expr("not a or b").unwrap().to_string(),
            "(not a or b)"
        );
    }

    #[test]
    fn attr_and_nav_postfix() {
        assert_eq!(parse_expr("self.count").unwrap(), Expr::self_attr("count"));
        let e = parse_expr("self -> Lamp[R1]").unwrap();
        assert_eq!(
            e,
            Expr::Nav(Box::new(Expr::SelfRef), "Lamp".into(), "R1".into())
        );
        // Chained: navigate then read attribute of `any`.
        let e = parse_expr("any(x -> Lamp[R1]).on").unwrap();
        assert!(matches!(e, Expr::Attr(..)));
    }

    #[test]
    fn builtins() {
        assert_eq!(
            parse_expr("cardinality(s)").unwrap(),
            Expr::Unary(UnOp::Cardinality, Box::new(Expr::var("s")))
        );
        assert_eq!(
            parse_expr("not_empty(s)").unwrap(),
            Expr::Unary(UnOp::NotEmpty, Box::new(Expr::var("s")))
        );
        assert_eq!(
            parse_expr("real(3)").unwrap(),
            Expr::Unary(UnOp::ToReal, Box::new(Expr::int(3)))
        );
    }

    #[test]
    fn create_and_delete() {
        let b = parse_block("l = create Lamp; delete l;").unwrap();
        assert!(matches!(&b.stmts[0], Stmt::Create { var, class, .. }
            if var == "l" && class == "Lamp"));
        assert!(matches!(&b.stmts[1], Stmt::Delete { .. }));
    }

    #[test]
    fn selects() {
        let b = parse_block(
            "select any l from Lamp where selected.on == true;\n\
             select many ls from Lamp;",
        )
        .unwrap();
        assert!(matches!(
            &b.stmts[0],
            Stmt::SelectAny {
                filter: Some(_),
                ..
            }
        ));
        assert!(matches!(&b.stmts[1], Stmt::SelectMany { filter: None, .. }));
    }

    #[test]
    fn relate_unrelate() {
        let b = parse_block("relate a to b across R1; unrelate a from b across R1;").unwrap();
        assert!(matches!(&b.stmts[0], Stmt::Relate { assoc, .. } if assoc == "R1"));
        assert!(matches!(&b.stmts[1], Stmt::Unrelate { assoc, .. } if assoc == "R1"));
    }

    #[test]
    fn generate_variants() {
        let b = parse_block("gen Tick() to self after 10; gen Go(1, x) to l;").unwrap();
        let Stmt::Generate { delay, target, .. } = &b.stmts[0] else {
            panic!()
        };
        assert!(delay.is_some());
        assert_eq!(target, &GenTarget::Inst(Expr::SelfRef));
        let Stmt::Generate { args, .. } = &b.stmts[1] else {
            panic!()
        };
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn generate_to_actor_with_context() {
        let toks = lex("gen done(3) to ENV;").unwrap();
        let actors: BTreeSet<String> = ["ENV".to_string()].into();
        let mut p = Parser::with_actors(&toks, actors);
        let b = p.parse_block_until(&Tok::Eof).unwrap();
        let Stmt::Generate { target, .. } = &b.stmts[0] else {
            panic!()
        };
        assert_eq!(target, &GenTarget::Actor("ENV".into()));
    }

    #[test]
    fn control_flow() {
        let b = parse_block(
            "if (x > 0) { x = x - 1; } elif (x == 0) { return; } else { break; }\n\
             while (true) { continue; }\n\
             foreach l in ls { delete l; }",
        )
        .unwrap();
        assert_eq!(b.stmts.len(), 3);
        let Stmt::If {
            arms, otherwise, ..
        } = &b.stmts[0]
        else {
            panic!()
        };
        assert_eq!(arms.len(), 2);
        assert!(otherwise.is_some());
    }

    #[test]
    fn bridge_call_stmt_and_expr() {
        let b = parse_block("LOG::info(\"hi\"); x = MATH::abs(-3);").unwrap();
        assert!(matches!(&b.stmts[0], Stmt::ExprStmt { .. }));
        assert!(matches!(&b.stmts[1], Stmt::Assign { .. }));
    }

    #[test]
    fn bare_expression_statement_rejected() {
        assert!(parse_block("x + 1;").is_err());
    }

    #[test]
    fn reserved_words_rejected_as_variables() {
        assert!(parse_block("select any create from Lamp;").is_err());
        assert!(parse_block("foreach gen in ls { }").is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_block("x = ;").unwrap_err();
        let CoreError::Parse { pos, .. } = err else {
            panic!("expected parse error")
        };
        assert_eq!(pos.line, 1);
    }

    #[test]
    fn cancel_statement() {
        let b = parse_block("cancel Tick;").unwrap();
        assert!(matches!(&b.stmts[0], Stmt::Cancel { event, .. } if event == "Tick"));
    }

    #[test]
    fn display_round_trip() {
        let src = "\
if ((self.n > 0)) {
    self.n = (self.n - 1);
    gen Tick() to self after 5;
}
else {
    gen done(self.n) to sink;
}
";
        let b = parse_block(src).unwrap();
        let printed = b.to_string();
        let reparsed = parse_block(&printed).unwrap();
        assert_eq!(b, reparsed);
    }
}
