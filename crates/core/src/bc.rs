//! Register-based bytecode for compiled actions: the flat, superinstruction
//! form of [`code`](crate::code).
//!
//! [`CompiledProgram`](crate::code::CompiledProgram) frames are still walked
//! AST-style by [`interp`](crate::interp); this module lowers each
//! [`CAction`] once more, into a contiguous instruction stream executed by a
//! `match`-threaded dispatch loop ([`run_bc`]). Registers are the existing
//! frame slots (parameters, then locals) plus compiler temporaries above
//! them, so the VM reuses the caller's recycled `Vec<Option<Value>>` frame.
//!
//! The lowering is **semantics-exact**, not merely trace-equivalent: every
//! fuel unit the tree-walking interpreter burns is burned here in the same
//! order relative to every fallible check and every host effect, so error
//! identity (fuel exhaustion vs unbound slot vs runtime error) is preserved
//! at exact fuel boundaries. Burns are merged into an instruction's entry
//! `fuel` only when nothing fallible or effectful separates them;
//! otherwise fused handlers burn internally between their checks.
//!
//! **Superinstructions** collapse the dominant traffic shapes measured on
//! the pipeline/doorbell workloads: `self.a = self.a op <lit>`
//! ([`Op::SelfAttrOpConst`]), literal-payload sends ([`Op::SendSelfLit`]
//! and friends, payloads pooled as `Arc<[Value]>` shared with the signal
//! queue), slot/const binops, guard-and-branch fusions, and a
//! navigate-then-`gen … to any(...)` peephole ([`Op::NavFirst`] +
//! [`Op::SendFirstTo`]) that elides the per-dispatch `Vec` materialisation
//! and dedup of the interpreter's navigation.
//!
//! A construct that cannot be encoded (e.g. a frame needing more than
//! `u16::MAX` registers) is not an error: [`BcProgram::new`] records a
//! structured fallback reason and the executor keeps using the
//! compiled-frame interpreter for that action (diagnostic code X0016).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::code::{CAction, CExpr, CStmt, CompiledProgram, FrameLayout, Slot};
use crate::error::{CoreError, Result};
use crate::ids::{ActorId, AssocId, AttrId, ClassId, EventId, InstId, StateId};
use crate::interp::{ActionHost, ExecCtx, Outcome};
use crate::model::Domain;
use crate::value::{apply_binop, apply_unop, BinOp, UnOp, Value};

/// Bytecode operations. Operand conventions per variant are documented as
/// `a`/`b`/`c` (`u16`) and `d` (`i32`: relative jump displacement or a
/// 32-bit id payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operand roles documented per-variant below
pub enum Op {
    /// Burn `fuel` and nothing else (loop-header flushes).
    Fuel,
    /// `a = consts[b]`.
    Const,
    /// `a = frame[b]` (unbound-checked slot read, clones).
    LoadSlot,
    /// `a = self`.
    LoadSelf,
    /// `a = selected` (errors outside a `where` clause).
    LoadSelected,
    /// `a = self.attr(d)`.
    AttrSelf,
    /// `a = reg(b).attr(d)` (as_inst-checked).
    AttrReg,
    /// `a = self -> class(d)[assoc(b)]` (dedup'd set).
    NavSelf,
    /// `a = reg(b) -> class(d)[assoc(c)]` (full navigation semantics).
    NavReg,
    /// `a = unop(c) frame[b]` — by-reference slot operand fast path.
    UnarySlot,
    /// `a = unop(c) reg(b)`.
    UnaryReg,
    /// `a = reg(b) binop(d) reg(c)`.
    BinRR,
    /// `a = frame[b] binop(d) consts[c]` (fused; internal burn).
    BinSC,
    /// `a = consts[b] binop(d) frame[c]` (fused).
    BinCS,
    /// `a = frame[b] binop(d) frame[c]` (fused; internal burn).
    BinSS,
    /// `reg(a).as_inst()?` — ordering check between operand evaluations.
    CheckInst,
    /// `frame[a] = create class(d)`.
    CreateI,
    /// `delete reg(a)`.
    DeleteI,
    /// `frame[a] = select any from class(d)` (no filter).
    SelAny,
    /// `frame[a] = select many from class(d)` (no filter).
    SelMany,
    /// Filtered `select any` init: temps `a`=candidates, `a+1`=index.
    SelFInit,
    /// Filtered `select any` loop head: bind `selected`, exit to `d`.
    /// `a`=dest slot, `b`=candidate base temp.
    SelIterA,
    /// Filtered `select any` take: test filter reg `b`, else jump `d`.
    SelTakeA,
    /// Filtered `select many` init: temps `a`=cands, `a+1`=idx, `a+2`=acc.
    SelFInitM,
    /// Filtered `select many` loop head; `a`=dest slot, `b`=base, exit `d`.
    SelIterM,
    /// Filtered `select many` take: accumulate if reg `b`, jump `d`.
    SelTakeM,
    /// `relate reg(a) to reg(b) across assoc(d)`.
    RelateI,
    /// `unrelate reg(a) from reg(b) across assoc(d)`.
    UnrelateI,
    /// `gen event(d)(regs b..b+c) to reg(a)`.
    SendR,
    /// Delayed send; delay value in reg `b+c`.
    SendDelayedR,
    /// `gen event(d)(regs b..b+c) to actor(a)`.
    SendActorR,
    /// `gen event(d)(regs b..b+c) to self`.
    SendSelf,
    /// `gen event(d)(regs b..b+c) to frame[a]`.
    SendSlot,
    /// `gen event(d)(regs b..b+c) to any(frame[a])`.
    SendAnySlot,
    /// `gen event(d)(payloads[b]) to self` — pooled literal payload.
    SendSelfLit,
    /// `gen event(d)(payloads[b]) to frame[a]`.
    SendSlotLit,
    /// `gen event(d)(payloads[b]) to any(frame[a])`.
    SendAnySlotLit,
    /// `gen event(d)(payloads[b]) to actor(a)`.
    SendActorLit,
    /// `gen event(d)(regs b..b+c) to any(reg(a))` where reg(a) holds the
    /// first navigation hit from [`Op::NavFirst`].
    SendFirstTo,
    /// `reg(a) = first related across assoc(b) from self`, as
    /// `Inst(class(d), first)` — allocation-free navigation peephole.
    NavFirst,
    /// `gen event(d & 0xFFFF)([frame[b] binop(d >> 16) consts[c]]) to
    /// frame[a]` — fused single-argument payload compute + send, the
    /// dominant traffic shape (every pipeline/ring hop forwards
    /// `counter op literal`).
    SendSlotOpC,
    /// Payload as [`Op::SendSlotOpC`], sent to `any(frame[a])`.
    SendAnyOpC,
    /// Payload as [`Op::SendSlotOpC`], sent to the navigation hit left
    /// in `reg(a)` by [`Op::NavFirst`].
    SendFirstOpC,
    /// `cancel event(d)` (delayed signals to self).
    CancelI,
    /// `a = bridges[d](regs b..b+c)`.
    CallBridge,
    /// `self.attr(d) = reg(b)`.
    StAttrSelf,
    /// `reg(a).attr(d) = reg(b)`.
    StAttrReg,
    /// `self.attr(d) = consts[b]`.
    StAttrSelfConst,
    /// `self.attr(d) = self.attr(a) binop(c) consts[b]` — the
    /// increment/accumulate superinstruction.
    SelfAttrOpConst,
    /// Unconditional relative jump to `d`.
    Jump,
    /// Jump to `d` unless reg(a) is `true` (as_bool-checked).
    JumpIfFalse,
    /// Guard fusion: jump to `d` unless `frame[a] binop(c) consts[b]`.
    JmpSCFalse,
    /// Guard fusion: jump to `d` unless `frame[a] binop(c) frame[b]`.
    JmpSSFalse,
    /// `foreach` loop head: `a`=bind slot, `b`=set reg, `c`=index reg,
    /// exhaust exit to `d`.
    ForIter,
    /// `return;`
    Ret,
    /// End of action (completed).
    Halt,
    /// `break;` outside any loop (runtime error, after burning).
    ErrBreak,
    /// `continue;` outside any loop (runtime error, after burning).
    ErrContinue,
}

/// One bytecode instruction: opcode, three short operands, one wide
/// operand (`d`: relative jump displacement or 32-bit id), and the fuel
/// burned on entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// First short operand (usually the destination register).
    pub a: u16,
    /// Second short operand.
    pub b: u16,
    /// Third short operand.
    pub c: u16,
    /// Wide operand: relative jump target (`pc + 1 + d`) or an id index.
    pub d: i32,
    /// Fuel burned before the operation executes (merged from the
    /// interpreter's per-node burns where exactness allows).
    pub fuel: u32,
}

/// A lowered action: flat code, pools, and the register file size.
#[derive(Debug, Clone)]
pub struct BcAction {
    /// The instruction stream; always ends in [`Op::Halt`].
    pub code: Vec<Instr>,
    /// Literal pool.
    pub consts: Vec<Value>,
    /// Pooled literal signal payloads, shared with the send queue.
    pub payloads: Vec<Arc<[Value]>>,
    /// Bridge-call targets (actor, function name).
    pub bridges: Vec<(ActorId, String)>,
    /// Register file size: frame slots `0..layout.len()` then temporaries.
    pub n_regs: usize,
    /// Static class of `self`.
    pub self_class: ClassId,
    /// Slot layout (for unbound-read diagnostics).
    pub layout: FrameLayout,
    /// Self-attribute reads folded to constants because the effect
    /// analysis proved the attribute is written nowhere in the model.
    pub const_folds: u32,
}

impl BcAction {
    /// True when running this action can have no observable effect:
    /// every instruction is pure fuel accounting or the terminator.
    /// Fuel and step counts live in a per-dispatch [`ExecCtx`] and are
    /// discarded on return (an empty body can never exhaust
    /// `DEFAULT_FUEL`), so executors may skip the VM entirely for such
    /// actions.
    pub fn is_nop(&self) -> bool {
        self.code
            .iter()
            .all(|i| matches!(i.op, Op::Fuel | Op::Halt))
    }
}

/// One `(class, state, event)` entry of a [`BcProgram`].
#[derive(Debug, Clone)]
pub enum BcEntry {
    /// Lowered successfully; execute with [`run_bc`]. Shared via `Arc`
    /// so executors can pre-resolve dispatch tables holding direct,
    /// thread-safe references to the action.
    Vm(Arc<BcAction>),
    /// Not encodable; the executor falls back to the frame interpreter
    /// (diagnostic X0016, reason recorded in [`BcProgram::fallbacks`]).
    Unsupported,
}

/// A recorded lowering fallback (surfaced as diagnostic X0016).
#[derive(Debug, Clone)]
pub struct BcFallback {
    /// The class whose action could not be lowered.
    pub class: ClassId,
    /// The state entered.
    pub state: StateId,
    /// The triggering event.
    pub event: EventId,
    /// Why the lowering bailed.
    pub reason: String,
}

#[derive(Debug, Clone, Default)]
struct BcClass {
    n_events: usize,
    entries: Vec<Option<BcEntry>>,
}

/// All lowered actions of a domain, indexed like
/// [`CompiledProgram`](crate::code::CompiledProgram):
/// `state * n_events + event` per class.
#[derive(Debug, Clone, Default)]
pub struct BcProgram {
    classes: Vec<BcClass>,
    /// Actions that fell back to the frame interpreter, with reasons.
    pub fallbacks: Vec<BcFallback>,
}

impl BcProgram {
    /// Lowers every compiled action of `program`. Never fails: entries
    /// that cannot be encoded become [`BcEntry::Unsupported`] and are
    /// recorded in [`BcProgram::fallbacks`]; entries whose frame
    /// compilation already failed stay `None` (the frame path re-raises
    /// lazily, exactly as before).
    pub fn new(domain: &Domain, program: &CompiledProgram) -> BcProgram {
        // Whole-model constant-attribute facts from the effect analysis:
        // an attribute written nowhere always holds its declared default,
        // so `self.attr` reads of it lower to `Op::Const`.
        let empty = BTreeMap::new();
        let folds = const_fold_maps(domain);
        let mut fallbacks = Vec::new();
        let classes = program
            .classes
            .iter()
            .enumerate()
            .map(|(ci, cc)| {
                let consts = folds.get(ci).unwrap_or(&empty);
                let entries = cc
                    .actions
                    .iter()
                    .enumerate()
                    .map(|(idx, slot)| match slot {
                        Some(Ok(action)) => match lower_action_with(action, consts) {
                            Ok(bca) => Some(BcEntry::Vm(Arc::new(bca))),
                            Err(reason) => {
                                let (state, event) = idx
                                    .checked_div(cc.n_events)
                                    .map_or((0, 0), |s| (s, idx % cc.n_events));
                                fallbacks.push(BcFallback {
                                    class: ClassId::new(ci as u32),
                                    state: StateId::new(state as u32),
                                    event: EventId::new(event as u32),
                                    reason,
                                });
                                Some(BcEntry::Unsupported)
                            }
                        },
                        Some(Err(_)) | None => None,
                    })
                    .collect();
                BcClass {
                    n_events: cc.n_events,
                    entries,
                }
            })
            .collect();
        BcProgram { classes, fallbacks }
    }

    /// The lowered entry for `event` driving `class` into `state`, if the
    /// pair has a compiled action at all.
    #[inline]
    pub fn entry(&self, class: ClassId, state: StateId, event: EventId) -> Option<&BcEntry> {
        let cc = self.classes.get(class.index())?;
        cc.entries
            .get(state.index() * cc.n_events + event.index())?
            .as_ref()
    }

    /// Total lowered (VM-executable) entries.
    pub fn vm_entries(&self) -> usize {
        self.classes
            .iter()
            .flat_map(|c| c.entries.iter())
            .filter(|e| matches!(e, Some(BcEntry::Vm(_))))
            .count()
    }

    /// Total self-attribute reads folded to constants across all lowered
    /// actions, using the effect analysis as the fact source.
    pub fn const_folds(&self) -> u32 {
        self.classes
            .iter()
            .flat_map(|c| c.entries.iter())
            .filter_map(|e| match e {
                Some(BcEntry::Vm(a)) => Some(a.const_folds),
                _ => None,
            })
            .sum()
    }
}

/// Per-class maps from attribute index to declared default, restricted to
/// attributes the effect analysis proves constant (written nowhere in the
/// model).
fn const_fold_maps(domain: &Domain) -> Vec<BTreeMap<AttrId, Value>> {
    let mut maps = vec![BTreeMap::new(); domain.classes.len()];
    for (class, attr) in crate::effects::const_attrs(domain) {
        let default = domain.classes[class.index()].attributes[attr.index()]
            .default
            .clone();
        maps[class.index()].insert(attr, default);
    }
    maps
}

// -- lowering --------------------------------------------------------------

type LRes<T> = std::result::Result<T, String>;

fn u16_of(x: usize, what: &str) -> LRes<u16> {
    u16::try_from(x).map_err(|_| format!("{what} index {x} exceeds the u16 operand limit"))
}

struct LoopCtx {
    /// Instruction index `continue` jumps back to.
    continue_to: usize,
    /// Forward-jump sites to patch to the loop exit.
    breaks: Vec<usize>,
}

struct Lower {
    code: Vec<Instr>,
    consts: Vec<Value>,
    payloads: Vec<Arc<[Value]>>,
    bridges: Vec<(ActorId, String)>,
    /// Next scratch temporary (reset per statement, to `floor`).
    next_temp: usize,
    /// Temporaries below this survive across statements (loop state).
    floor: usize,
    /// Register-file high-water mark.
    high: usize,
    loops: Vec<LoopCtx>,
    /// Read count per slot over the whole action (peephole legality).
    reads: Vec<u32>,
    /// Declared defaults of provably-const `self` attributes; empty when
    /// the action contains a `delete` (a read after deleting `self` must
    /// still raise, exactly as the walker does).
    fold: BTreeMap<AttrId, Value>,
    /// Count of self-attribute reads folded to constants.
    folds: u32,
}

/// Lowers one compiled action to bytecode.
///
/// # Errors
///
/// Returns a human-readable reason when the action cannot be encoded
/// (operand-width overflow); the caller falls back to the frame
/// interpreter for that action.
pub fn lower_action(action: &CAction) -> LRes<BcAction> {
    lower_action_with(action, &BTreeMap::new())
}

/// Like [`lower_action`], with whole-model constant-attribute facts from
/// the effect analysis (see [`crate::effects::const_attrs`]).
///
/// `const_attrs` maps attributes of the action's `self` class to their
/// declared defaults, restricted to attributes written nowhere in the
/// model. Reads of those attributes through `self` lower to [`Op::Const`]
/// at the same fuel as the `AttrSelf` fast path — fuel-neutral and
/// walker-exact. The fold is disabled wholesale when the action contains
/// a `delete`: a `self.attr` read after deleting `self` must still raise.
///
/// # Errors
///
/// Same failure modes as [`lower_action`].
pub fn lower_action_with(
    action: &CAction,
    const_attrs: &BTreeMap<AttrId, Value>,
) -> LRes<BcAction> {
    let slots = action.layout.len();
    let mut reads = vec![0u32; slots];
    count_stmt_reads(&action.code, &mut reads);
    let fold = if const_attrs.is_empty() || stmts_contain_delete(&action.code) {
        BTreeMap::new()
    } else {
        const_attrs.clone()
    };
    let mut lw = Lower {
        code: Vec::new(),
        consts: Vec::new(),
        payloads: Vec::new(),
        bridges: Vec::new(),
        next_temp: slots,
        floor: slots,
        high: slots,
        loops: Vec::new(),
        reads,
        fold,
        folds: 0,
    };
    // Every slot must itself be addressable.
    u16_of(slots, "frame slot")?;
    lw.stmt_list(&action.code, 1)?;
    lw.emit(Op::Halt, 0, 0, 0, 0, 0);
    Ok(BcAction {
        code: lw.code,
        consts: lw.consts,
        payloads: lw.payloads,
        bridges: lw.bridges,
        n_regs: lw.high,
        self_class: action.self_class,
        layout: action.layout.clone(),
        const_folds: lw.folds,
    })
}

/// Whether any (possibly nested) statement is a `delete`.
fn stmts_contain_delete(stmts: &[CStmt]) -> bool {
    stmts.iter().any(|s| match s {
        CStmt::Delete { .. } => true,
        CStmt::If { arms, otherwise } => {
            arms.iter().any(|(_, body)| stmts_contain_delete(body))
                || otherwise.as_deref().is_some_and(stmts_contain_delete)
        }
        CStmt::While { body, .. } | CStmt::ForEach { body, .. } => stmts_contain_delete(body),
        _ => false,
    })
}

fn count_expr_reads(e: &CExpr, reads: &mut [u32]) {
    match e {
        CExpr::Slot(s) => reads[*s] += 1,
        CExpr::Lit(_) | CExpr::SelfRef | CExpr::Selected => {}
        CExpr::Attr(b, _) => count_expr_reads(b, reads),
        CExpr::Nav { base, .. } => count_expr_reads(base, reads),
        CExpr::Unary(_, x) => count_expr_reads(x, reads),
        CExpr::Binary(_, a, b) => {
            count_expr_reads(a, reads);
            count_expr_reads(b, reads);
        }
        CExpr::Bridge { args, .. } => {
            for a in args {
                count_expr_reads(a, reads);
            }
        }
    }
}

fn count_stmt_reads(stmts: &[CStmt], reads: &mut [u32]) {
    for s in stmts {
        match s {
            CStmt::AssignSlot { expr, .. } | CStmt::Delete { expr } | CStmt::ExprStmt(expr) => {
                count_expr_reads(expr, reads);
            }
            CStmt::AssignAttr { base, expr, .. } => {
                count_expr_reads(expr, reads);
                count_expr_reads(base, reads);
            }
            CStmt::Create { .. } | CStmt::Cancel { .. } => {}
            CStmt::SelectAny { filter, .. } | CStmt::SelectMany { filter, .. } => {
                if let Some(f) = filter {
                    count_expr_reads(f, reads);
                }
            }
            CStmt::Relate { a, b, .. } | CStmt::Unrelate { a, b, .. } => {
                count_expr_reads(a, reads);
                count_expr_reads(b, reads);
            }
            CStmt::GenInst {
                args,
                target,
                delay,
                ..
            } => {
                for a in args {
                    count_expr_reads(a, reads);
                }
                count_expr_reads(target, reads);
                if let Some(d) = delay {
                    count_expr_reads(d, reads);
                }
            }
            CStmt::GenActor { args, .. } => {
                for a in args {
                    count_expr_reads(a, reads);
                }
            }
            CStmt::If { arms, otherwise } => {
                for (c, body) in arms {
                    count_expr_reads(c, reads);
                    count_stmt_reads(body, reads);
                }
                if let Some(body) = otherwise {
                    count_stmt_reads(body, reads);
                }
            }
            CStmt::While { cond, body } => {
                count_expr_reads(cond, reads);
                count_stmt_reads(body, reads);
            }
            CStmt::ForEach { set, body, .. } => {
                count_expr_reads(set, reads);
                count_stmt_reads(body, reads);
            }
            CStmt::Break | CStmt::Continue | CStmt::Return => {}
        }
    }
}

/// Packs a binop code and an event index into the `d` operand of the
/// fused payload-compute sends: binop in the high half, event in the
/// low. `None` when either overflows its half — the caller falls back
/// to the unfused sequence, so the limit is a deoptimisation, not an
/// error.
fn pack_op_event(op: BinOp, event: EventId) -> Option<i32> {
    let opc = binop_code(op);
    let ev = event.index();
    if opc < 0x8000 && ev <= 0xFFFF {
        Some((i32::from(opc) << 16) | ev as i32)
    } else {
        None
    }
}

fn binop_code(op: BinOp) -> u16 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn binop_from(c: u16) -> BinOp {
    match c {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        _ => BinOp::Or,
    }
}

fn unop_code(op: UnOp) -> u16 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
        UnOp::Cardinality => 2,
        UnOp::Empty => 3,
        UnOp::NotEmpty => 4,
        UnOp::Any => 5,
        UnOp::ToInt => 6,
        UnOp::ToReal => 7,
        UnOp::ToStr => 8,
    }
}

fn unop_from(c: u16) -> UnOp {
    match c {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        2 => UnOp::Cardinality,
        3 => UnOp::Empty,
        4 => UnOp::NotEmpty,
        5 => UnOp::Any,
        6 => UnOp::ToInt,
        7 => UnOp::ToReal,
        _ => UnOp::ToStr,
    }
}

fn id_d(idx: usize) -> i32 {
    idx as u32 as i32
}

impl Lower {
    fn emit(&mut self, op: Op, a: u16, b: u16, c: u16, d: i32, fuel: u32) -> usize {
        self.code.push(Instr {
            op,
            a,
            b,
            c,
            d,
            fuel,
        });
        self.code.len() - 1
    }

    /// Patches a forward jump at `site` to land on the *next* emitted
    /// instruction.
    fn patch_here(&mut self, site: usize) {
        let target = self.code.len();
        self.code[site].d = (target as i64 - site as i64 - 1) as i32;
    }

    fn back_jump(&self, site: usize, target: usize) -> i32 {
        (target as i64 - site as i64 - 1) as i32
    }

    fn temp(&mut self) -> LRes<u16> {
        let r = self.next_temp;
        self.next_temp += 1;
        if self.next_temp > self.high {
            self.high = self.next_temp;
        }
        u16_of(r, "register")
    }

    fn const_idx(&mut self, v: &Value) -> LRes<u16> {
        let idx = match self.consts.iter().position(|c| c == v) {
            Some(i) => i,
            None => {
                self.consts.push(v.clone());
                self.consts.len() - 1
            }
        };
        u16_of(idx, "constant")
    }

    fn payload_idx(&mut self, args: &[CExpr]) -> LRes<u16> {
        let vals: Vec<Value> = args
            .iter()
            .map(|a| match a {
                CExpr::Lit(v) => v.clone(),
                _ => unreachable!("payload pooling requires literal args"),
            })
            .collect();
        let idx = match self.payloads.iter().position(|p| p[..] == vals[..]) {
            Some(i) => i,
            None => {
                self.payloads.push(Arc::from(vals));
                self.payloads.len() - 1
            }
        };
        u16_of(idx, "payload")
    }

    fn bridge_idx(&mut self, actor: ActorId, func: &str) -> LRes<usize> {
        let idx = match self
            .bridges
            .iter()
            .position(|(a, f)| *a == actor && f == func)
        {
            Some(i) => i,
            None => {
                self.bridges.push((actor, func.to_owned()));
                self.bridges.len() - 1
            }
        };
        Ok(idx)
    }

    fn slot16(&self, s: Slot) -> LRes<u16> {
        u16_of(s, "frame slot")
    }

    fn assoc16(&self, a: AssocId) -> LRes<u16> {
        u16_of(a.index(), "association")
    }

    fn actor16(&self, a: ActorId) -> LRes<u16> {
        u16_of(a.index(), "actor")
    }

    // -- statements --------------------------------------------------------

    /// Lowers a statement list; the first statement's entry burn is
    /// `first_pending` (2 inside a `while` body, where the iteration burn
    /// is merged in; 1 everywhere else).
    fn stmt_list(&mut self, stmts: &[CStmt], first_pending: u32) -> LRes<()> {
        let mut i = 0;
        while i < stmts.len() {
            let pending = if i == 0 { first_pending } else { 1 };
            if i + 1 < stmts.len() && self.try_nav_first(&stmts[i], &stmts[i + 1], pending)? {
                i += 2;
                continue;
            }
            self.stmt(&stmts[i], pending)?;
            i += 1;
        }
        Ok(())
    }

    /// The navigate-then-send-to-any peephole:
    /// `s = self -> C[R]; gen Ev(args) to any(s);` where `s` is read
    /// nowhere else lowers to [`Op::NavFirst`] + [`Op::SendFirstTo`],
    /// skipping the set materialisation and dedup entirely (only the
    /// first link matters, and dedup cannot change the first element).
    fn try_nav_first(&mut self, s1: &CStmt, s2: &CStmt, pending: u32) -> LRes<bool> {
        let CStmt::AssignSlot {
            slot,
            expr:
                CExpr::Nav {
                    base,
                    assoc,
                    target,
                },
        } = s1
        else {
            return Ok(false);
        };
        if !matches!(base.as_ref(), CExpr::SelfRef) {
            return Ok(false);
        }
        let CStmt::GenInst {
            event,
            args,
            target: gen_target,
            delay: None,
        } = s2
        else {
            return Ok(false);
        };
        let CExpr::Unary(UnOp::Any, any_operand) = gen_target else {
            return Ok(false);
        };
        let CExpr::Slot(read_slot) = any_operand.as_ref() else {
            return Ok(false);
        };
        if read_slot != slot || self.reads[*slot] != 1 {
            return Ok(false);
        }
        self.next_temp = self.floor;
        let nav_tmp = self.temp()?;
        let assoc16 = self.assoc16(*assoc)?;
        // s1: stmt burn (pending) + Nav node + SelfRef node.
        self.emit(
            Op::NavFirst,
            nav_tmp,
            assoc16,
            0,
            id_d(target.index()),
            pending + 2,
        );
        // s2: args first (carrying the stmt burn), then the fused send.
        // A single `slot binop lit` argument fuses the whole statement
        // into one instruction; fuel 3 = the BinSC loop burn it replaces
        // (stmt 1 + Binary + lhs-Slot), the rest burned in the handler.
        if let Some((sa, lit, op)) = Self::fused_send_arg(args) {
            if let Some(d) = pack_op_event(op, *event) {
                let s16 = self.slot16(sa)?;
                let c = self.const_idx(lit)?;
                self.emit(Op::SendFirstOpC, nav_tmp, s16, c, d, 1 + 2);
                return Ok(true);
            }
        }
        let n = args.len();
        let block = self.arg_block(args, 1)?;
        let send_fuel = if n == 0 { 1 + 2 } else { 2 };
        self.emit(
            Op::SendFirstTo,
            nav_tmp,
            block,
            u16_of(n, "argument count")?,
            id_d(event.index()),
            send_fuel,
        );
        Ok(true)
    }

    /// Allocates a contiguous register block and lowers `args` into it.
    /// The first argument's first instruction carries `pending`.
    fn arg_block(&mut self, args: &[CExpr], pending: u32) -> LRes<u16> {
        let base = self.next_temp;
        self.next_temp += args.len();
        if self.next_temp > self.high {
            self.high = self.next_temp;
        }
        let base16 = u16_of(base, "register")?;
        u16_of(self.next_temp, "register")?;
        for (i, a) in args.iter().enumerate() {
            let p = if i == 0 { pending } else { 0 };
            self.expr(a, p, u16_of(base + i, "register")?)?;
        }
        Ok(base16)
    }

    fn all_lit(args: &[CExpr]) -> bool {
        args.iter().all(|a| matches!(a, CExpr::Lit(_)))
    }

    /// The dominant computed-payload shape: exactly one argument of the
    /// form `slot binop literal` (profile: every pipeline, ring, and
    /// fan-out hop forwards a counter this way). Returns the pieces the
    /// fused send ops need, or `None` to take the generic path.
    fn fused_send_arg(args: &[CExpr]) -> Option<(usize, &Value, BinOp)> {
        if let [CExpr::Binary(op, a, b)] = args {
            if let (CExpr::Slot(sa), CExpr::Lit(v)) = (a.as_ref(), b.as_ref()) {
                return Some((*sa, v, *op));
            }
        }
        None
    }

    fn stmt(&mut self, stmt: &CStmt, pending: u32) -> LRes<()> {
        self.next_temp = self.floor;
        match stmt {
            CStmt::AssignSlot { slot, expr } => {
                let dst = self.slot16(*slot)?;
                self.expr(expr, pending, dst)
            }
            CStmt::AssignAttr { base, attr, expr } => self.assign_attr(base, *attr, expr, pending),
            CStmt::Create { slot, class } => {
                let dst = self.slot16(*slot)?;
                self.emit(Op::CreateI, dst, 0, 0, id_d(class.index()), pending);
                Ok(())
            }
            CStmt::Delete { expr } => {
                let r = self.temp()?;
                self.expr(expr, pending, r)?;
                self.emit(Op::DeleteI, r, 0, 0, 0, 0);
                Ok(())
            }
            CStmt::SelectAny {
                slot,
                class,
                filter,
            } => {
                let dst = self.slot16(*slot)?;
                match filter {
                    None => {
                        self.emit(Op::SelAny, dst, 0, 0, id_d(class.index()), pending);
                        Ok(())
                    }
                    Some(f) => self.select_filtered(dst, *class, f, pending, false),
                }
            }
            CStmt::SelectMany {
                slot,
                class,
                filter,
            } => {
                let dst = self.slot16(*slot)?;
                match filter {
                    None => {
                        self.emit(Op::SelMany, dst, 0, 0, id_d(class.index()), pending);
                        Ok(())
                    }
                    Some(f) => self.select_filtered(dst, *class, f, pending, true),
                }
            }
            CStmt::Relate { a, b, assoc } => self.relate_like(Op::RelateI, a, b, *assoc, pending),
            CStmt::Unrelate { a, b, assoc } => {
                self.relate_like(Op::UnrelateI, a, b, *assoc, pending)
            }
            CStmt::GenInst {
                event,
                args,
                target,
                delay,
            } => self.gen_inst(*event, args, target, delay.as_ref(), pending),
            CStmt::GenActor { actor, event, args } => {
                let n = u16_of(args.len(), "argument count")?;
                let actor16 = self.actor16(*actor)?;
                if Self::all_lit(args) {
                    let payload = self.payload_idx(args)?;
                    self.emit(
                        Op::SendActorLit,
                        actor16,
                        payload,
                        0,
                        id_d(event.index()),
                        pending + args.len() as u32,
                    );
                } else {
                    let block = self.arg_block(args, pending)?;
                    let fuel = if args.is_empty() { pending } else { 0 };
                    self.emit(Op::SendActorR, actor16, block, n, id_d(event.index()), fuel);
                }
                Ok(())
            }
            CStmt::Cancel { event } => {
                self.emit(Op::CancelI, 0, 0, 0, id_d(event.index()), pending);
                Ok(())
            }
            CStmt::If { arms, otherwise } => self.if_stmt(arms, otherwise.as_deref(), pending),
            CStmt::While { cond, body } => self.while_stmt(cond, body, pending),
            CStmt::ForEach { slot, set, body } => self.foreach_stmt(*slot, set, body, pending),
            CStmt::Break => {
                match self.loops.last_mut() {
                    Some(_) => {
                        let site = self.emit(Op::Jump, 0, 0, 0, 0, pending);
                        self.loops
                            .last_mut()
                            .expect("loop context")
                            .breaks
                            .push(site);
                    }
                    None => {
                        self.emit(Op::ErrBreak, 0, 0, 0, 0, pending);
                    }
                }
                Ok(())
            }
            CStmt::Continue => {
                match self.loops.last() {
                    Some(ctx) => {
                        let target = ctx.continue_to;
                        let site = self.emit(Op::Jump, 0, 0, 0, 0, pending);
                        self.code[site].d = self.back_jump(site, target);
                    }
                    None => {
                        self.emit(Op::ErrContinue, 0, 0, 0, 0, pending);
                    }
                }
                Ok(())
            }
            CStmt::Return => {
                self.emit(Op::Ret, 0, 0, 0, 0, pending);
                Ok(())
            }
            CStmt::ExprStmt(expr) => {
                let r = self.temp()?;
                self.expr(expr, pending, r)
            }
        }
    }

    fn assign_attr(&mut self, base: &CExpr, attr: AttrId, expr: &CExpr, pending: u32) -> LRes<()> {
        if matches!(base, CExpr::SelfRef) {
            // Fusions on the dominant `self.a = ...` shape.
            match expr {
                CExpr::Lit(v) => {
                    // stmt + Lit node + SelfRef base fast path.
                    let c = self.const_idx(v)?;
                    self.emit(
                        Op::StAttrSelfConst,
                        0,
                        c,
                        0,
                        id_d(attr.index()),
                        pending + 2,
                    );
                    return Ok(());
                }
                CExpr::Binary(op, lhs, rhs) => {
                    if let (CExpr::Attr(ab, read_attr), CExpr::Lit(v)) =
                        (lhs.as_ref(), rhs.as_ref())
                    {
                        // When the read attribute is provably const, skip
                        // the fusion: the generic path below folds the
                        // read to a constant instead.
                        if matches!(ab.as_ref(), CExpr::SelfRef)
                            && !self.fold.contains_key(read_attr)
                        {
                            // stmt + Binary + Attr + inner SelfRef burns up
                            // front; Lit and base-SelfRef burns are internal
                            // (they follow fallible reads/applies).
                            let ra = u16_of(read_attr.index(), "attribute")?;
                            let c = self.const_idx(v)?;
                            self.emit(
                                Op::SelfAttrOpConst,
                                ra,
                                c,
                                binop_code(*op),
                                id_d(attr.index()),
                                pending + 3,
                            );
                            return Ok(());
                        }
                    }
                }
                _ => {}
            }
            let rv = self.temp()?;
            self.expr(expr, pending, rv)?;
            self.emit(Op::StAttrSelf, 0, rv, 0, id_d(attr.index()), 1);
            return Ok(());
        }
        let rv = self.temp()?;
        self.expr(expr, pending, rv)?;
        let rb = self.temp()?;
        self.expr(base, 0, rb)?;
        self.emit(Op::StAttrReg, rb, rv, 0, id_d(attr.index()), 0);
        Ok(())
    }

    fn relate_like(
        &mut self,
        op: Op,
        a: &CExpr,
        b: &CExpr,
        assoc: AssocId,
        pending: u32,
    ) -> LRes<()> {
        let ra = self.temp()?;
        self.expr(a, pending, ra)?;
        // The interpreter as_inst-checks `a` before evaluating `b`.
        self.emit(Op::CheckInst, ra, 0, 0, 0, 0);
        let rb = self.temp()?;
        self.expr(b, 0, rb)?;
        self.emit(op, ra, rb, 0, id_d(assoc.index()), 0);
        Ok(())
    }

    fn gen_inst(
        &mut self,
        event: EventId,
        args: &[CExpr],
        target: &CExpr,
        delay: Option<&CExpr>,
        pending: u32,
    ) -> LRes<()> {
        let n = args.len();
        let n16 = u16_of(n, "argument count")?;
        let ev = id_d(event.index());
        if delay.is_none() && Self::all_lit(args) {
            // Literal payload: pooled Arc shared straight into the queue.
            let nfuel = n as u32;
            match target {
                CExpr::SelfRef => {
                    let p = self.payload_idx(args)?;
                    self.emit(Op::SendSelfLit, 0, p, 0, ev, pending + nfuel + 1);
                    return Ok(());
                }
                CExpr::Slot(s) => {
                    let p = self.payload_idx(args)?;
                    let s16 = self.slot16(*s)?;
                    self.emit(Op::SendSlotLit, s16, p, 0, ev, pending + nfuel + 1);
                    return Ok(());
                }
                CExpr::Unary(UnOp::Any, operand) => {
                    if let CExpr::Slot(s) = operand.as_ref() {
                        let p = self.payload_idx(args)?;
                        let s16 = self.slot16(*s)?;
                        self.emit(Op::SendAnySlotLit, s16, p, 0, ev, pending + nfuel + 2);
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
        if delay.is_none() {
            // Single `slot binop lit` argument to a slot / any(slot)
            // target: fuse payload compute and send into one
            // instruction. Fuel `pending + 2` is the BinSC loop burn the
            // fusion replaces; the handler burns the rest in the same
            // order the unfused pair would.
            if let Some((sa, lit, op)) = Self::fused_send_arg(args) {
                if let Some(d) = pack_op_event(op, event) {
                    match target {
                        CExpr::Slot(s) => {
                            let s16 = self.slot16(*s)?;
                            let sa16 = self.slot16(sa)?;
                            let c = self.const_idx(lit)?;
                            self.emit(Op::SendSlotOpC, s16, sa16, c, d, pending + 2);
                            return Ok(());
                        }
                        CExpr::Unary(UnOp::Any, operand) => {
                            if let CExpr::Slot(s) = operand.as_ref() {
                                let s16 = self.slot16(*s)?;
                                let sa16 = self.slot16(sa)?;
                                let c = self.const_idx(lit)?;
                                self.emit(Op::SendAnyOpC, s16, sa16, c, d, pending + 2);
                                return Ok(());
                            }
                        }
                        _ => {}
                    }
                }
            }
            // Computed args, fused common targets.
            match target {
                CExpr::SelfRef => {
                    let block = self.arg_block(args, pending)?;
                    let fuel = if n == 0 { pending + 1 } else { 1 };
                    self.emit(Op::SendSelf, 0, block, n16, ev, fuel);
                    return Ok(());
                }
                CExpr::Slot(s) => {
                    let s16 = self.slot16(*s)?;
                    let block = self.arg_block(args, pending)?;
                    let fuel = if n == 0 { pending + 1 } else { 1 };
                    self.emit(Op::SendSlot, s16, block, n16, ev, fuel);
                    return Ok(());
                }
                CExpr::Unary(UnOp::Any, operand) => {
                    if let CExpr::Slot(s) = operand.as_ref() {
                        let s16 = self.slot16(*s)?;
                        let block = self.arg_block(args, pending)?;
                        let fuel = if n == 0 { pending + 2 } else { 2 };
                        self.emit(Op::SendAnySlot, s16, block, n16, ev, fuel);
                        return Ok(());
                    }
                }
                _ => {}
            }
        }
        // Generic path. Register layout: args at block..block+n, the delay
        // (when present) at block+n.
        let base = self.next_temp;
        let extra = usize::from(delay.is_some());
        self.next_temp += n + extra;
        if self.next_temp > self.high {
            self.high = self.next_temp;
        }
        let block = u16_of(base, "register")?;
        u16_of(self.next_temp, "register")?;
        for (i, a) in args.iter().enumerate() {
            let p = if i == 0 { pending } else { 0 };
            self.expr(a, p, u16_of(base + i, "register")?)?;
        }
        let rt = self.temp()?;
        self.expr(target, if n == 0 { pending } else { 0 }, rt)?;
        match delay {
            None => {
                self.emit(Op::SendR, rt, block, n16, ev, 0);
            }
            Some(d) => {
                // as_inst on the target precedes the delay evaluation.
                self.emit(Op::CheckInst, rt, 0, 0, 0, 0);
                self.expr(d, 0, u16_of(base + n, "register")?)?;
                self.emit(Op::SendDelayedR, rt, block, n16, ev, 0);
            }
        }
        Ok(())
    }

    fn if_stmt(
        &mut self,
        arms: &[(CExpr, Vec<CStmt>)],
        otherwise: Option<&[CStmt]>,
        pending: u32,
    ) -> LRes<()> {
        let mut end_sites = Vec::new();
        let mut p = pending;
        if arms.is_empty() && p > 0 {
            self.emit(Op::Fuel, 0, 0, 0, 0, p);
            p = 0;
        }
        for (cond, body) in arms {
            let false_site = self.guard(cond, p)?;
            p = 0;
            self.stmt_list(body, 1)?;
            end_sites.push(self.emit(Op::Jump, 0, 0, 0, 0, 0));
            self.patch_here(false_site);
        }
        if let Some(body) = otherwise {
            self.stmt_list(body, 1)?;
        }
        for site in end_sites {
            self.patch_here(site);
        }
        let _ = p;
        Ok(())
    }

    /// Lowers a condition and emits a jump-if-false, fusing slot/const
    /// comparisons. Returns the jump site to patch.
    fn guard(&mut self, cond: &CExpr, pending: u32) -> LRes<usize> {
        if let CExpr::Binary(op, lhs, rhs) = cond {
            match (lhs.as_ref(), rhs.as_ref()) {
                (CExpr::Slot(s), CExpr::Lit(v)) => {
                    let s16 = self.slot16(*s)?;
                    let c = self.const_idx(v)?;
                    // Binary + lhs-Slot nodes up front; the Lit burn is
                    // internal (it follows the fallible slot read).
                    return Ok(self.emit(Op::JmpSCFalse, s16, c, binop_code(*op), 0, pending + 2));
                }
                (CExpr::Slot(sa), CExpr::Slot(sb)) => {
                    let a16 = self.slot16(*sa)?;
                    let b16 = self.slot16(*sb)?;
                    return Ok(self.emit(
                        Op::JmpSSFalse,
                        a16,
                        b16,
                        binop_code(*op),
                        0,
                        pending + 2,
                    ));
                }
                _ => {}
            }
        }
        let rc = self.temp()?;
        self.expr(cond, pending, rc)?;
        Ok(self.emit(Op::JumpIfFalse, rc, 0, 0, 0, 0))
    }

    fn while_stmt(&mut self, cond: &CExpr, body: &[CStmt], pending: u32) -> LRes<()> {
        // The statement burn fires once; the condition re-evaluates every
        // iteration, so its fuel cannot carry the entry burn.
        self.emit(Op::Fuel, 0, 0, 0, 0, pending);
        let head = self.code.len();
        let exit_site = self.guard(cond, 0)?;
        self.loops.push(LoopCtx {
            continue_to: head,
            breaks: Vec::new(),
        });
        if body.is_empty() {
            // Iteration burn with an empty body.
            self.emit(Op::Fuel, 0, 0, 0, 0, 1);
        } else {
            // Iteration burn merged into the first body statement.
            self.stmt_list(body, 2)?;
        }
        let back = self.emit(Op::Jump, 0, 0, 0, 0, 0);
        self.code[back].d = self.back_jump(back, head);
        let ctx = self.loops.pop().expect("loop context");
        self.patch_here(exit_site);
        for site in ctx.breaks {
            self.patch_here(site);
        }
        Ok(())
    }

    fn foreach_stmt(&mut self, slot: Slot, set: &CExpr, body: &[CStmt], pending: u32) -> LRes<()> {
        let dst = self.slot16(slot)?;
        let rset = self.temp()?;
        self.expr(set, pending, rset)?;
        let ridx = self.temp()?;
        let zero = self.const_idx(&Value::Int(0))?;
        self.emit(Op::Const, ridx, zero, 0, 0, 0);
        let head = self.code.len();
        let iter_site = self.emit(Op::ForIter, dst, rset, ridx, 0, 0);
        self.loops.push(LoopCtx {
            continue_to: head,
            breaks: Vec::new(),
        });
        // Loop state must survive the per-statement scratch reset.
        let saved_floor = self.floor;
        self.floor = self.next_temp;
        self.stmt_list(body, 1)?;
        self.floor = saved_floor;
        let back = self.emit(Op::Jump, 0, 0, 0, 0, 0);
        self.code[back].d = self.back_jump(back, head);
        let ctx = self.loops.pop().expect("loop context");
        self.patch_here(iter_site);
        for site in ctx.breaks {
            self.patch_here(site);
        }
        Ok(())
    }

    fn select_filtered(
        &mut self,
        dst: u16,
        class: ClassId,
        filter: &CExpr,
        pending: u32,
        many: bool,
    ) -> LRes<()> {
        // Candidate list, index and (for `many`) accumulator live in
        // adjacent temps; the loop ops address them via the base temp.
        let rbase = self.temp()?;
        let _ridx = self.temp()?;
        if many {
            let _racc = self.temp()?;
        }
        let (init, iter, take) = if many {
            (Op::SelFInitM, Op::SelIterM, Op::SelTakeM)
        } else {
            (Op::SelFInit, Op::SelIterA, Op::SelTakeA)
        };
        self.emit(init, rbase, 0, 0, id_d(class.index()), pending);
        let head = self.code.len();
        let iter_site = self.emit(iter, dst, rbase, 0, 0, 0);
        let rf = self.temp()?;
        self.expr(filter, 0, rf)?;
        let take_site = self.emit(take, dst, rf, rbase, 0, 0);
        self.code[take_site].d = self.back_jump(take_site, head);
        self.patch_here(iter_site);
        Ok(())
    }

    // -- expressions -------------------------------------------------------

    /// Lowers `e` into `dst`. `pending` is fuel owed from enclosing nodes,
    /// burned (together with this node's own unit) by the first emitted
    /// instruction.
    fn expr(&mut self, e: &CExpr, pending: u32, dst: u16) -> LRes<()> {
        match e {
            CExpr::Lit(v) => {
                let c = self.const_idx(v)?;
                self.emit(Op::Const, dst, c, 0, 0, pending + 1);
                Ok(())
            }
            CExpr::Slot(s) => {
                let s16 = self.slot16(*s)?;
                self.emit(Op::LoadSlot, dst, s16, 0, 0, pending + 1);
                Ok(())
            }
            CExpr::SelfRef => {
                self.emit(Op::LoadSelf, dst, 0, 0, 0, pending + 1);
                Ok(())
            }
            CExpr::Selected => {
                self.emit(Op::LoadSelected, dst, 0, 0, 0, pending + 1);
                Ok(())
            }
            CExpr::Attr(base, attr) => {
                if matches!(base.as_ref(), CExpr::SelfRef) {
                    if let Some(v) = self.fold.get(attr).cloned() {
                        // Effect-analysis fold: the attribute is written
                        // nowhere in the model, so the read always yields
                        // the declared default. Fuel matches AttrSelf.
                        let c = self.const_idx(&v)?;
                        self.folds += 1;
                        self.emit(Op::Const, dst, c, 0, 0, pending + 2);
                        return Ok(());
                    }
                    // Attr node + SelfRef fast-path burn.
                    self.emit(Op::AttrSelf, dst, 0, 0, id_d(attr.index()), pending + 2);
                    return Ok(());
                }
                let rb = self.temp()?;
                self.expr(base, pending + 1, rb)?;
                self.emit(Op::AttrReg, dst, rb, 0, id_d(attr.index()), 0);
                Ok(())
            }
            CExpr::Nav {
                base,
                assoc,
                target,
            } => {
                let a16 = self.assoc16(*assoc)?;
                if matches!(base.as_ref(), CExpr::SelfRef) {
                    self.emit(Op::NavSelf, dst, a16, 0, id_d(target.index()), pending + 2);
                    return Ok(());
                }
                let rb = self.temp()?;
                self.expr(base, pending + 1, rb)?;
                self.emit(Op::NavReg, dst, rb, a16, id_d(target.index()), 0);
                Ok(())
            }
            CExpr::Unary(op, operand) => {
                if let CExpr::Slot(s) = operand.as_ref() {
                    // By-reference slot operand (no clone), matching the
                    // interpreter's fast path.
                    let s16 = self.slot16(*s)?;
                    self.emit(Op::UnarySlot, dst, s16, unop_code(*op), 0, pending + 2);
                    return Ok(());
                }
                let rs = self.temp()?;
                self.expr(operand, pending + 1, rs)?;
                self.emit(Op::UnaryReg, dst, rs, unop_code(*op), 0, 0);
                Ok(())
            }
            CExpr::Binary(op, a, b) => {
                let opc = binop_code(*op);
                match (a.as_ref(), b.as_ref()) {
                    (CExpr::Slot(sa), CExpr::Lit(v)) => {
                        let s16 = self.slot16(*sa)?;
                        let c = self.const_idx(v)?;
                        // Binary + lhs-Slot nodes up front; the Lit burn is
                        // internal (after the fallible slot read).
                        self.emit(Op::BinSC, dst, s16, c, i32::from(opc), pending + 2);
                        Ok(())
                    }
                    (CExpr::Lit(v), CExpr::Slot(sb)) => {
                        let c = self.const_idx(v)?;
                        let s16 = self.slot16(*sb)?;
                        // Binary + Lit + rhs-Slot nodes all up front:
                        // nothing fallible separates those three burns.
                        self.emit(Op::BinCS, dst, c, s16, i32::from(opc), pending + 3);
                        Ok(())
                    }
                    (CExpr::Slot(sa), CExpr::Slot(sb)) => {
                        let a16 = self.slot16(*sa)?;
                        let b16 = self.slot16(*sb)?;
                        self.emit(Op::BinSS, dst, a16, b16, i32::from(opc), pending + 2);
                        Ok(())
                    }
                    _ => {
                        let ra = self.temp()?;
                        self.expr(a, pending + 1, ra)?;
                        let rb = self.temp()?;
                        self.expr(b, 0, rb)?;
                        self.emit(Op::BinRR, dst, ra, rb, i32::from(opc), 0);
                        Ok(())
                    }
                }
            }
            CExpr::Bridge { actor, func, args } => {
                let idx = self.bridge_idx(*actor, func)?;
                let n = u16_of(args.len(), "argument count")?;
                if args.is_empty() {
                    self.emit(Op::CallBridge, dst, 0, 0, id_d(idx), pending + 1);
                    return Ok(());
                }
                let block = self.arg_block(args, pending + 1)?;
                self.emit(Op::CallBridge, dst, block, n, id_d(idx), 0);
                Ok(())
            }
        }
    }
}

// -- the VM ----------------------------------------------------------------

#[cold]
fn unbound(layout: &FrameLayout, idx: usize) -> CoreError {
    if idx < layout.len() {
        let kind = if idx < layout.params() {
            "event parameter"
        } else {
            "variable"
        };
        CoreError::unresolved(kind, layout.name(idx).to_owned())
    } else {
        CoreError::runtime("internal: unbound VM register")
    }
}

#[inline(always)]
fn rd<'f>(frame: &'f [Option<Value>], layout: &FrameLayout, i: u16) -> Result<&'f Value> {
    match frame[usize::from(i)].as_ref() {
        Some(v) => Ok(v),
        None => Err(unbound(layout, usize::from(i))),
    }
}

#[inline(always)]
fn jump(pc: usize, d: i32) -> usize {
    (pc as i64 + 1 + i64::from(d)) as usize
}

/// Packs `n` consecutive argument registers into the `Arc<[Value]>` a
/// computed send hands to [`ActionHost::send_arc`], reusing a
/// uniquely-owned buffer from the host's payload pool when one of the
/// right arity is available — the zero-allocation fast path — and
/// falling back to a fresh allocation otherwise.
#[inline]
fn take_args_arc<H: ActionHost>(
    host: &mut H,
    frame: &mut [Option<Value>],
    block: u16,
    n: u16,
) -> Arc<[Value]> {
    match host.take_payload(usize::from(n)) {
        Some(mut arc) => {
            let slots = Arc::get_mut(&mut arc).expect("pooled payloads are uniquely owned");
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = frame[usize::from(block) + i]
                    .take()
                    .expect("argument register written by lowering");
            }
            arc
        }
        None => Arc::from(take_args(frame, block, n)),
    }
}

/// The shared payload half of the fused compute-and-send ops: evaluates
/// `frame[b] binop(d >> 16) consts[c]` with exactly the burn/error
/// order of the [`Op::BinSC`] instruction the fusion replaced (bound
/// check, then the internal Lit burn, then the fallible binop).
#[inline(always)]
fn fused_payload(
    ctx: &mut ExecCtx,
    layout: &FrameLayout,
    act: &BcAction,
    ins: &Instr,
) -> Result<Value> {
    let b = usize::from(ins.b);
    if ctx.frame[b].is_none() {
        return Err(unbound(layout, b));
    }
    ctx.burn(1)?;
    let va = ctx.frame[b].as_ref().expect("checked");
    apply_binop(
        binop_from((ins.d as u32 >> 16) as u16),
        va,
        &act.consts[usize::from(ins.c)],
    )
}

/// Wraps a single computed value as a send payload, reusing a pooled
/// buffer when the host has one of arity 1.
#[inline(always)]
fn payload1<H: ActionHost>(host: &mut H, v: Value) -> Arc<[Value]> {
    match host.take_payload(1) {
        Some(mut arc) => {
            Arc::get_mut(&mut arc).expect("pooled payloads are uniquely owned")[0] = v;
            arc
        }
        None => Arc::from(vec![v]),
    }
}

#[inline(always)]
fn take_args(frame: &mut [Option<Value>], block: u16, n: u16) -> Vec<Value> {
    (0..usize::from(n))
        .map(|i| {
            frame[usize::from(block) + i]
                .take()
                .expect("argument register written by lowering")
        })
        .collect()
}

/// Reads the integer loop counter maintained by the select/foreach ops.
#[inline(always)]
fn counter(frame: &[Option<Value>], r: usize) -> usize {
    match frame[r] {
        Some(Value::Int(i)) => i as usize,
        _ => unreachable!("loop counter register holds an int"),
    }
}

/// Reads `(class, len)` of the candidate/iteration set register.
#[inline(always)]
fn set_head(frame: &[Option<Value>], r: usize) -> (ClassId, usize) {
    match &frame[r] {
        Some(Value::Set(c, items)) => (*c, items.len()),
        _ => unreachable!("set register holds a set"),
    }
}

#[inline(always)]
fn set_item(frame: &[Option<Value>], r: usize, idx: usize) -> InstId {
    match &frame[r] {
        Some(Value::Set(_, items)) => items[idx],
        _ => unreachable!("set register holds a set"),
    }
}

/// Executes a lowered action against `host`. The caller provides `ctx`
/// with a frame sized to [`BcAction::n_regs`] and the parameter slots
/// bound (exactly as for [`run_code`](crate::interp::run_code)); steps and
/// fuel accounting match the frame interpreter unit for unit.
///
/// # Errors
///
/// The same errors, with the same messages, in the same order, as
/// [`run_code`](crate::interp::run_code) on the corresponding
/// [`CAction`].
pub fn run_bc<H: ActionHost>(host: &mut H, ctx: &mut ExecCtx, act: &BcAction) -> Result<Outcome> {
    let code = &act.code[..];
    let layout = &act.layout;
    let mut pc: usize = 0;
    loop {
        let ins = code[pc];
        if ins.fuel != 0 {
            ctx.burn(u64::from(ins.fuel))?;
        }
        let mut next = pc + 1;
        let a = usize::from(ins.a);
        match ins.op {
            Op::Fuel => {}
            Op::Const => ctx.frame[a] = Some(act.consts[usize::from(ins.b)].clone()),
            Op::LoadSlot => {
                let v = rd(&ctx.frame, layout, ins.b)?.clone();
                ctx.frame[a] = Some(v);
            }
            Op::LoadSelf => {
                ctx.frame[a] = Some(Value::Inst(ctx.self_class, Some(ctx.self_inst)));
            }
            Op::LoadSelected => {
                let v = ctx.selected.clone().ok_or_else(|| {
                    CoreError::runtime("`selected` used outside a `where` clause")
                })?;
                ctx.frame[a] = Some(v);
            }
            Op::AttrSelf => {
                let v = host.attr_read(ctx.self_inst, AttrId::new(ins.d as u32))?;
                ctx.frame[a] = Some(v);
            }
            Op::AttrReg => {
                let inst = rd(&ctx.frame, layout, ins.b)?.as_inst()?;
                let v = host.attr_read(inst, AttrId::new(ins.d as u32))?;
                ctx.frame[a] = Some(v);
            }
            Op::NavSelf => {
                let assoc = AssocId::new(u32::from(ins.b));
                let mut out: Vec<InstId> = Vec::new();
                host.related_each(ctx.self_inst, assoc, &mut |t| {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                })?;
                ctx.frame[a] = Some(Value::Set(ClassId::new(ins.d as u32), out));
            }
            Op::NavReg => {
                let assoc = AssocId::new(u32::from(ins.c));
                let target = ClassId::new(ins.d as u32);
                let mut out: Vec<InstId> = Vec::new();
                {
                    let base = rd(&ctx.frame, layout, ins.b)?;
                    let mut visit = |src: InstId, host: &H| {
                        host.related_each(src, assoc, &mut |t| {
                            if !out.contains(&t) {
                                out.push(t);
                            }
                        })
                    };
                    match base {
                        Value::Inst(_, Some(i)) => visit(*i, host)?,
                        Value::Inst(_, None) => {}
                        Value::Set(_, items) => {
                            for src in items {
                                visit(*src, host)?;
                            }
                        }
                        other => {
                            return Err(CoreError::runtime(format!(
                                "cannot navigate from {}",
                                other.data_type()
                            )))
                        }
                    }
                }
                ctx.frame[a] = Some(Value::Set(target, out));
            }
            Op::UnarySlot => {
                let v = rd(&ctx.frame, layout, ins.b)?;
                let r = apply_unop(unop_from(ins.c), v)?;
                ctx.frame[a] = Some(r);
            }
            Op::UnaryReg => {
                let v = rd(&ctx.frame, layout, ins.b)?;
                let r = apply_unop(unop_from(ins.c), v)?;
                ctx.frame[a] = Some(r);
            }
            Op::BinRR => {
                let va = rd(&ctx.frame, layout, ins.b)?;
                let vb = rd(&ctx.frame, layout, ins.c)?;
                let r = apply_binop(binop_from(ins.d as u16), va, vb)?;
                ctx.frame[a] = Some(r);
            }
            Op::BinSC => {
                if ctx.frame[usize::from(ins.b)].is_none() {
                    return Err(unbound(layout, usize::from(ins.b)));
                }
                ctx.burn(1)?;
                let va = ctx.frame[usize::from(ins.b)].as_ref().expect("checked");
                let r = apply_binop(
                    binop_from(ins.d as u16),
                    va,
                    &act.consts[usize::from(ins.c)],
                )?;
                ctx.frame[a] = Some(r);
            }
            Op::BinCS => {
                let vb = rd(&ctx.frame, layout, ins.c)?;
                let r = apply_binop(
                    binop_from(ins.d as u16),
                    &act.consts[usize::from(ins.b)],
                    vb,
                )?;
                ctx.frame[a] = Some(r);
            }
            Op::BinSS => {
                if ctx.frame[usize::from(ins.b)].is_none() {
                    return Err(unbound(layout, usize::from(ins.b)));
                }
                ctx.burn(1)?;
                let vb = rd(&ctx.frame, layout, ins.c)?;
                let va = ctx.frame[usize::from(ins.b)].as_ref().expect("checked");
                let r = apply_binop(binop_from(ins.d as u16), va, vb)?;
                ctx.frame[a] = Some(r);
            }
            Op::CheckInst => {
                rd(&ctx.frame, layout, ins.a)?.as_inst()?;
            }
            Op::CreateI => {
                let class = ClassId::new(ins.d as u32);
                let inst = host.create(class)?;
                ctx.frame[a] = Some(Value::Inst(class, Some(inst)));
            }
            Op::DeleteI => {
                let inst = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                host.delete(inst)?;
            }
            Op::SelAny => {
                let class = ClassId::new(ins.d as u32);
                let first = host.first_instance_of(class);
                if first.is_some() {
                    ctx.burn(1)?;
                }
                ctx.frame[a] = Some(Value::Inst(class, first));
            }
            Op::SelMany => {
                let class = ClassId::new(ins.d as u32);
                let all = host.instances_of(class);
                ctx.burn(all.len() as u64)?;
                ctx.frame[a] = Some(Value::Set(class, all));
            }
            Op::SelFInit => {
                let class = ClassId::new(ins.d as u32);
                let cands = host.instances_of(class);
                ctx.frame[a] = Some(Value::Set(class, cands));
                ctx.frame[a + 1] = Some(Value::Int(0));
            }
            Op::SelIterA => {
                let base = usize::from(ins.b);
                let (class, len) = set_head(&ctx.frame, base);
                let idx = counter(&ctx.frame, base + 1);
                if idx >= len {
                    ctx.frame[a] = Some(Value::Inst(class, None));
                    ctx.selected = None;
                    next = jump(pc, ins.d);
                } else {
                    ctx.burn(1)?;
                    let item = set_item(&ctx.frame, base, idx);
                    ctx.selected = Some(Value::Inst(class, Some(item)));
                    ctx.frame[base + 1] = Some(Value::Int(idx as i64 + 1));
                }
            }
            Op::SelTakeA => {
                let keep = rd(&ctx.frame, layout, ins.b)?.as_bool()?;
                if keep {
                    ctx.frame[a] = ctx.selected.take();
                } else {
                    next = jump(pc, ins.d);
                }
            }
            Op::SelFInitM => {
                let class = ClassId::new(ins.d as u32);
                let cands = host.instances_of(class);
                ctx.frame[a] = Some(Value::Set(class, cands));
                ctx.frame[a + 1] = Some(Value::Int(0));
                ctx.frame[a + 2] = Some(Value::Set(class, Vec::new()));
            }
            Op::SelIterM => {
                let base = usize::from(ins.b);
                let (class, len) = set_head(&ctx.frame, base);
                let idx = counter(&ctx.frame, base + 1);
                if idx >= len {
                    ctx.frame[a] = ctx.frame[base + 2].take();
                    ctx.selected = None;
                    next = jump(pc, ins.d);
                } else {
                    ctx.burn(1)?;
                    let item = set_item(&ctx.frame, base, idx);
                    ctx.selected = Some(Value::Inst(class, Some(item)));
                    ctx.frame[base + 1] = Some(Value::Int(idx as i64 + 1));
                }
            }
            Op::SelTakeM => {
                let keep = rd(&ctx.frame, layout, ins.b)?.as_bool()?;
                if keep {
                    let inst = match ctx.selected.as_ref() {
                        Some(Value::Inst(_, Some(i))) => *i,
                        _ => unreachable!("selected bound by SelIterM"),
                    };
                    match &mut ctx.frame[usize::from(ins.c) + 2] {
                        Some(Value::Set(_, v)) => v.push(inst),
                        _ => unreachable!("accumulator register holds a set"),
                    }
                }
                next = jump(pc, ins.d);
            }
            Op::RelateI => {
                let ia = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                let ib = rd(&ctx.frame, layout, ins.b)?.as_inst()?;
                host.relate(ia, ib, AssocId::new(ins.d as u32))?;
            }
            Op::UnrelateI => {
                let ia = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                let ib = rd(&ctx.frame, layout, ins.b)?.as_inst()?;
                host.unrelate(ia, ib, AssocId::new(ins.d as u32))?;
            }
            Op::SendR => {
                let to = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                let args = take_args_arc(host, &mut ctx.frame, ins.b, ins.c);
                host.send_arc(ctx.self_inst, to, EventId::new(ins.d as u32), args)?;
            }
            Op::SendDelayedR => {
                let to = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                let ticks = rd(&ctx.frame, layout, ins.b + ins.c)?.as_int()?;
                if ticks < 0 {
                    return Err(CoreError::runtime("negative signal delay"));
                }
                let args = take_args(&mut ctx.frame, ins.b, ins.c);
                host.send_delayed(ctx.self_inst, to, EventId::new(ins.d as u32), args, ticks)?;
            }
            Op::SendActorR => {
                let args = take_args_arc(host, &mut ctx.frame, ins.b, ins.c);
                host.send_actor_arc(
                    ctx.self_inst,
                    ActorId::new(u32::from(ins.a)),
                    EventId::new(ins.d as u32),
                    args,
                )?;
            }
            Op::SendSelf => {
                let args = take_args_arc(host, &mut ctx.frame, ins.b, ins.c);
                host.send_arc(
                    ctx.self_inst,
                    ctx.self_inst,
                    EventId::new(ins.d as u32),
                    args,
                )?;
            }
            Op::SendSlot => {
                let to = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                let args = take_args_arc(host, &mut ctx.frame, ins.b, ins.c);
                host.send_arc(ctx.self_inst, to, EventId::new(ins.d as u32), args)?;
            }
            Op::SendAnySlot => {
                let v = rd(&ctx.frame, layout, ins.a)?;
                let to = apply_unop(UnOp::Any, v)?.as_inst()?;
                let args = take_args_arc(host, &mut ctx.frame, ins.b, ins.c);
                host.send_arc(ctx.self_inst, to, EventId::new(ins.d as u32), args)?;
            }
            Op::SendSelfLit => {
                host.send_arc(
                    ctx.self_inst,
                    ctx.self_inst,
                    EventId::new(ins.d as u32),
                    Arc::clone(&act.payloads[usize::from(ins.b)]),
                )?;
            }
            Op::SendSlotLit => {
                let to = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                host.send_arc(
                    ctx.self_inst,
                    to,
                    EventId::new(ins.d as u32),
                    Arc::clone(&act.payloads[usize::from(ins.b)]),
                )?;
            }
            Op::SendAnySlotLit => {
                let v = rd(&ctx.frame, layout, ins.a)?;
                let to = apply_unop(UnOp::Any, v)?.as_inst()?;
                host.send_arc(
                    ctx.self_inst,
                    to,
                    EventId::new(ins.d as u32),
                    Arc::clone(&act.payloads[usize::from(ins.b)]),
                )?;
            }
            Op::SendActorLit => {
                host.send_actor_arc(
                    ctx.self_inst,
                    ActorId::new(u32::from(ins.a)),
                    EventId::new(ins.d as u32),
                    Arc::clone(&act.payloads[usize::from(ins.b)]),
                )?;
            }
            Op::SendFirstTo => {
                let (class, opt) = match &ctx.frame[a] {
                    Some(Value::Inst(c, o)) => (*c, *o),
                    _ => unreachable!("NavFirst writes the target register"),
                };
                let Some(to) = opt else {
                    // Identical to `any` on the empty set the interpreter
                    // would have materialised.
                    return Err(CoreError::runtime(format!(
                        "`any` applied to empty {class} set"
                    )));
                };
                let args = take_args_arc(host, &mut ctx.frame, ins.b, ins.c);
                host.send_arc(ctx.self_inst, to, EventId::new(ins.d as u32), args)?;
            }
            Op::NavFirst => {
                let assoc = AssocId::new(u32::from(ins.b));
                let mut first: Option<InstId> = None;
                host.related_each(ctx.self_inst, assoc, &mut |t| {
                    if first.is_none() {
                        first = Some(t);
                    }
                })?;
                ctx.frame[a] = Some(Value::Inst(ClassId::new(ins.d as u32), first));
            }
            // The fused compute-and-send trio. Each replays the exact
            // burn/error order of the two-instruction sequence it
            // replaces: the payload's BinSC first (loop fuel carried by
            // this instruction, Lit burn internal), then the send's own
            // loop burn, then the send's target checks.
            Op::SendSlotOpC => {
                let v = fused_payload(ctx, layout, act, &ins)?;
                ctx.burn(1)?;
                let to = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                let args = payload1(host, v);
                host.send_arc(ctx.self_inst, to, EventId::new(ins.d as u32 & 0xFFFF), args)?;
            }
            Op::SendAnyOpC => {
                let v = fused_payload(ctx, layout, act, &ins)?;
                ctx.burn(2)?;
                let vt = rd(&ctx.frame, layout, ins.a)?;
                let to = apply_unop(UnOp::Any, vt)?.as_inst()?;
                let args = payload1(host, v);
                host.send_arc(ctx.self_inst, to, EventId::new(ins.d as u32 & 0xFFFF), args)?;
            }
            Op::SendFirstOpC => {
                let v = fused_payload(ctx, layout, act, &ins)?;
                ctx.burn(2)?;
                let (class, opt) = match &ctx.frame[a] {
                    Some(Value::Inst(c, o)) => (*c, *o),
                    _ => unreachable!("NavFirst writes the target register"),
                };
                let Some(to) = opt else {
                    return Err(CoreError::runtime(format!(
                        "`any` applied to empty {class} set"
                    )));
                };
                let args = payload1(host, v);
                host.send_arc(ctx.self_inst, to, EventId::new(ins.d as u32 & 0xFFFF), args)?;
            }
            Op::CancelI => {
                host.cancel_delayed(ctx.self_inst, EventId::new(ins.d as u32))?;
            }
            Op::CallBridge => {
                let (actor, func) = &act.bridges[ins.d as u32 as usize];
                let args = take_args(&mut ctx.frame, ins.b, ins.c);
                let v = host.bridge_call(*actor, func, args)?;
                ctx.frame[a] = Some(v);
            }
            Op::StAttrSelf => {
                let v = ctx.frame[usize::from(ins.b)]
                    .take()
                    .expect("value register written by lowering");
                host.attr_write(ctx.self_inst, AttrId::new(ins.d as u32), v)?;
            }
            Op::StAttrReg => {
                let inst = rd(&ctx.frame, layout, ins.a)?.as_inst()?;
                let v = ctx.frame[usize::from(ins.b)]
                    .take()
                    .expect("value register written by lowering");
                host.attr_write(inst, AttrId::new(ins.d as u32), v)?;
            }
            Op::StAttrSelfConst => {
                // Typed store: the lowering only fuses constants the
                // typechecker matched against the declared attribute type.
                let v = act.consts[usize::from(ins.b)].clone();
                host.attr_write_typed(ctx.self_inst, AttrId::new(ins.d as u32), v)?;
            }
            Op::SelfAttrOpConst => {
                let va = host.attr_read(ctx.self_inst, AttrId::new(u32::from(ins.a)))?;
                ctx.burn(1)?;
                let r = apply_binop(binop_from(ins.c), &va, &act.consts[usize::from(ins.b)])?;
                ctx.burn(1)?;
                // Typed store: the typechecker proved the fused
                // expression's type equal to the destination attribute's.
                host.attr_write_typed(ctx.self_inst, AttrId::new(ins.d as u32), r)?;
            }
            Op::Jump => next = jump(pc, ins.d),
            Op::JumpIfFalse => {
                if !rd(&ctx.frame, layout, ins.a)?.as_bool()? {
                    next = jump(pc, ins.d);
                }
            }
            Op::JmpSCFalse => {
                if ctx.frame[a].is_none() {
                    return Err(unbound(layout, a));
                }
                ctx.burn(1)?;
                let va = ctx.frame[a].as_ref().expect("checked");
                let r = apply_binop(binop_from(ins.c), va, &act.consts[usize::from(ins.b)])?;
                if !r.as_bool()? {
                    next = jump(pc, ins.d);
                }
            }
            Op::JmpSSFalse => {
                if ctx.frame[a].is_none() {
                    return Err(unbound(layout, a));
                }
                ctx.burn(1)?;
                let vb = rd(&ctx.frame, layout, ins.b)?;
                let va = ctx.frame[a].as_ref().expect("checked");
                let r = apply_binop(binop_from(ins.c), va, vb)?;
                if !r.as_bool()? {
                    next = jump(pc, ins.d);
                }
            }
            Op::ForIter => {
                let rset = usize::from(ins.b);
                let (class, len) = match &ctx.frame[rset] {
                    Some(Value::Set(c, items)) => (*c, items.len()),
                    Some(other) => {
                        return Err(CoreError::runtime(format!(
                            "foreach needs a set, got {}",
                            other.data_type()
                        )))
                    }
                    None => unreachable!("set register written by lowering"),
                };
                let idx = counter(&ctx.frame, usize::from(ins.c));
                if idx >= len {
                    next = jump(pc, ins.d);
                } else {
                    ctx.burn(1)?;
                    let item = set_item(&ctx.frame, rset, idx);
                    ctx.frame[a] = Some(Value::Inst(class, Some(item)));
                    ctx.frame[usize::from(ins.c)] = Some(Value::Int(idx as i64 + 1));
                }
            }
            Op::Ret => return Ok(Outcome::Returned),
            Op::Halt => return Ok(Outcome::Completed),
            Op::ErrBreak | Op::ErrContinue => {
                return Err(CoreError::runtime("`break`/`continue` outside of a loop"))
            }
        }
        pc = next;
    }
}

// -- disassembler ----------------------------------------------------------

fn fused_note(op: Op) -> Option<&'static str> {
    match op {
        Op::BinSC | Op::BinCS | Op::BinSS => Some("fused slot/const binop"),
        Op::JmpSCFalse | Op::JmpSSFalse => Some("fused guard-and-branch"),
        Op::SendSelfLit | Op::SendSlotLit | Op::SendAnySlotLit | Op::SendActorLit => {
            Some("fused send-literal-payload (pooled Arc)")
        }
        Op::SendSelf => Some("fused self-send"),
        Op::SendSlot | Op::SendAnySlot => Some("fused send-to-slot"),
        Op::StAttrSelfConst => Some("fused assign-const"),
        Op::SelfAttrOpConst => Some("fused self.attr = self.attr op const"),
        Op::NavFirst | Op::SendFirstTo => Some("fused navigate-first + send-to-any"),
        Op::SendSlotOpC | Op::SendAnyOpC | Op::SendFirstOpC => Some("fused payload-compute + send"),
        Op::AttrSelf => Some("fused self-attribute read"),
        Op::UnarySlot => Some("by-reference slot operand"),
        _ => None,
    }
}

/// Renders one lowered action as an annotated instruction listing.
pub fn disasm_action(act: &BcAction) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "    ; regs={} (slots={}, temps={}), consts={}, payloads={}, bridges={}",
        act.n_regs,
        act.layout.len(),
        act.n_regs - act.layout.len(),
        act.consts.len(),
        act.payloads.len(),
        act.bridges.len()
    );
    if act.const_folds > 0 {
        let _ = write!(out, ", const-folds={}", act.const_folds);
    }
    let _ = writeln!(out);
    for (pc, ins) in act.code.iter().enumerate() {
        let target = match ins.op {
            Op::Jump
            | Op::JumpIfFalse
            | Op::JmpSCFalse
            | Op::JmpSSFalse
            | Op::ForIter
            | Op::SelIterA
            | Op::SelIterM
            | Op::SelTakeA
            | Op::SelTakeM => format!(" -> {}", jump(pc, ins.d)),
            _ => String::new(),
        };
        let _ = write!(
            out,
            "    {pc:>4}: {:<16} a={:<5} b={:<5} c={:<5} d={:<6} fuel={}{target}",
            format!("{:?}", ins.op),
            ins.a,
            ins.b,
            ins.c,
            ins.d,
            ins.fuel
        );
        if let Some(note) = fused_note(ins.op) {
            let _ = write!(out, "  ; {note}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders every lowered entry of a program, with `Class · State ← Event`
/// headers resolved against the domain, plus recorded fallbacks.
pub fn disasm(domain: &Domain, program: &BcProgram) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (ci, bcc) in program.classes.iter().enumerate() {
        let class = &domain.classes[ci];
        let Some(machine) = class.state_machine.as_ref() else {
            continue;
        };
        for (idx, entry) in bcc.entries.iter().enumerate() {
            let (state, event) = idx
                .checked_div(bcc.n_events)
                .map_or((0, 0), |s| (s, idx % bcc.n_events));
            match entry {
                Some(BcEntry::Vm(act)) => {
                    let _ = writeln!(
                        out,
                        "{} · {} <- {}:",
                        class.name, machine.states[state].name, class.events[event].name
                    );
                    out.push_str(&disasm_action(act));
                }
                Some(BcEntry::Unsupported) => {
                    let _ = writeln!(
                        out,
                        "{} · {} <- {}: (unsupported — frame-interpreter fallback)",
                        class.name, machine.states[state].name, class.events[event].name
                    );
                }
                None => {}
            }
        }
    }
    if !program.fallbacks.is_empty() {
        let _ = writeln!(out, "fallbacks:");
        for f in &program.fallbacks {
            let class = &domain.classes[f.class.index()];
            let state = class
                .state_machine
                .as_ref()
                .map(|m| m.states[f.state.index()].name.as_str())
                .unwrap_or("?");
            let _ = writeln!(
                out,
                "  {} · {} <- {}: {}",
                class.name,
                state,
                class.events[f.event.index()].name,
                f.reason
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::compile_block;
    use crate::interp::{run_code, DEFAULT_FUEL};
    use crate::model::{Actor, Attribute, Class, EventDecl};
    use crate::parse::parse_block;
    use crate::value::DataType;

    /// In-memory host mirroring the interpreter's own test fixture, with
    /// observable state comparable across two executions.
    #[derive(Debug, Clone, PartialEq)]
    struct Effects {
        instances: Vec<(ClassId, Vec<Value>, bool)>,
        links: Vec<(AssocId, InstId, InstId)>,
        sent: Vec<(InstId, InstId, EventId, Vec<Value>)>,
        actor_sent: Vec<(ActorId, EventId, Vec<Value>)>,
        delayed: Vec<(InstId, EventId, i64)>,
        log: Vec<String>,
    }

    struct BcHost {
        domain: Domain,
        fx: Effects,
    }

    impl BcHost {
        fn new(domain: Domain) -> BcHost {
            BcHost {
                domain,
                fx: Effects {
                    instances: Vec::new(),
                    links: Vec::new(),
                    sent: Vec::new(),
                    actor_sent: Vec::new(),
                    delayed: Vec::new(),
                    log: Vec::new(),
                },
            }
        }

        fn check_live(&self, inst: InstId) -> Result<()> {
            match self.fx.instances.get(inst.index()) {
                Some((_, _, true)) => Ok(()),
                _ => Err(CoreError::runtime(format!("dangling instance {inst}"))),
            }
        }
    }

    impl ActionHost for BcHost {
        fn domain(&self) -> &Domain {
            &self.domain
        }
        fn create(&mut self, class: ClassId) -> Result<InstId> {
            let attrs = self
                .domain
                .class(class)
                .attributes
                .iter()
                .map(|a| a.default.clone())
                .collect();
            self.fx.instances.push((class, attrs, true));
            Ok(InstId::new(self.fx.instances.len() as u32 - 1))
        }
        fn delete(&mut self, inst: InstId) -> Result<()> {
            self.check_live(inst)?;
            self.fx.instances[inst.index()].2 = false;
            Ok(())
        }
        fn class_of(&self, inst: InstId) -> Result<ClassId> {
            self.check_live(inst)?;
            Ok(self.fx.instances[inst.index()].0)
        }
        fn attr_read(&self, inst: InstId, attr: AttrId) -> Result<Value> {
            self.check_live(inst)?;
            Ok(self.fx.instances[inst.index()].1[attr.index()].clone())
        }
        fn attr_write(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
            self.check_live(inst)?;
            self.fx.instances[inst.index()].1[attr.index()] = value;
            Ok(())
        }
        fn instances_of(&self, class: ClassId) -> Vec<InstId> {
            self.fx
                .instances
                .iter()
                .enumerate()
                .filter(|(_, (c, _, alive))| *alive && *c == class)
                .map(|(i, _)| InstId::new(i as u32))
                .collect()
        }
        fn related(&self, inst: InstId, assoc: AssocId) -> Result<Vec<InstId>> {
            self.check_live(inst)?;
            Ok(self
                .fx
                .links
                .iter()
                .filter(|(a, x, y)| *a == assoc && (*x == inst || *y == inst))
                .map(|(_, x, y)| if *x == inst { *y } else { *x })
                .collect())
        }
        fn relate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
            self.fx.links.push((assoc, a, b));
            Ok(())
        }
        fn unrelate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
            let before = self.fx.links.len();
            self.fx.links.retain(|(x, p, q)| {
                !(*x == assoc && ((*p == a && *q == b) || (*p == b && *q == a)))
            });
            if self.fx.links.len() == before {
                return Err(CoreError::runtime("no such link"));
            }
            Ok(())
        }
        fn send(
            &mut self,
            from: InstId,
            to: InstId,
            event: EventId,
            args: Vec<Value>,
        ) -> Result<()> {
            self.check_live(to)?;
            self.fx.sent.push((from, to, event, args));
            Ok(())
        }
        fn send_actor(
            &mut self,
            _from: InstId,
            actor: ActorId,
            event: EventId,
            args: Vec<Value>,
        ) -> Result<()> {
            self.fx.actor_sent.push((actor, event, args));
            Ok(())
        }
        fn send_delayed(
            &mut self,
            _from: InstId,
            to: InstId,
            event: EventId,
            _args: Vec<Value>,
            delay: i64,
        ) -> Result<()> {
            self.fx.delayed.push((to, event, delay));
            Ok(())
        }
        fn cancel_delayed(&mut self, inst: InstId, event: EventId) -> Result<()> {
            self.fx
                .delayed
                .retain(|(i, e, _)| !(*i == inst && *e == event));
            Ok(())
        }
        fn bridge_call(&mut self, actor: ActorId, func: &str, args: Vec<Value>) -> Result<Value> {
            let name = &self.domain.actor(actor).name;
            self.fx.log.push(format!("{name}::{func}({args:?})"));
            Ok(Value::Int(args.len() as i64))
        }
    }

    fn test_domain() -> Domain {
        let mut d = Domain::new("t");
        d.classes.push(Class {
            name: "Counter".into(),
            attributes: vec![Attribute {
                name: "n".into(),
                ty: DataType::Int,
                default: Value::Int(0),
            }],
            events: vec![
                EventDecl {
                    name: "Tick".into(),
                    params: vec![],
                },
                EventDecl {
                    name: "Set".into(),
                    params: vec![("v".into(), DataType::Int)],
                },
            ],
            state_machine: None,
        });
        d.classes.push(Class {
            name: "Lamp".into(),
            attributes: vec![Attribute {
                name: "on".into(),
                ty: DataType::Bool,
                default: Value::Bool(false),
            }],
            events: vec![
                EventDecl {
                    name: "Ping".into(),
                    params: vec![],
                },
                EventDecl {
                    name: "Pulse".into(),
                    params: vec![("v".into(), DataType::Int)],
                },
            ],
            state_machine: None,
        });
        d.associations.push(crate::model::Association {
            name: "R1".into(),
            from: ClassId::new(0),
            to: ClassId::new(1),
            from_mult: crate::model::Multiplicity::One,
            to_mult: crate::model::Multiplicity::Many,
        });
        d.actors.push(Actor {
            name: "ENV".into(),
            events: vec![EventDecl {
                name: "done".into(),
                params: vec![("code".into(), DataType::Int)],
            }],
            funcs: vec![crate::model::FuncDecl {
                name: "info".into(),
                params: vec![("msg".into(), DataType::Str)],
                ret: None,
            }],
        });
        d.reindex().unwrap();
        d
    }

    /// Fresh host with one live Counter instance (`self`).
    fn fresh() -> (BcHost, InstId) {
        let mut h = BcHost::new(test_domain());
        let i = h.create(ClassId::new(0)).unwrap();
        (h, i)
    }

    struct Sides {
        interp: (Result<Outcome>, Effects, ExecCtx),
        vm: (Result<Outcome>, Effects, ExecCtx),
        action: CAction,
        peephole: bool,
    }

    /// Runs `src` through the frame interpreter and the VM on identical
    /// fresh hosts, with `fuel` and bound `args`.
    fn run_both_with(src: &str, args: &[Value], fuel: u64) -> Sides {
        let params: Vec<(String, DataType)> = args
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("p{i}"), v.data_type()))
            .collect();
        run_both_params(src, &params, args, fuel)
    }

    fn run_both_params(
        src: &str,
        params: &[(String, DataType)],
        args: &[Value],
        fuel: u64,
    ) -> Sides {
        let block = parse_block(src).unwrap();
        let domain = test_domain();
        let action = compile_block(&domain, ClassId::new(0), params, &block).unwrap();
        let bca = lower_action(&action).unwrap();
        // The NavFirst peephole deliberately leaves the elided set slot
        // unwritten in the VM frame; frames are discarded after dispatch in
        // production, so the difference is unobservable there.
        let peephole = bca.code.iter().any(|i| i.op == Op::NavFirst);

        let (mut h1, i1) = fresh();
        let mut ctx1 = ExecCtx::new(i1, &action);
        ctx1.fuel = fuel;
        ctx1.bind_args(args.to_vec());
        let r1 = run_code(&mut h1, &mut ctx1, &action);

        let (mut h2, i2) = fresh();
        let mut ctx2 = ExecCtx::with_frame(i2, bca.self_class, vec![None; bca.n_regs]);
        ctx2.fuel = fuel;
        ctx2.bind_args(args.to_vec());
        let r2 = run_bc(&mut h2, &mut ctx2, &bca);

        Sides {
            interp: (r1, h1.fx, ctx1),
            vm: (r2, h2.fx, ctx2),
            action,
            peephole,
        }
    }

    /// Asserts interpreter/VM agreement: outcome or error string, host
    /// effects, and (on success) steps and the named frame slots.
    fn assert_agree(src: &str, args: &[Value]) {
        let s = run_both_with(src, args, DEFAULT_FUEL);
        check_sides(src, &s, true);
    }

    fn check_sides(src: &str, s: &Sides, check_frames: bool) {
        match (&s.interp.0, &s.vm.0) {
            (Ok(o1), Ok(o2)) => {
                assert_eq!(o1, o2, "outcome mismatch for {src:?}");
                assert_eq!(
                    s.interp.2.steps, s.vm.2.steps,
                    "step-count mismatch for {src:?}"
                );
                if check_frames && !s.peephole {
                    for slot in 0..s.action.layout.len() {
                        assert_eq!(
                            s.interp.2.frame[slot],
                            s.vm.2.frame[slot],
                            "slot {slot} ({}) mismatch for {src:?}",
                            s.action.layout.name(slot)
                        );
                    }
                }
            }
            (Err(e1), Err(e2)) => {
                assert_eq!(e1.to_string(), e2.to_string(), "error mismatch for {src:?}");
            }
            (r1, r2) => panic!("outcome divergence for {src:?}: interp={r1:?} vm={r2:?}"),
        }
        assert_eq!(s.interp.1, s.vm.1, "host effects mismatch for {src:?}");
    }

    /// Every fuel level from 0 to just past the full run must produce the
    /// same error identity and the same prefix of host effects.
    fn assert_fuel_sweep(src: &str, args: &[Value]) {
        let full = run_both_with(src, args, DEFAULT_FUEL);
        check_sides(src, &full, true);
        let steps = full.interp.2.steps;
        for fuel in 0..=steps + 1 {
            let s = run_both_with(src, args, fuel);
            match (&s.interp.0, &s.vm.0) {
                (Ok(_), Ok(_)) | (Err(_), Err(_)) => {}
                (r1, r2) => {
                    panic!("fuel={fuel} outcome divergence for {src:?}: interp={r1:?} vm={r2:?}")
                }
            }
            if let (Err(e1), Err(e2)) = (&s.interp.0, &s.vm.0) {
                assert_eq!(
                    e1.to_string(),
                    e2.to_string(),
                    "fuel={fuel} error mismatch for {src:?}"
                );
            }
            assert_eq!(
                s.interp.1, s.vm.1,
                "fuel={fuel} host effects mismatch for {src:?}"
            );
        }
    }

    const BATTERY: &[&str] = &[
        "",
        "x = 1;",
        "self.n = self.n + 41; x = self.n + 1;",
        "self.n = 7;",
        "x = 2; y = 3; x = x + y;",
        "x = 2; x = x * x;",
        "a = create Lamp; b = create Lamp;\n\
         select many all from Lamp;\n\
         n = cardinality(all);\n\
         delete a;\n\
         select many rest from Lamp;\n\
         m = cardinality(rest);",
        "a = create Lamp; b = create Lamp;\n\
         b.on = true;\n\
         select any lit from Lamp where selected.on;\n\
         select any dark from Lamp where not selected.on;\n\
         lit_found = not_empty(lit);",
        "select any l from Lamp; e = empty(l);",
        "select many none from Lamp where selected.on; k = cardinality(none);",
        "a = create Lamp; b = create Lamp;\n\
         relate self to a across R1;\n\
         relate self to b across R1;\n\
         lamps = self -> Lamp[R1];\n\
         n = cardinality(lamps);\n\
         unrelate self from a across R1;\n\
         m = cardinality(self -> Lamp[R1]);",
        "x = self -> Lamp[R1]; n = cardinality(x);",
        "gen Set(7) to self;\n\
         gen Tick() to self after 10;\n\
         gen done(0) to ENV;",
        "gen Tick() to self after 10; cancel Tick;",
        "d = 4; gen Tick() to self after d;",
        "d = 0 - 1; gen Tick() to self after d;",
        "gen Set(self.n) to self;",
        "total = 0; k = 0;\n\
         while (k < 5) { k = k + 1; if (k == 3) { continue; } total = total + k; }\n\
         count = 0;\n\
         a = create Lamp; b = create Lamp; c = create Lamp;\n\
         select many all from Lamp;\n\
         foreach l in all { count = count + 1; if (count == 2) { break; } }",
        "x = 1; return; x = 2;",
        "ENV::info(\"hi\"); r = ENV::info(\"a\");",
        "if (self.n == 0) { x = 1; } elif (self.n == 1) { x = 2; } else { x = 3; }",
        "if (false) { x = 1; }\n\
         y = x + 1;",
        "a = create Lamp; delete a; a.on = true;",
        "x = 1; y = 0; z = x / y;",
        "x = 1; y = 0; z = x % y;",
        "x = 5; s = string(x); t = s + \"!\";",
        "x = 0 - 5; y = int(real(x));",
        "b = true and false; c = b or true;",
        "x = 1; b = x and true;",
        "while (false) { x = 1; }",
        "k = 0; while (k < 3) { k = k + 1; }",
        "k = 10; while (k > 0) { k = k - 1; if (k == 5) { break; } }",
        "a = create Lamp;\n\
         select many all from Lamp;\n\
         foreach l in all { l.on = true; }",
        "foreach l in self.n { x = 1; }",
        "break;",
        "continue;",
        "if (true) { break; }",
        "x = any(self -> Lamp[R1]);",
        "a = create Lamp; relate self to a across R1;\n\
         nexts = self -> Lamp[R1];\n\
         gen Ping() to any(nexts);",
        "a = create Lamp; relate self to a across R1;\n\
         nexts = self -> Lamp[R1];\n\
         gen Ping() to any(nexts);\n\
         m = cardinality(nexts);",
        "nexts = self -> Lamp[R1];\n\
         gen Ping() to any(nexts);",
        "self.n = self.n - 1; self.n = self.n * 3;",
        "x = -self.n; y = not empty(self -> Lamp[R1]);",
    ];

    #[test]
    fn differential_battery_agrees() {
        for src in BATTERY {
            assert_agree(src, &[]);
        }
    }

    #[test]
    fn differential_with_event_params() {
        assert_agree("self.n = rcvd.p0 * 2;", &[Value::Int(21)]);
        // Declared parameter left unbound: both engines must raise the same
        // "unresolved event parameter" error at first read.
        let s = run_both_params(
            "self.n = rcvd.p0 * 2;",
            &[("p0".into(), DataType::Int)],
            &[],
            DEFAULT_FUEL,
        );
        check_sides("self.n = rcvd.p0 * 2; (unbound)", &s, true);
        assert_agree(
            "if (rcvd.p0 > 0) { self.n = rcvd.p0; } else { self.n = 0 - rcvd.p0; }",
            &[Value::Int(-4)],
        );
    }

    #[test]
    fn fuel_boundaries_match_exactly() {
        for src in [
            "self.n = self.n + 41; x = self.n + 1;",
            "total = 0; k = 0;\n\
             while (k < 5) { k = k + 1; if (k == 3) { continue; } total = total + k; }",
            "a = create Lamp; b = create Lamp;\n\
             b.on = true;\n\
             select any lit from Lamp where selected.on;\n\
             found = not_empty(lit);",
            "gen Set(7) to self; gen Tick() to self after 2; gen done(0) to ENV;",
            "a = create Lamp; relate self to a across R1;\n\
             nexts = self -> Lamp[R1];\n\
             gen Ping() to any(nexts);",
            "a = create Lamp;\n\
             select many all from Lamp;\n\
             foreach l in all { l.on = true; }",
            "ENV::info(\"x\");",
            "x = 1; y = 0; z = x / y;",
            // Fused payload-compute + send trio, including its error
            // paths (empty navigation set, binop failure inside the
            // fused instruction).
            "k = 3; a = create Lamp; relate self to a across R1;\n\
             nexts = self -> Lamp[R1];\n\
             gen Pulse(k + 1) to any(nexts);",
            "k = 3; nexts = self -> Lamp[R1];\ngen Pulse(k + 1) to any(nexts);",
            "k = 3; t = self;\ngen Set(k + 1) to t;",
            "k = 3; t = self;\ngen Set(k / 0) to t;",
            "k = 3; a = create Lamp; relate self to a across R1;\n\
             nexts = self -> Lamp[R1];\n\
             gen Pulse(k + 1) to any(nexts);\n\
             c = cardinality(nexts);",
        ] {
            assert_fuel_sweep(src, &[]);
        }
        assert_fuel_sweep("self.n = rcvd.p0 + 1;", &[Value::Int(5)]);
    }

    #[test]
    fn slot_aliasing_in_fused_binops() {
        // dst register == source slot for BinSC/BinSS/BinRR shapes.
        assert_agree("x = 1; x = x + 1;", &[]);
        assert_agree("x = 1; y = 2; x = x + y;", &[]);
        assert_agree("x = 2; x = x * x;", &[]);
    }

    #[test]
    fn empty_action_lowers_to_halt() {
        let block = parse_block("").unwrap();
        let action = compile_block(&test_domain(), ClassId::new(0), &[], &block).unwrap();
        let bca = lower_action(&action).unwrap();
        assert_eq!(bca.code.len(), 1);
        assert_eq!(bca.code[0].op, Op::Halt);
        assert_agree("", &[]);
    }

    #[test]
    fn superinstructions_are_selected() {
        let domain = test_domain();
        let lower = |src: &str| {
            let block = parse_block(src).unwrap();
            let action = compile_block(&domain, ClassId::new(0), &[], &block).unwrap();
            lower_action(&action).unwrap()
        };
        assert_eq!(
            lower("self.n = self.n + 1;").code[0].op,
            Op::SelfAttrOpConst
        );
        assert_eq!(lower("self.n = 7;").code[0].op, Op::StAttrSelfConst);
        assert_eq!(lower("gen Set(7) to self;").code[0].op, Op::SendSelfLit);
        assert_eq!(lower("gen done(0) to ENV;").code[0].op, Op::SendActorLit);
        let nav = lower("nexts = self -> Lamp[R1];\ngen Ping() to any(nexts);");
        assert_eq!(nav.code[0].op, Op::NavFirst);
        assert_eq!(nav.code[1].op, Op::SendFirstTo);
        // Payload-compute + send fusion: one `slot binop lit` argument.
        let f = lower("k = 3;\nnexts = self -> Lamp[R1];\ngen Pulse(k + 1) to any(nexts);");
        assert_eq!(f.code[1].op, Op::NavFirst);
        assert_eq!(f.code[2].op, Op::SendFirstOpC);
        let f = lower("k = 3; t = self;\ngen Set(k + 1) to t;");
        assert!(f.code.iter().any(|i| i.op == Op::SendSlotOpC));
        // A second read of the set keeps the materialising nav but still
        // fuses the send.
        let f = lower(
            "k = 3;\nnexts = self -> Lamp[R1];\ngen Pulse(k + 1) to any(nexts);\n\
             c = cardinality(nexts);",
        );
        assert_eq!(f.code[1].op, Op::NavSelf);
        assert!(f.code.iter().any(|i| i.op == Op::SendAnyOpC));
        // A second read of the slot disables the peephole.
        let no_peep =
            lower("nexts = self -> Lamp[R1];\ngen Ping() to any(nexts);\nk = cardinality(nexts);");
        assert_eq!(no_peep.code[0].op, Op::NavSelf);
        // Guard fusion.
        let g = lower("k = 0; if (k < 3) { k = 1; }");
        assert!(g.code.iter().any(|i| i.op == Op::JmpSCFalse));
    }

    #[test]
    fn literal_payloads_are_pooled() {
        let domain = test_domain();
        let block =
            parse_block("gen Set(7) to self; gen Set(7) to self; gen Set(9) to self;").unwrap();
        let action = compile_block(&domain, ClassId::new(0), &[], &block).unwrap();
        let bca = lower_action(&action).unwrap();
        assert_eq!(
            bca.payloads.len(),
            2,
            "equal literal payloads share a pool slot"
        );
    }

    #[test]
    fn register_overflow_falls_back() {
        let names: Vec<String> = (0..=u16::MAX as usize).map(|i| format!("v{i}")).collect();
        let action = CAction {
            self_class: ClassId::new(0),
            code: vec![],
            layout: FrameLayout { names, params: 0 },
        };
        let err = lower_action(&action).unwrap_err();
        assert!(err.contains("u16"), "reason should name the limit: {err}");
    }

    #[test]
    fn whole_program_lowering_and_entry_indexing() {
        let domain = crate::builder::pipeline_domain(3).unwrap();
        let program = crate::code::CompiledProgram::new(&domain);
        let bc = BcProgram::new(&domain, &program);
        assert!(bc.fallbacks.is_empty(), "{:?}", bc.fallbacks);
        assert!(bc.vm_entries() > 0);
        // Every compiled frame action has a VM entry at the same index.
        for (ci, class) in domain.classes.iter().enumerate() {
            let Some(machine) = class.state_machine.as_ref() else {
                continue;
            };
            for s in 0..machine.states.len() {
                for e in 0..class.events.len() {
                    let cid = ClassId::new(ci as u32);
                    let sid = StateId::new(s as u32);
                    let eid = EventId::new(e as u32);
                    let frames = program.action(cid, sid, eid);
                    let vm = bc.entry(cid, sid, eid);
                    assert_eq!(
                        frames.is_some(),
                        vm.is_some(),
                        "entry presence must match for ({ci},{s},{e})"
                    );
                }
            }
        }
    }

    #[test]
    fn disassembler_renders_annotated_stream() {
        let domain = crate::builder::pipeline_domain(2).unwrap();
        let program = crate::code::CompiledProgram::new(&domain);
        let bc = BcProgram::new(&domain, &program);
        let text = disasm(&domain, &bc);
        assert!(text.contains("Stage0"), "{text}");
        assert!(
            text.contains("fused"),
            "superinstruction annotations expected:\n{text}"
        );
        assert!(text.contains("Halt"), "{text}");
    }

    #[test]
    fn guard_only_transition_bodies() {
        assert_agree("if (self.n > 0) { self.n = 0; }", &[]);
        assert_agree("if (self.n == 0) { } else { self.n = 1; }", &[]);
    }

    /// Runs `src` through the walker and the VM with `n` declared const
    /// (as the effect analysis would for a never-written attribute),
    /// asserting exact agreement including step counts.
    fn assert_agree_folded(src: &str, expect_folds: u32) {
        let block = parse_block(src).unwrap();
        let domain = test_domain();
        let action = compile_block(&domain, ClassId::new(0), &[], &block).unwrap();
        let mut consts = BTreeMap::new();
        consts.insert(AttrId::new(0), Value::Int(0)); // Counter.n default
        let bca = lower_action_with(&action, &consts).unwrap();
        assert_eq!(bca.const_folds, expect_folds, "fold count for {src:?}");

        let (mut h1, i1) = fresh();
        let mut ctx1 = ExecCtx::new(i1, &action);
        ctx1.fuel = DEFAULT_FUEL;
        let r1 = run_code(&mut h1, &mut ctx1, &action);

        let (mut h2, i2) = fresh();
        let mut ctx2 = ExecCtx::with_frame(i2, bca.self_class, vec![None; bca.n_regs]);
        ctx2.fuel = DEFAULT_FUEL;
        let r2 = run_bc(&mut h2, &mut ctx2, &bca);

        assert_eq!(r1.unwrap(), r2.unwrap(), "outcome for {src:?}");
        assert_eq!(ctx1.steps, ctx2.steps, "fuel-neutrality for {src:?}");
        assert_eq!(h1.fx, h2.fx, "host effects for {src:?}");
        for slot in 0..action.layout.len() {
            assert_eq!(
                ctx1.frame[slot], ctx2.frame[slot],
                "slot {slot} for {src:?}"
            );
        }
    }

    #[test]
    fn const_attr_reads_fold_to_const_and_stay_walker_exact() {
        assert_agree_folded("x = self.n;", 1);
        assert_agree_folded("x = self.n + 1;\ny = self.n * 2;", 2);
        assert_agree_folded("gen done(self.n) to ENV;", 1);
        // The folded action must not read the attribute at runtime.
        let block = parse_block("x = self.n;").unwrap();
        let domain = test_domain();
        let action = compile_block(&domain, ClassId::new(0), &[], &block).unwrap();
        let mut consts = BTreeMap::new();
        consts.insert(AttrId::new(0), Value::Int(0));
        let bca = lower_action_with(&action, &consts).unwrap();
        assert!(
            bca.code.iter().all(|i| i.op != Op::AttrSelf),
            "AttrSelf should be folded away"
        );
        assert!(bca.code.iter().any(|i| i.op == Op::Const));
    }

    #[test]
    fn delete_in_action_disables_const_fold() {
        // A read after `delete self` must raise identically on both
        // sides, so the whole action opts out of folding.
        let block = parse_block("delete self;\nx = self.n;").unwrap();
        let domain = test_domain();
        let action = compile_block(&domain, ClassId::new(0), &[], &block).unwrap();
        let mut consts = BTreeMap::new();
        consts.insert(AttrId::new(0), Value::Int(0));
        let bca = lower_action_with(&action, &consts).unwrap();
        assert_eq!(bca.const_folds, 0);
        assert!(bca.code.iter().any(|i| i.op == Op::AttrSelf));
    }

    #[test]
    fn whole_program_folds_effect_proven_const_attrs() {
        use crate::builder::DomainBuilder;
        let mut b = DomainBuilder::new("cf");
        b.class("C")
            .attr_default("k", DataType::Int, Value::Int(7))
            .attr("w", DataType::Int)
            .event("Go", &[])
            .state("S", "self.w = self.k + 1;")
            .initial("S")
            .transition("S", "Go", "S");
        let domain = b.build().unwrap();
        let program = crate::code::CompiledProgram::new(&domain);
        let bc = BcProgram::new(&domain, &program);
        assert!(bc.fallbacks.is_empty(), "{:?}", bc.fallbacks);
        assert_eq!(bc.const_folds(), 1, "`k` is never written, `w` is");
        let text = disasm(&domain, &bc);
        assert!(text.contains("const-folds=1"), "{text}");
    }
}
