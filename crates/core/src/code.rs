//! Compiled action code: the slot- and id-resolved form of action blocks.
//!
//! The AST in [`action`](crate::action) refers to everything by name —
//! variables, parameters, attributes, associations, events, actors. The
//! tree-walking evaluator used to re-resolve those names on every
//! execution: a `BTreeMap` lookup per variable access, a linear scan per
//! attribute access, a map lookup per navigation. Since a signal dispatch
//! is the hot operation of every execution platform in the workspace,
//! that cost was paid millions of times per run.
//!
//! This module compiles a [`Block`] once, at model-load time, into an IR
//! where every name is resolved:
//!
//! * variables and event parameters become **frame slots** — dense indices
//!   into a flat `Vec<Option<Value>>` owned by the
//!   [`ExecCtx`](crate::interp::ExecCtx);
//! * attributes, associations, classes, events and actors become their
//!   typed ids, resolvable statically because the (validated) action
//!   language gives every instance-typed expression a static class.
//!
//! Compilation mirrors the walk of [`typeck`](crate::typeck): parameters
//! occupy the first slots positionally, locals are appended in
//! first-textual-binding order, and the `gen ... to <name>` actor
//! fallback is decided by the same "not a bound local" rule. A block that
//! typechecks always compiles; ad-hoc (unvalidated) blocks may instead
//! surface resolution errors at compile time that the old evaluator would
//! have raised mid-run.

use crate::action::{Block, Expr, GenTarget, LValue, Stmt};
use crate::error::{CoreError, Result};
use crate::ids::{ActorId, AssocId, AttrId, ClassId, EventId, StateId};
use crate::model::{Domain, TransitionTarget};
use crate::value::{BinOp, DataType, UnOp, Value};

/// Index of a variable or parameter in the execution frame.
pub type Slot = usize;

/// A compiled expression; evaluation burns one fuel unit per node, like
/// the AST evaluator did.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A literal value.
    Lit(Value),
    /// A frame slot read (local variable or event parameter).
    Slot(Slot),
    /// The executing instance.
    SelfRef,
    /// The candidate instance inside a `where` clause.
    Selected,
    /// Attribute read; the attribute id is pre-resolved against the static
    /// class of the base expression.
    Attr(Box<CExpr>, AttrId),
    /// Association navigation; the association and the target class are
    /// pre-resolved, so no per-source class checks remain at run time.
    Nav {
        /// Source instance or set.
        base: Box<CExpr>,
        /// The association traversed.
        assoc: AssocId,
        /// The class reached (element class of the resulting set).
        target: ClassId,
    },
    /// Unary operator application.
    Unary(UnOp, Box<CExpr>),
    /// Binary operator application.
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    /// Synchronous bridge-function call on an actor.
    Bridge {
        /// The actor providing the function.
        actor: ActorId,
        /// Function name (resolved by the host at call time; bridge calls
        /// are rare and cross partition boundaries).
        func: String,
        /// Argument expressions.
        args: Vec<CExpr>,
    },
}

/// A compiled statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CStmt {
    /// `x = expr;`
    AssignSlot {
        /// Destination slot.
        slot: Slot,
        /// Right-hand side.
        expr: CExpr,
    },
    /// `base.attr = expr;` — the value is evaluated before the base, as in
    /// the AST evaluator.
    AssignAttr {
        /// Instance whose attribute is written.
        base: CExpr,
        /// The attribute.
        attr: AttrId,
        /// Right-hand side.
        expr: CExpr,
    },
    /// `x = create Class;`
    Create {
        /// Slot receiving the new instance reference.
        slot: Slot,
        /// The class instantiated.
        class: ClassId,
    },
    /// `delete expr;`
    Delete {
        /// The instance to delete.
        expr: CExpr,
    },
    /// `select any x from Class [where filter];`
    SelectAny {
        /// Slot receiving the (possibly empty) reference.
        slot: Slot,
        /// The class selected from.
        class: ClassId,
        /// Optional `where` filter, evaluated with `selected` bound.
        filter: Option<CExpr>,
    },
    /// `select many xs from Class [where filter];`
    SelectMany {
        /// Slot receiving the set.
        slot: Slot,
        /// The class selected from.
        class: ClassId,
        /// Optional `where` filter.
        filter: Option<CExpr>,
    },
    /// `relate a to b across Rk;`
    Relate {
        /// One participant.
        a: CExpr,
        /// The other participant.
        b: CExpr,
        /// The association.
        assoc: AssocId,
    },
    /// `unrelate a from b across Rk;`
    Unrelate {
        /// One participant.
        a: CExpr,
        /// The other participant.
        b: CExpr,
        /// The association.
        assoc: AssocId,
    },
    /// `gen Ev(args) to target [after delay];`
    GenInst {
        /// The event, resolved against the target's static class.
        event: EventId,
        /// Argument expressions (evaluated before the target).
        args: Vec<CExpr>,
        /// Destination instance.
        target: CExpr,
        /// Optional delay (timer idiom).
        delay: Option<CExpr>,
    },
    /// `gen ev(args) to ACTOR;` — an observable output.
    GenActor {
        /// Destination actor.
        actor: ActorId,
        /// The actor event.
        event: EventId,
        /// Argument expressions.
        args: Vec<CExpr>,
    },
    /// `cancel Ev;` — cancels delayed events to `self`.
    Cancel {
        /// The event, resolved against the executing class.
        event: EventId,
    },
    /// `if (..) { .. } elif (..) { .. } else { .. }`
    If {
        /// Condition/body pairs in order.
        arms: Vec<(CExpr, Vec<CStmt>)>,
        /// Optional `else` body.
        otherwise: Option<Vec<CStmt>>,
    },
    /// `while (cond) { body }`
    While {
        /// Loop condition.
        cond: CExpr,
        /// Loop body.
        body: Vec<CStmt>,
    },
    /// `foreach x in set { body }`
    ForEach {
        /// Slot rebound to each element.
        slot: Slot,
        /// The set iterated.
        set: CExpr,
        /// Loop body.
        body: Vec<CStmt>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;`
    Return,
    /// A bare expression statement (e.g. a procedure bridge call).
    ExprStmt(CExpr),
}

/// The frame layout of a compiled action: which name lives in which slot.
///
/// Event parameters occupy slots `0..params()` positionally (matching the
/// argument order of the triggering event); locals follow in
/// first-textual-binding order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrameLayout {
    pub(crate) names: Vec<String>,
    pub(crate) params: usize,
}

impl FrameLayout {
    /// Total number of slots (parameters + locals).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the frame holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of event-parameter slots (always the first slots).
    pub fn params(&self) -> usize {
        self.params
    }

    /// The name bound to a slot.
    pub fn name(&self, slot: Slot) -> &str {
        &self.names[slot]
    }

    /// Finds the slot of a local variable or parameter by name (locals
    /// shadow parameters, mirroring the evaluator's lookup order).
    pub fn slot(&self, name: &str) -> Option<Slot> {
        // Search locals first, then parameters.
        self.names[self.params..]
            .iter()
            .position(|n| n == name)
            .map(|i| i + self.params)
            .or_else(|| self.names[..self.params].iter().position(|n| n == name))
    }
}

/// One compiled action block, ready to execute against any
/// [`ActionHost`](crate::interp::ActionHost).
#[derive(Debug, Clone, PartialEq)]
pub struct CAction {
    /// Class whose state machine owns this action (static type of `self`).
    pub self_class: ClassId,
    /// The compiled statements.
    pub code: Vec<CStmt>,
    /// Slot layout of the execution frame.
    pub layout: FrameLayout,
}

impl CAction {
    /// Number of frame slots an [`ExecCtx`](crate::interp::ExecCtx) for
    /// this action must hold.
    pub fn frame_len(&self) -> usize {
        self.layout.len()
    }
}

/// Compiles a block for execution with `self` of class `self_class` and
/// the given positional event parameters.
///
/// # Errors
///
/// Returns [`CoreError::Unresolved`] for unknown names and
/// [`CoreError::Runtime`] for statically-detectable misuse (arity
/// mismatches, navigating to the wrong class, `after` on actor signals).
pub fn compile_block(
    domain: &Domain,
    self_class: ClassId,
    params: &[(String, DataType)],
    block: &Block,
) -> Result<CAction> {
    let mut c = Compiler {
        domain,
        self_class,
        names: params.iter().map(|(n, _)| n.clone()).collect(),
        types: params.iter().map(|(_, t)| Some(*t)).collect(),
        params: params.len(),
        selected: Vec::new(),
    };
    let code = c.block(block)?;
    Ok(CAction {
        self_class,
        code,
        layout: FrameLayout {
            names: c.names,
            params: c.params,
        },
    })
}

/// All compiled state actions of a domain, keyed by
/// `(class, entry state, triggering event)`.
///
/// Only `(state, event)` pairs reachable through a transition are
/// compiled: a state's entry action runs exactly when an event drives a
/// transition into it (creation enters the initial state silently), and
/// the frame layout depends on the triggering event's parameters.
///
/// Construction is infallible; a block that fails to compile (possible
/// only for domains that skipped validation) stores its error and
/// reports it when — and only when — that pair is dispatched, matching
/// the old evaluator's lazy resolution errors.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    /// Per class: `states * events` entries, indexed
    /// `state * n_events + event`. Passive classes hold an empty vec.
    pub(crate) classes: Vec<ClassCode>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct ClassCode {
    pub(crate) n_events: usize,
    pub(crate) actions: Vec<Option<Result<CAction>>>,
    /// Dense `(state, event) -> target` dispatch table, same indexing as
    /// `actions`. Replaces the metamodel's map lookup on the hot path.
    pub(crate) targets: Vec<TransitionTarget>,
}

impl CompiledProgram {
    /// Compiles every event-reachable state action of the domain.
    pub fn new(domain: &Domain) -> CompiledProgram {
        let classes = domain
            .classes
            .iter()
            .enumerate()
            .map(|(ci, class)| {
                let Some(machine) = class.state_machine.as_ref() else {
                    return ClassCode::default();
                };
                let n_events = class.events.len();
                let mut actions: Vec<Option<Result<CAction>>> =
                    vec![None; machine.states.len() * n_events];
                let mut targets =
                    vec![TransitionTarget::CantHappen; machine.states.len() * n_events];
                for t in &machine.transitions {
                    targets[t.from.index() * n_events + t.event.index()] = t.target;
                    let TransitionTarget::To(state) = t.target else {
                        continue;
                    };
                    let idx = state.index() * n_events + t.event.index();
                    if actions[idx].is_none() {
                        let params = &class.events[t.event.index()].params;
                        actions[idx] = Some(compile_block(
                            domain,
                            ClassId::new(ci as u32),
                            params,
                            &machine.state(state).action,
                        ));
                    }
                }
                ClassCode {
                    n_events,
                    actions,
                    targets,
                }
            })
            .collect();
        CompiledProgram { classes }
    }

    /// The effect of `event` arriving while `class` is in `state`, from
    /// the dense dispatch table (equivalent to
    /// [`StateMachine::dispatch`](crate::model::StateMachine::dispatch)).
    pub fn target(&self, class: ClassId, state: StateId, event: EventId) -> TransitionTarget {
        self.classes
            .get(class.index())
            .and_then(|cc| cc.targets.get(state.index() * cc.n_events + event.index()))
            .copied()
            .unwrap_or(TransitionTarget::CantHappen)
    }

    /// The compiled action entered when `event` drives `class` into
    /// `state`, or `None` if no transition produces that pair.
    ///
    /// # Errors
    ///
    /// Returns the compilation error recorded for the pair, if any.
    pub fn action(
        &self,
        class: ClassId,
        state: StateId,
        event: EventId,
    ) -> Option<Result<&CAction>> {
        let cc = self.classes.get(class.index())?;
        let entry = cc
            .actions
            .get(state.index() * cc.n_events + event.index())?;
        entry.as_ref().map(|r| r.as_ref().map_err(CoreError::clone))
    }
}

// -- the compiler ----------------------------------------------------------

struct Compiler<'d> {
    domain: &'d Domain,
    self_class: ClassId,
    /// Slot names; `0..params` are event parameters.
    names: Vec<String>,
    /// Best-known static type per slot (`None` once a slot is rebound
    /// with a different type — only possible in unvalidated blocks).
    types: Vec<Option<DataType>>,
    params: usize,
    /// Stack of candidate classes for nested `where` clauses.
    selected: Vec<ClassId>,
}

impl Compiler<'_> {
    /// Finds a local variable's slot (parameters are not visible as bare
    /// variables; the evaluator kept them in a separate namespace).
    fn local(&self, name: &str) -> Option<Slot> {
        self.names[self.params..]
            .iter()
            .position(|n| n == name)
            .map(|i| i + self.params)
    }

    /// Binds a local, allocating a slot at first textual binding.
    fn bind(&mut self, name: &str, ty: Option<DataType>) -> Slot {
        match self.local(name) {
            Some(slot) => {
                if self.types[slot] != ty {
                    self.types[slot] = None;
                }
                slot
            }
            None => {
                self.names.push(name.to_owned());
                self.types.push(ty);
                self.names.len() - 1
            }
        }
    }

    fn class_of(&self, ty: Option<DataType>, what: &str) -> Result<ClassId> {
        ty.and_then(DataType::class).ok_or_else(|| {
            CoreError::runtime(format!(
                "cannot statically resolve the class of {what} (expected an \
                 instance-typed expression)"
            ))
        })
    }

    fn block(&mut self, block: &Block) -> Result<Vec<CStmt>> {
        block.stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<CStmt> {
        match stmt {
            Stmt::Assign { lhs, expr, .. } => {
                let (value, vty) = self.expr(expr)?;
                match lhs {
                    LValue::Var(name) => Ok(CStmt::AssignSlot {
                        slot: self.bind(name, vty),
                        expr: value,
                    }),
                    LValue::Attr(base, attr) => {
                        let (cb, bty) = self.expr(base)?;
                        let class = self.class_of(bty, &format!("`{base}`"))?;
                        let attr = resolve_attr(self.domain, class, attr)?;
                        Ok(CStmt::AssignAttr {
                            base: cb,
                            attr,
                            expr: value,
                        })
                    }
                }
            }
            Stmt::Create { var, class, .. } => {
                let class = self.domain.class_id(class)?;
                Ok(CStmt::Create {
                    slot: self.bind(var, Some(DataType::Inst(class))),
                    class,
                })
            }
            Stmt::Delete { expr, .. } => {
                let (e, _) = self.expr(expr)?;
                Ok(CStmt::Delete { expr: e })
            }
            Stmt::SelectAny {
                var, class, filter, ..
            } => {
                let class = self.domain.class_id(class)?;
                let filter = self.filter(class, filter.as_ref())?;
                Ok(CStmt::SelectAny {
                    slot: self.bind(var, Some(DataType::Inst(class))),
                    class,
                    filter,
                })
            }
            Stmt::SelectMany {
                var, class, filter, ..
            } => {
                let class = self.domain.class_id(class)?;
                let filter = self.filter(class, filter.as_ref())?;
                Ok(CStmt::SelectMany {
                    slot: self.bind(var, Some(DataType::Set(class))),
                    class,
                    filter,
                })
            }
            Stmt::Relate { a, b, assoc, .. } => Ok(CStmt::Relate {
                a: self.expr(a)?.0,
                b: self.expr(b)?.0,
                assoc: self.domain.assoc_id(assoc)?,
            }),
            Stmt::Unrelate { a, b, assoc, .. } => Ok(CStmt::Unrelate {
                a: self.expr(a)?.0,
                b: self.expr(b)?.0,
                assoc: self.domain.assoc_id(assoc)?,
            }),
            Stmt::Generate {
                event,
                args,
                target,
                delay,
                ..
            } => self.generate(event, args, target, delay.as_ref()),
            Stmt::Cancel { event, .. } => Ok(CStmt::Cancel {
                event: resolve_event(self.domain, self.self_class, event)?,
            }),
            Stmt::If {
                arms, otherwise, ..
            } => {
                let arms = arms
                    .iter()
                    .map(|(cond, body)| Ok((self.expr(cond)?.0, self.block(body)?)))
                    .collect::<Result<_>>()?;
                let otherwise = otherwise.as_ref().map(|b| self.block(b)).transpose()?;
                Ok(CStmt::If { arms, otherwise })
            }
            Stmt::While { cond, body, .. } => Ok(CStmt::While {
                cond: self.expr(cond)?.0,
                body: self.block(body)?,
            }),
            Stmt::ForEach { var, set, body, .. } => {
                let (set, sty) = self.expr(set)?;
                let elem = sty.and_then(DataType::class).map(DataType::Inst);
                let slot = self.bind(var, elem);
                Ok(CStmt::ForEach {
                    slot,
                    set,
                    body: self.block(body)?,
                })
            }
            Stmt::Break { .. } => Ok(CStmt::Break),
            Stmt::Continue { .. } => Ok(CStmt::Continue),
            Stmt::Return { .. } => Ok(CStmt::Return),
            Stmt::ExprStmt { expr, .. } => Ok(CStmt::ExprStmt(self.expr(expr)?.0)),
        }
    }

    fn filter(&mut self, class: ClassId, filter: Option<&Expr>) -> Result<Option<CExpr>> {
        let Some(f) = filter else { return Ok(None) };
        self.selected.push(class);
        let r = self.expr(f);
        self.selected.pop();
        Ok(Some(r?.0))
    }

    fn generate(
        &mut self,
        event: &str,
        args: &[Expr],
        target: &GenTarget,
        delay: Option<&Expr>,
    ) -> Result<CStmt> {
        let cargs: Vec<CExpr> = args
            .iter()
            .map(|a| self.expr(a).map(|(e, _)| e))
            .collect::<Result<_>>()?;
        // Actor fallback: a bare variable in target position that is not a
        // bound local but names an actor is an actor send (same rule as
        // the type checker and the old evaluator).
        let actor: Option<ActorId> = match target {
            GenTarget::Actor(name) => Some(self.domain.actor_id(name)?),
            GenTarget::Inst(Expr::Var(name)) if self.local(name).is_none() => {
                self.domain.actor_id(name).ok()
            }
            GenTarget::Inst(_) => None,
        };
        if let Some(actor) = actor {
            if delay.is_some() {
                return Err(CoreError::runtime(
                    "`after` is only valid for instance-directed signals",
                ));
            }
            let decl = self.domain.actor(actor);
            let event_id = decl
                .event_id(event)
                .ok_or_else(|| CoreError::unresolved("actor event", event))?;
            check_arity(&decl.events[event_id.index()].params, cargs.len(), event)?;
            return Ok(CStmt::GenActor {
                actor,
                event: event_id,
                args: cargs,
            });
        }
        let GenTarget::Inst(target_expr) = target else {
            unreachable!("actor targets handled above");
        };
        let (ct, tty) = self.expr(target_expr)?;
        let class = self.class_of(tty, &format!("`{target_expr}`"))?;
        let event_id = resolve_event(self.domain, class, event)?;
        check_arity(
            &self.domain.class(class).events[event_id.index()].params,
            cargs.len(),
            event,
        )?;
        let delay = delay.map(|d| self.expr(d).map(|(e, _)| e)).transpose()?;
        Ok(CStmt::GenInst {
            event: event_id,
            args: cargs,
            target: ct,
            delay,
        })
    }

    /// Compiles an expression, returning its best-known static type
    /// (`None` when the type is unknown or irrelevant — only instance and
    /// set classes are ever consumed downstream).
    fn expr(&mut self, expr: &Expr) -> Result<(CExpr, Option<DataType>)> {
        match expr {
            Expr::Lit(v) => Ok((CExpr::Lit(v.clone()), Some(v.data_type()))),
            Expr::Var(name) => {
                let slot = self
                    .local(name)
                    .ok_or_else(|| CoreError::unresolved("variable", name.clone()))?;
                Ok((CExpr::Slot(slot), self.types[slot]))
            }
            Expr::SelfRef => Ok((CExpr::SelfRef, Some(DataType::Inst(self.self_class)))),
            Expr::Selected => {
                let class = *self.selected.last().ok_or_else(|| {
                    CoreError::runtime("`selected` used outside a `where` clause")
                })?;
                Ok((CExpr::Selected, Some(DataType::Inst(class))))
            }
            Expr::Param(name) => {
                let slot = self.names[..self.params]
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| CoreError::unresolved("event parameter", name.clone()))?;
                Ok((CExpr::Slot(slot), self.types[slot]))
            }
            Expr::Attr(base, name) => {
                let (cb, bty) = self.expr(base)?;
                let class = self.class_of(bty, &format!("`{base}`"))?;
                let attr = resolve_attr(self.domain, class, name)?;
                let ty = self.domain.class(class).attribute(attr).ty;
                Ok((CExpr::Attr(Box::new(cb), attr), Some(ty)))
            }
            Expr::Nav(base, class_name, assoc_name) => {
                let (cb, bty) = self.expr(base)?;
                let assoc = self.domain.assoc_id(assoc_name)?;
                let want = self.domain.class_id(class_name)?;
                let src = self.class_of(bty, &format!("`{base}`"))?;
                let target = self.domain.nav_target(assoc, src)?;
                if target != want {
                    return Err(CoreError::runtime(format!(
                        "association {assoc_name} from {} reaches {}, not {}",
                        self.domain.class(src).name,
                        self.domain.class(target).name,
                        class_name
                    )));
                }
                Ok((
                    CExpr::Nav {
                        base: Box::new(cb),
                        assoc,
                        target: want,
                    },
                    Some(DataType::Set(want)),
                ))
            }
            Expr::Unary(op, e) => {
                let (ce, ety) = self.expr(e)?;
                // `any` is the only operator producing an instance type.
                let ty = match op {
                    UnOp::Any => ety.and_then(DataType::class).map(DataType::Inst),
                    _ => None,
                };
                Ok((CExpr::Unary(*op, Box::new(ce)), ty))
            }
            Expr::Binary(op, a, b) => {
                let (ca, _) = self.expr(a)?;
                let (cb, _) = self.expr(b)?;
                Ok((CExpr::Binary(*op, Box::new(ca), Box::new(cb)), None))
            }
            Expr::BridgeCall(actor, func, args) => {
                let actor_id = self.domain.actor_id(actor)?;
                let decl = self
                    .domain
                    .actor(actor_id)
                    .func(func)
                    .ok_or_else(|| CoreError::unresolved("bridge function", func.clone()))?;
                let ty = decl.ret;
                let cargs = args
                    .iter()
                    .map(|a| self.expr(a).map(|(e, _)| e))
                    .collect::<Result<_>>()?;
                Ok((
                    CExpr::Bridge {
                        actor: actor_id,
                        func: func.clone(),
                        args: cargs,
                    },
                    ty,
                ))
            }
        }
    }
}

fn check_arity(params: &[(String, DataType)], got: usize, event: &str) -> Result<()> {
    if params.len() != got {
        return Err(CoreError::runtime(format!(
            "event `{event}` takes {} argument(s), got {got}",
            params.len()
        )));
    }
    Ok(())
}

fn resolve_attr(domain: &Domain, class: ClassId, name: &str) -> Result<AttrId> {
    domain
        .class(class)
        .attr_id(name)
        .ok_or_else(|| CoreError::Unresolved {
            kind: "attribute",
            name: format!("{}.{name}", domain.class(class).name),
        })
}

fn resolve_event(domain: &Domain, class: ClassId, name: &str) -> Result<EventId> {
    domain
        .class(class)
        .event_id(name)
        .ok_or_else(|| CoreError::Unresolved {
            kind: "event",
            name: format!("{}.{name}", domain.class(class).name),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{pipeline_domain, DomainBuilder};
    use crate::model::Multiplicity;
    use crate::parse::parse_block;

    fn demo_domain() -> Domain {
        let mut b = DomainBuilder::new("demo");
        b.actor("OUT").event("done", &[("v", DataType::Int)]);
        b.class("Lamp").attr("on", DataType::Bool);
        b.class("Counter")
            .attr("n", DataType::Int)
            .event("Set", &[("v", DataType::Int)])
            .state("Idle", "")
            .state("Run", "self.n = rcvd.v; gen done(self.n) to OUT;")
            .initial("Idle")
            .transition("Idle", "Set", "Run")
            .transition("Run", "Set", "Run");
        b.association(
            "R1",
            "Counter",
            Multiplicity::One,
            "Lamp",
            Multiplicity::Many,
        );
        b.build().unwrap()
    }

    #[test]
    fn params_occupy_leading_slots() {
        let d = demo_domain();
        let counter = d.class_id("Counter").unwrap();
        let block = parse_block("x = rcvd.v; y = x + 1;").unwrap();
        let a = compile_block(&d, counter, &[("v".to_owned(), DataType::Int)], &block).unwrap();
        assert_eq!(a.layout.params(), 1);
        assert_eq!(a.layout.name(0), "v");
        assert_eq!(a.layout.slot("x"), Some(1));
        assert_eq!(a.layout.slot("y"), Some(2));
        assert_eq!(a.frame_len(), 3);
    }

    #[test]
    fn attrs_and_events_are_id_resolved() {
        let d = demo_domain();
        let counter = d.class_id("Counter").unwrap();
        let block = parse_block("self.n = self.n + 1; gen Set(self.n) to self;").unwrap();
        let a = compile_block(&d, counter, &[], &block).unwrap();
        let CStmt::AssignAttr { attr, .. } = &a.code[0] else {
            panic!("expected attr assignment, got {:?}", a.code[0]);
        };
        assert_eq!(*attr, d.class(counter).attr_id("n").unwrap());
        let CStmt::GenInst { event, .. } = &a.code[1] else {
            panic!("expected gen, got {:?}", a.code[1]);
        };
        assert_eq!(*event, d.class(counter).event_id("Set").unwrap());
    }

    #[test]
    fn unknown_names_fail_to_compile() {
        let d = demo_domain();
        let counter = d.class_id("Counter").unwrap();
        for src in [
            "x = nope + 1;",
            "self.zzz = 1;",
            "gen Nope() to self;",
            "x = self -> Lamp[R99];",
        ] {
            let block = parse_block(src).unwrap();
            assert!(
                compile_block(&d, counter, &[], &block).is_err(),
                "{src} should not compile"
            );
        }
    }

    #[test]
    fn navigation_is_class_checked() {
        let d = demo_domain();
        let counter = d.class_id("Counter").unwrap();
        let block = parse_block("x = self -> Counter[R1];").unwrap();
        let err = compile_block(&d, counter, &[], &block).unwrap_err();
        assert!(err.to_string().contains("reaches"));
    }

    #[test]
    fn actor_fallback_matches_typecheck_rule() {
        let d = demo_domain();
        let counter = d.class_id("Counter").unwrap();
        // OUT is not a local, so the generate resolves to the actor.
        let block = parse_block("gen done(1) to OUT;").unwrap();
        let a = compile_block(&d, counter, &[], &block).unwrap();
        assert!(matches!(a.code[0], CStmt::GenActor { .. }));
    }

    #[test]
    fn whole_domain_compiles_event_reachable_pairs() {
        let d = pipeline_domain(3).unwrap();
        let p = CompiledProgram::new(&d);
        for k in 0..3u32 {
            let class = d.class_id(&format!("Stage{k}")).unwrap();
            let c = d.class(class);
            let m = c.state_machine.as_ref().unwrap();
            let fwd = m.state_id("Forwarding").unwrap();
            let feed = c.event_id("Feed").unwrap();
            let action = p.action(class, fwd, feed).unwrap().unwrap();
            assert_eq!(action.layout.params(), 1, "Feed carries one parameter");
            // The initial state is never entered by an event.
            let waiting = m.state_id("Waiting").unwrap();
            assert!(p.action(class, waiting, feed).is_none());
        }
    }
}
