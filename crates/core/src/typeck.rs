//! Static type checking of action blocks.
//!
//! Executable UML models are *specifications* — catching a type error at
//! model-compile time is far cheaper than at co-simulation time. The
//! checker is flow-insensitive for locals: a variable's type is fixed by
//! its first (textual) binding and every later use and rebinding must
//! agree. `select any` binds `inst<C>`, `select many` binds `set<C>`,
//! `foreach` binds the element type of the iterated set.
//!
//! The checker *accumulates*: each statement is checked independently and
//! every error is reported through a sink ([`check_block_into`]), so one
//! bad statement does not hide the rest of the block. [`check_block`] is
//! the fail-fast wrapper that returns only the first error.

use crate::action::{Block, Expr, GenTarget, LValue, Stmt};
use crate::error::{CoreError, Pos, Result};
use crate::ids::ClassId;
use crate::model::Domain;
use crate::value::{BinOp, DataType, UnOp};
use std::collections::BTreeMap;

/// Type environment for one action block.
struct Env<'d> {
    domain: &'d Domain,
    self_class: ClassId,
    params: BTreeMap<String, DataType>,
    locals: BTreeMap<String, DataType>,
    selected: Option<DataType>,
    in_loop: u32,
}

/// Type-checks the entry action of a state, given the class it belongs to
/// and the parameters of the triggering event.
///
/// # Errors
///
/// Returns [`CoreError::Type`] or [`CoreError::Unresolved`] with the
/// position of the offending statement.
pub fn check_block(
    domain: &Domain,
    self_class: ClassId,
    params: &[(String, DataType)],
    block: &Block,
) -> Result<()> {
    let mut first: Option<CoreError> = None;
    check_block_into(domain, self_class, params, block, &mut |_, err| {
        if first.is_none() {
            first = Some(err);
        }
    });
    match first {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Type-checks an action block, reporting **every** error through `sink`
/// as `(statement position, error)` pairs instead of stopping at the
/// first. Statements after a failing one are still checked (a failed
/// binding leaves the variable unbound, so some follow-on errors may be
/// cascades); `if`/`while` bodies are checked even when the condition is
/// ill-typed, while a `foreach` body is skipped when its header fails
/// (the loop variable's type is unknowable).
pub fn check_block_into(
    domain: &Domain,
    self_class: ClassId,
    params: &[(String, DataType)],
    block: &Block,
    sink: &mut dyn FnMut(Pos, CoreError),
) {
    let mut env = Env {
        domain,
        self_class,
        params: params.iter().cloned().collect(),
        locals: BTreeMap::new(),
        selected: None,
        in_loop: 0,
    };
    check_stmts(&mut env, block, sink);
}

fn terr(pos: Pos, msg: impl Into<String>) -> CoreError {
    CoreError::Type {
        pos,
        msg: msg.into(),
    }
}

fn check_stmts(env: &mut Env<'_>, block: &Block, sink: &mut dyn FnMut(Pos, CoreError)) {
    for stmt in &block.stmts {
        check_stmt(env, stmt, sink);
    }
}

/// Checks one statement, recursing into nested blocks with recovery.
fn check_stmt(env: &mut Env<'_>, stmt: &Stmt, sink: &mut dyn FnMut(Pos, CoreError)) {
    let pos = stmt.pos();
    match stmt {
        Stmt::If {
            arms, otherwise, ..
        } => {
            for (cond, body) in arms {
                match type_of(env, cond, pos) {
                    Ok(DataType::Bool) => {}
                    Ok(cty) => sink(
                        pos,
                        terr(pos, format!("`if` condition must be bool, got {cty}")),
                    ),
                    Err(e) => sink(pos, e),
                }
                check_stmts(env, body, sink);
            }
            if let Some(body) = otherwise {
                check_stmts(env, body, sink);
            }
        }
        Stmt::While { cond, body, .. } => {
            match type_of(env, cond, pos) {
                Ok(DataType::Bool) => {}
                Ok(cty) => sink(
                    pos,
                    terr(pos, format!("`while` condition must be bool, got {cty}")),
                ),
                Err(e) => sink(pos, e),
            }
            env.in_loop += 1;
            check_stmts(env, body, sink);
            env.in_loop -= 1;
        }
        Stmt::ForEach { var, set, body, .. } => {
            let header = (|| {
                let sty = type_of(env, set, pos)?;
                let DataType::Set(class) = sty else {
                    return Err(terr(pos, format!("`foreach` needs a set, got {sty}")));
                };
                bind(env, pos, var, DataType::Inst(class))
            })();
            match header {
                // The loop variable's type is unknown: checking the body
                // would only produce cascading unresolved-variable noise.
                Err(e) => sink(pos, e),
                Ok(()) => {
                    env.in_loop += 1;
                    check_stmts(env, body, sink);
                    env.in_loop -= 1;
                }
            }
        }
        other => {
            if let Err(e) = check_simple_stmt(env, other) {
                sink(pos, e);
            }
        }
    }
}

fn bind(env: &mut Env<'_>, pos: Pos, name: &str, ty: DataType) -> Result<()> {
    if env.params.contains_key(name) {
        return Err(terr(pos, format!("`{name}` shadows an event parameter")));
    }
    match env.locals.get(name) {
        None => {
            env.locals.insert(name.to_owned(), ty);
            Ok(())
        }
        Some(prev) if *prev == ty => Ok(()),
        Some(prev) => Err(terr(
            pos,
            format!("`{name}` has type {prev}, cannot rebind to {ty}"),
        )),
    }
}

/// Checks a statement with no nested blocks; control flow is handled by
/// [`check_stmt`].
fn check_simple_stmt(env: &mut Env<'_>, stmt: &Stmt) -> Result<()> {
    let pos = stmt.pos();
    match stmt {
        Stmt::Assign { lhs, expr, .. } => {
            let ty = type_of(env, expr, pos)?;
            match lhs {
                LValue::Var(name) => bind(env, pos, name, ty),
                LValue::Attr(base, attr) => {
                    let base_ty = type_of(env, base, pos)?;
                    let DataType::Inst(class) = base_ty else {
                        return Err(terr(pos, format!("cannot assign attribute of {base_ty}")));
                    };
                    let c = env.domain.class(class);
                    let Some(attr_id) = c.attr_id(attr) else {
                        return Err(CoreError::Unresolved {
                            kind: "attribute",
                            name: format!("{}.{attr}", c.name),
                        });
                    };
                    let want = c.attribute(attr_id).ty;
                    if want != ty {
                        return Err(terr(
                            pos,
                            format!("attribute {}.{attr} is {want}, got {ty}", c.name),
                        ));
                    }
                    Ok(())
                }
            }
        }
        Stmt::Create { var, class, .. } => {
            let id = env.domain.class_id(class)?;
            bind(env, pos, var, DataType::Inst(id))
        }
        Stmt::Delete { expr, .. } => {
            let ty = type_of(env, expr, pos)?;
            match ty {
                DataType::Inst(_) => Ok(()),
                other => Err(terr(pos, format!("cannot delete {other}"))),
            }
        }
        Stmt::SelectAny {
            var, class, filter, ..
        }
        | Stmt::SelectMany {
            var, class, filter, ..
        } => {
            let id = env.domain.class_id(class)?;
            if let Some(f) = filter {
                let saved = env.selected.replace(DataType::Inst(id));
                let fty = type_of(env, f, pos);
                env.selected = saved;
                let fty = fty?;
                if fty != DataType::Bool {
                    return Err(terr(pos, format!("`where` clause must be bool, got {fty}")));
                }
            }
            let ty = if matches!(stmt, Stmt::SelectMany { .. }) {
                DataType::Set(id)
            } else {
                DataType::Inst(id)
            };
            bind(env, pos, var, ty)
        }
        Stmt::Relate { a, b, assoc, .. } | Stmt::Unrelate { a, b, assoc, .. } => {
            let assoc_id = env.domain.assoc_id(assoc)?;
            let aty = type_of(env, a, pos)?;
            let bty = type_of(env, b, pos)?;
            let (DataType::Inst(ca), DataType::Inst(cb)) = (aty, bty) else {
                return Err(terr(pos, "relate/unrelate operands must be instances"));
            };
            let r = env.domain.association(assoc_id);
            let ok = (r.from == ca && r.to == cb) || (r.from == cb && r.to == ca);
            if !ok {
                return Err(terr(
                    pos,
                    format!(
                        "association {assoc} links {} and {}, got {} and {}",
                        env.domain.class(r.from).name,
                        env.domain.class(r.to).name,
                        env.domain.class(ca).name,
                        env.domain.class(cb).name
                    ),
                ));
            }
            Ok(())
        }
        Stmt::Generate {
            event,
            args,
            target,
            delay,
            ..
        } => {
            let arg_tys: Vec<DataType> = args
                .iter()
                .map(|a| type_of(env, a, pos))
                .collect::<Result<_>>()?;
            // Actor target, either declared or a bare non-local name.
            let actor =
                match target {
                    GenTarget::Actor(name) => Some(env.domain.actor_id(name)?),
                    GenTarget::Inst(Expr::Var(name))
                        if !env.locals.contains_key(name) && !env.params.contains_key(name) =>
                    {
                        Some(env.domain.actor_id(name).map_err(|_| {
                            CoreError::unresolved("variable or actor", name.clone())
                        })?)
                    }
                    GenTarget::Inst(_) => None,
                };
            let params: &[(String, DataType)] = match actor {
                Some(a) => {
                    if delay.is_some() {
                        return Err(terr(pos, "`after` is not valid for actor signals"));
                    }
                    let actor = env.domain.actor(a);
                    let Some(ev) = actor.event_id(event) else {
                        return Err(CoreError::Unresolved {
                            kind: "actor event",
                            name: format!("{}.{event}", actor.name),
                        });
                    };
                    &actor.events[ev.index()].params
                }
                None => {
                    let GenTarget::Inst(texpr) = target else {
                        unreachable!()
                    };
                    let tty = type_of(env, texpr, pos)?;
                    let DataType::Inst(class) = tty else {
                        return Err(terr(
                            pos,
                            format!("signal target must be an instance, got {tty}"),
                        ));
                    };
                    let c = env.domain.class(class);
                    let Some(ev) = c.event_id(event) else {
                        return Err(CoreError::Unresolved {
                            kind: "event",
                            name: format!("{}.{event}", c.name),
                        });
                    };
                    &c.events[ev.index()].params
                }
            };
            if params.len() != arg_tys.len() {
                return Err(terr(
                    pos,
                    format!(
                        "event `{event}` takes {} argument(s), got {}",
                        params.len(),
                        arg_tys.len()
                    ),
                ));
            }
            for ((pname, want), got) in params.iter().zip(&arg_tys) {
                if want != got {
                    return Err(terr(
                        pos,
                        format!("event `{event}` parameter `{pname}` is {want}, got {got}"),
                    ));
                }
            }
            if let Some(d) = delay {
                let dty = type_of(env, d, pos)?;
                if dty != DataType::Int {
                    return Err(terr(pos, format!("signal delay must be int, got {dty}")));
                }
            }
            Ok(())
        }
        Stmt::Cancel { event, .. } => {
            let c = env.domain.class(env.self_class);
            if c.event_id(event).is_none() {
                return Err(CoreError::Unresolved {
                    kind: "event",
                    name: format!("{}.{event}", c.name),
                });
            }
            Ok(())
        }
        Stmt::If { .. } | Stmt::While { .. } | Stmt::ForEach { .. } => {
            unreachable!("control flow handled by check_stmt")
        }
        Stmt::Break { .. } | Stmt::Continue { .. } => {
            if env.in_loop == 0 {
                return Err(terr(pos, "`break`/`continue` outside of a loop"));
            }
            Ok(())
        }
        Stmt::Return { .. } => Ok(()),
        Stmt::ExprStmt { expr, .. } => {
            if !matches!(expr, Expr::BridgeCall(..)) {
                return Err(terr(pos, "expression statement must be a bridge call"));
            }
            // Bridge procedures (no return type) are allowed as statements.
            type_of_bridge(env, expr, pos, true)?;
            Ok(())
        }
    }
}

fn type_of(env: &mut Env<'_>, expr: &Expr, pos: Pos) -> Result<DataType> {
    match expr {
        Expr::Lit(v) => Ok(v.data_type()),
        Expr::Var(name) => env
            .locals
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::unresolved("variable", name.clone())),
        Expr::SelfRef => Ok(DataType::Inst(env.self_class)),
        Expr::Selected => env
            .selected
            .ok_or_else(|| terr(pos, "`selected` used outside a `where` clause")),
        Expr::Param(name) => env
            .params
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::unresolved("event parameter", name.clone())),
        Expr::Attr(base, name) => {
            let base_ty = type_of(env, base, pos)?;
            let DataType::Inst(class) = base_ty else {
                return Err(terr(pos, format!("{base_ty} has no attributes")));
            };
            let c = env.domain.class(class);
            let Some(attr_id) = c.attr_id(name) else {
                return Err(CoreError::Unresolved {
                    kind: "attribute",
                    name: format!("{}.{name}", c.name),
                });
            };
            Ok(c.attribute(attr_id).ty)
        }
        Expr::Nav(base, class_name, assoc_name) => {
            let base_ty = type_of(env, base, pos)?;
            let src = match base_ty {
                DataType::Inst(c) | DataType::Set(c) => c,
                other => return Err(terr(pos, format!("cannot navigate from {other}"))),
            };
            let assoc = env.domain.assoc_id(assoc_name)?;
            let target = env.domain.nav_target(assoc, src).map_err(|_| {
                terr(
                    pos,
                    format!(
                        "class {} does not participate in {assoc_name}",
                        env.domain.class(src).name
                    ),
                )
            })?;
            let want = env.domain.class_id(class_name)?;
            if want != target {
                return Err(terr(
                    pos,
                    format!(
                        "{assoc_name} from {} reaches {}, not {class_name}",
                        env.domain.class(src).name,
                        env.domain.class(target).name
                    ),
                ));
            }
            Ok(DataType::Set(target))
        }
        Expr::Unary(op, e) => {
            let t = type_of(env, e, pos)?;
            use UnOp::*;
            match op {
                Neg => match t {
                    DataType::Int | DataType::Real => Ok(t),
                    other => Err(terr(pos, format!("cannot negate {other}"))),
                },
                Not => match t {
                    DataType::Bool => Ok(DataType::Bool),
                    other => Err(terr(pos, format!("cannot apply `not` to {other}"))),
                },
                Cardinality => match t {
                    DataType::Set(_) | DataType::Inst(_) => Ok(DataType::Int),
                    other => Err(terr(pos, format!("cardinality of {other}"))),
                },
                Empty | NotEmpty => match t {
                    DataType::Set(_) | DataType::Inst(_) => Ok(DataType::Bool),
                    other => Err(terr(pos, format!("empty/not_empty of {other}"))),
                },
                Any => match t {
                    DataType::Set(c) => Ok(DataType::Inst(c)),
                    DataType::Inst(c) => Ok(DataType::Inst(c)),
                    other => Err(terr(pos, format!("`any` of {other}"))),
                },
                ToInt => match t {
                    DataType::Int | DataType::Real | DataType::Bool => Ok(DataType::Int),
                    other => Err(terr(pos, format!("cannot cast {other} to int"))),
                },
                ToReal => match t {
                    DataType::Int | DataType::Real => Ok(DataType::Real),
                    other => Err(terr(pos, format!("cannot cast {other} to real"))),
                },
                ToStr => match t {
                    DataType::Int | DataType::Real | DataType::Bool | DataType::Str => {
                        Ok(DataType::Str)
                    }
                    other => Err(terr(pos, format!("cannot cast {other} to string"))),
                },
            }
        }
        Expr::Binary(op, a, b) => {
            let ta = type_of(env, a, pos)?;
            let tb = type_of(env, b, pos)?;
            use BinOp::*;
            match op {
                Add => match (ta, tb) {
                    (DataType::Int, DataType::Int) => Ok(DataType::Int),
                    (DataType::Real, DataType::Real) => Ok(DataType::Real),
                    (DataType::Str, DataType::Str) => Ok(DataType::Str),
                    _ => Err(terr(pos, format!("cannot add {ta} and {tb}"))),
                },
                Sub | Mul | Div => match (ta, tb) {
                    (DataType::Int, DataType::Int) => Ok(DataType::Int),
                    (DataType::Real, DataType::Real) => Ok(DataType::Real),
                    _ => Err(terr(pos, format!("cannot apply `{op}` to {ta} and {tb}"))),
                },
                Rem => match (ta, tb) {
                    (DataType::Int, DataType::Int) => Ok(DataType::Int),
                    _ => Err(terr(pos, format!("`%` needs ints, got {ta} and {tb}"))),
                },
                Eq | Ne => {
                    if ta == tb {
                        Ok(DataType::Bool)
                    } else {
                        Err(terr(pos, format!("cannot compare {ta} with {tb}")))
                    }
                }
                Lt | Le | Gt | Ge => match (ta, tb) {
                    (DataType::Int, DataType::Int)
                    | (DataType::Real, DataType::Real)
                    | (DataType::Str, DataType::Str) => Ok(DataType::Bool),
                    _ => Err(terr(pos, format!("cannot order {ta} and {tb}"))),
                },
                And | Or => match (ta, tb) {
                    (DataType::Bool, DataType::Bool) => Ok(DataType::Bool),
                    _ => Err(terr(pos, format!("`{op}` needs bools, got {ta} and {tb}"))),
                },
            }
        }
        Expr::BridgeCall(..) => type_of_bridge(env, expr, pos, false),
    }
}

fn type_of_bridge(
    env: &mut Env<'_>,
    expr: &Expr,
    pos: Pos,
    allow_procedure: bool,
) -> Result<DataType> {
    let Expr::BridgeCall(actor_name, func_name, args) = expr else {
        return Err(terr(pos, "internal: not a bridge call"));
    };
    let actor_id = env.domain.actor_id(actor_name)?;
    let actor = env.domain.actor(actor_id);
    let Some(func) = actor.func(func_name) else {
        return Err(CoreError::Unresolved {
            kind: "bridge function",
            name: format!("{actor_name}::{func_name}"),
        });
    };
    if func.params.len() != args.len() {
        return Err(terr(
            pos,
            format!(
                "{actor_name}::{func_name} takes {} argument(s), got {}",
                func.params.len(),
                args.len()
            ),
        ));
    }
    let param_tys: Vec<(String, DataType)> = func.params.clone();
    let ret = func.ret;
    for ((pname, want), arg) in param_tys.iter().zip(args) {
        let got = type_of(env, arg, pos)?;
        if *want != got {
            return Err(terr(
                pos,
                format!("{actor_name}::{func_name} parameter `{pname}` is {want}, got {got}"),
            ));
        }
    }
    match ret {
        Some(t) => Ok(t),
        None if allow_procedure => Ok(DataType::Bool), // dummy, unused
        None => Err(terr(
            pos,
            format!("{actor_name}::{func_name} returns nothing, cannot use as a value"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Actor, Association, Attribute, Class, EventDecl, FuncDecl, Multiplicity};
    use crate::parse::parse_block;
    use crate::value::Value;

    fn domain() -> Domain {
        let mut d = Domain::new("t");
        d.classes.push(Class {
            name: "Counter".into(),
            attributes: vec![Attribute {
                name: "n".into(),
                ty: DataType::Int,
                default: Value::Int(0),
            }],
            events: vec![EventDecl {
                name: "Set".into(),
                params: vec![("v".into(), DataType::Int)],
            }],
            state_machine: None,
        });
        d.classes.push(Class {
            name: "Lamp".into(),
            attributes: vec![Attribute {
                name: "on".into(),
                ty: DataType::Bool,
                default: Value::Bool(false),
            }],
            events: vec![],
            state_machine: None,
        });
        d.associations.push(Association {
            name: "R1".into(),
            from: ClassId::new(0),
            to: ClassId::new(1),
            from_mult: Multiplicity::One,
            to_mult: Multiplicity::Many,
        });
        d.actors.push(Actor {
            name: "ENV".into(),
            events: vec![EventDecl {
                name: "done".into(),
                params: vec![("code".into(), DataType::Int)],
            }],
            funcs: vec![
                FuncDecl {
                    name: "info".into(),
                    params: vec![("msg".into(), DataType::Str)],
                    ret: None,
                },
                FuncDecl {
                    name: "rand".into(),
                    params: vec![],
                    ret: Some(DataType::Int),
                },
            ],
        });
        d.reindex().unwrap();
        d
    }

    fn check(src: &str) -> Result<()> {
        let d = domain();
        let block = parse_block(src).unwrap();
        check_block(&d, ClassId::new(0), &[("v".into(), DataType::Int)], &block)
    }

    #[test]
    fn well_typed_block_passes() {
        check(
            "self.n = self.n + rcvd.v;\n\
             l = create Lamp;\n\
             l.on = self.n > 0;\n\
             relate self to l across R1;\n\
             select many ls from Lamp where selected.on;\n\
             foreach x in ls { x.on = false; }\n\
             gen Set(1) to self;\n\
             gen done(self.n) to ENV;\n\
             ENV::info(\"ok\");\n\
             r = ENV::rand() + 1;",
        )
        .unwrap();
    }

    #[test]
    fn attr_type_mismatch() {
        assert!(matches!(
            check("self.n = true;"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn unknown_attr() {
        assert!(matches!(
            check("self.bogus = 1;"),
            Err(CoreError::Unresolved { .. })
        ));
    }

    #[test]
    fn var_rebind_must_match() {
        assert!(check("x = 1; x = 2;").is_ok());
        assert!(matches!(
            check("x = 1; x = true;"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn shadowing_event_param_rejected() {
        assert!(matches!(check("v = 1;"), Err(CoreError::Type { .. })));
    }

    #[test]
    fn condition_must_be_bool() {
        assert!(matches!(check("if (1) { }"), Err(CoreError::Type { .. })));
        assert!(matches!(
            check("while (\"x\") { }"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn event_arity_and_types() {
        assert!(matches!(
            check("gen Set() to self;"),
            Err(CoreError::Type { .. })
        ));
        assert!(matches!(
            check("gen Set(true) to self;"),
            Err(CoreError::Type { .. })
        ));
        assert!(matches!(
            check("gen done(\"x\") to ENV;"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn unknown_event_on_target_class() {
        assert!(matches!(
            check("l = create Lamp; gen Set(1) to l;"),
            Err(CoreError::Unresolved { .. })
        ));
    }

    #[test]
    fn navigation_checks_assoc_ends() {
        assert!(check("ls = self -> Lamp[R1];").is_ok());
        assert!(matches!(
            check("cs = self -> Counter[R1];"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn relate_checks_classes() {
        assert!(matches!(
            check("relate self to self across R1;"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(matches!(check("break;"), Err(CoreError::Type { .. })));
        assert!(check("while (true) { break; }").is_ok());
    }

    #[test]
    fn procedure_cannot_be_used_as_value() {
        assert!(matches!(
            check("x = ENV::info(\"hi\");"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn bridge_wrong_arg_type() {
        assert!(matches!(
            check("ENV::info(42);"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn foreach_needs_set() {
        assert!(matches!(
            check("foreach x in self { }"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn delay_must_be_int_and_instance_directed() {
        assert!(matches!(
            check("gen Set(1) to self after true;"),
            Err(CoreError::Type { .. })
        ));
        assert!(matches!(
            check("gen done(1) to ENV after 5;"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn selected_outside_where_rejected() {
        assert!(matches!(
            check("x = selected;"),
            Err(CoreError::Type { .. })
        ));
    }

    #[test]
    fn cancel_unknown_event_rejected() {
        assert!(matches!(
            check("cancel Bogus;"),
            Err(CoreError::Unresolved { .. })
        ));
    }

    #[test]
    fn accumulates_multiple_independent_errors() {
        let d = domain();
        let block = parse_block(
            "self.n = true;\n\
             self.bogus = 1;\n\
             gen Set() to self;\n\
             self.n = 1;",
        )
        .unwrap();
        let mut errs: Vec<(Pos, CoreError)> = Vec::new();
        check_block_into(
            &d,
            ClassId::new(0),
            &[("v".into(), DataType::Int)],
            &block,
            &mut |pos, e| errs.push((pos, e)),
        );
        assert_eq!(errs.len(), 3, "got: {errs:?}");
        assert!(matches!(errs[0].1, CoreError::Type { .. }));
        assert!(matches!(errs[1].1, CoreError::Unresolved { .. }));
        assert!(matches!(errs[2].1, CoreError::Type { .. }));
        // Each error carries its own statement's position.
        assert_eq!(errs[0].0.line, 1);
        assert_eq!(errs[1].0.line, 2);
        assert_eq!(errs[2].0.line, 3);
    }

    #[test]
    fn recovery_inside_and_after_control_flow() {
        // The `if` condition is ill-typed, yet errors inside the body and
        // after the whole statement are still found; the foreach header
        // failure skips only its own body.
        let d = domain();
        let block = parse_block(
            "if (1) { self.n = false; }\n\
             foreach x in self { x.on = 1; }\n\
             self.n = \"s\";",
        )
        .unwrap();
        let mut errs: Vec<(Pos, CoreError)> = Vec::new();
        check_block_into(&d, ClassId::new(0), &[], &block, &mut |pos, e| {
            errs.push((pos, e));
        });
        assert_eq!(errs.len(), 4, "got: {errs:?}");
    }

    #[test]
    fn mixed_numeric_arithmetic_rejected() {
        assert!(matches!(check("x = 1 + 2.0;"), Err(CoreError::Type { .. })));
        assert!(check("x = 1 + int(2.0);").is_ok());
        assert!(check("x = real(1) + 2.0;").is_ok());
    }
}
