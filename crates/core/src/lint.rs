//! Whole-model lints over the inter-machine signal graph.
//!
//! [`crate::validate`] checks each class in isolation; the lints here are
//! the *cross-machine* analyses the paper's execution semantics calls
//! for. The causality rule (§2) orders signals only between one
//! sender/receiver pair — so two *different* machines signalling the same
//! target are unordered ([`Code::SignalRace`]), and a cycle of machines
//! that re-generate on receipt can grow queues without bound
//! ([`Code::SignalCycle`]). Dead-model detection
//! ([`Code::DeadEvent`], [`Code::DeadTransition`],
//! [`Code::WriteOnlyAttribute`], [`Code::ConstantAttribute`]) flags
//! specification rot: elements the model declares but can never exercise,
//! which formal test cases run against the model (§2) would silently skip.
//!
//! All facts are gathered in one pass ([`ModelFacts::gather`]) using the
//! same class-inference over instance-valued expressions as the model
//! compiler's usage analysis: instance-typed values come only from
//! `self`, `create`/`select`/`foreach` bindings, navigation and
//! `any(...)`, so the inference is complete for parser-produced models.

use crate::action::{Block, Expr, GenTarget, LValue, Stmt};
use crate::diag::{Code, Diagnostic, Diagnostics, SourceMap};
use crate::effects;
use crate::error::Pos;
use crate::ids::{AttrId, ClassId, EventId, StateId};
use crate::model::{Domain, TransitionTarget};
use crate::value::UnOp;
use std::collections::{BTreeMap, BTreeSet};

pub use crate::effects::{ShardOffense, ShardReason};

/// One instance-directed signal emission found in a state's entry action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendFact {
    /// The class whose action emits the signal.
    pub sender: ClassId,
    /// The state whose entry action emits it.
    pub state: StateId,
    /// The inferred target class.
    pub target: ClassId,
    /// The target-class event generated.
    pub event: EventId,
    /// True for `gen ... after <delay>` (timer-paced).
    pub delayed: bool,
    /// Position of the `gen` statement.
    pub pos: Pos,
}

/// Cross-machine facts gathered from every state entry action.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelFacts {
    /// Every instance-directed send with an inferable target class.
    pub sends: Vec<SendFact>,
    /// First read position of each attribute, by `(class, attribute)`.
    pub attr_reads: BTreeMap<(ClassId, AttrId), Pos>,
    /// First write position of each attribute, by `(class, attribute)`.
    pub attr_writes: BTreeMap<(ClassId, AttrId), Pos>,
    /// Attributes written by each state's entry action, by
    /// `(class, state)` — the per-state write sets used for race
    /// order-sensitivity.
    pub state_writes: BTreeMap<(ClassId, StateId), BTreeSet<(ClassId, AttrId)>>,
    /// Attributes read by each state's entry action, by `(class, state)`
    /// — a write in one signal stream is order-sensitive against a read
    /// in the other even when the streams' write sets are disjoint.
    pub state_reads: BTreeMap<(ClassId, StateId), BTreeSet<(ClassId, AttrId)>>,
    /// Every `(target class, event)` pair any action generates.
    pub generated: BTreeSet<(ClassId, EventId)>,
}

impl ModelFacts {
    /// Walks every state entry action in the domain.
    pub fn gather(domain: &Domain) -> ModelFacts {
        let mut facts = ModelFacts::default();
        for (ci, class) in domain.classes.iter().enumerate() {
            let class_id = ClassId::new(ci as u32);
            let Some(machine) = &class.state_machine else {
                continue;
            };
            for (si, state) in machine.states.iter().enumerate() {
                let sid = StateId::new(si as u32);
                let mut w = Walker {
                    domain,
                    self_class: class_id,
                    state: sid,
                    env: BTreeMap::new(),
                    selected: None,
                    facts: &mut facts,
                };
                w.block(&state.action);
            }
        }
        facts
    }

    /// The union of attributes written by the states class `target`
    /// enters on receipt of `event`.
    fn event_write_set(
        &self,
        domain: &Domain,
        target: ClassId,
        event: EventId,
    ) -> BTreeSet<(ClassId, AttrId)> {
        self.event_access_set(domain, target, event, &self.state_writes)
    }

    /// The union of attributes read by the states class `target` enters
    /// on receipt of `event`.
    fn event_read_set(
        &self,
        domain: &Domain,
        target: ClassId,
        event: EventId,
    ) -> BTreeSet<(ClassId, AttrId)> {
        self.event_access_set(domain, target, event, &self.state_reads)
    }

    fn event_access_set(
        &self,
        domain: &Domain,
        target: ClassId,
        event: EventId,
        per_state: &BTreeMap<(ClassId, StateId), BTreeSet<(ClassId, AttrId)>>,
    ) -> BTreeSet<(ClassId, AttrId)> {
        let mut set = BTreeSet::new();
        if let Some(machine) = &domain.class(target).state_machine {
            for t in &machine.transitions {
                if t.event == event {
                    if let TransitionTarget::To(s) = t.target {
                        if let Some(ws) = per_state.get(&(target, s)) {
                            set.extend(ws.iter().copied());
                        }
                    }
                }
            }
        }
        set
    }
}

/// Per-action walker: tracks instance-typed bindings for class inference.
struct Walker<'a> {
    domain: &'a Domain,
    self_class: ClassId,
    state: StateId,
    env: BTreeMap<String, ClassId>,
    selected: Option<ClassId>,
    facts: &'a mut ModelFacts,
}

impl Walker<'_> {
    fn block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    fn infer(&self, expr: &Expr) -> Option<ClassId> {
        match expr {
            Expr::SelfRef => Some(self.self_class),
            Expr::Var(name) => self.env.get(name).copied(),
            Expr::Nav(_, class_name, _) => self.domain.class_id(class_name).ok(),
            Expr::Unary(UnOp::Any, inner) => self.infer(inner),
            Expr::Selected => self.selected,
            _ => None,
        }
    }

    /// Records attribute reads in an expression (recursively).
    fn reads(&mut self, expr: &Expr, pos: Pos) {
        match expr {
            Expr::Attr(base, name) => {
                if let Some(class) = self.infer(base) {
                    if let Some(attr) = self.domain.class(class).attr_id(name) {
                        self.facts.attr_reads.entry((class, attr)).or_insert(pos);
                        self.facts
                            .state_reads
                            .entry((self.self_class, self.state))
                            .or_default()
                            .insert((class, attr));
                    }
                }
                self.reads(base, pos);
            }
            Expr::Nav(base, _, _) => self.reads(base, pos),
            Expr::Unary(_, e) => self.reads(e, pos),
            Expr::Binary(_, a, b) => {
                self.reads(a, pos);
                self.reads(b, pos);
            }
            Expr::BridgeCall(_, _, args) => {
                for a in args {
                    self.reads(a, pos);
                }
            }
            Expr::Lit(_) | Expr::Var(_) | Expr::SelfRef | Expr::Selected | Expr::Param(_) => {}
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        let pos = stmt.pos();
        match stmt {
            Stmt::Assign { lhs, expr, .. } => {
                self.reads(expr, pos);
                match lhs {
                    LValue::Var(name) => {
                        if let Some(class) = self.infer(expr) {
                            self.env.insert(name.clone(), class);
                        }
                    }
                    LValue::Attr(base, attr) => {
                        self.reads(base, pos);
                        if let Some(class) = self.infer(base) {
                            if let Some(attr) = self.domain.class(class).attr_id(attr) {
                                self.facts.attr_writes.entry((class, attr)).or_insert(pos);
                                self.facts
                                    .state_writes
                                    .entry((self.self_class, self.state))
                                    .or_default()
                                    .insert((class, attr));
                            }
                        }
                    }
                }
            }
            Stmt::Create { var, class, .. } => {
                if let Ok(id) = self.domain.class_id(class) {
                    self.env.insert(var.clone(), id);
                }
            }
            Stmt::Delete { expr, .. } => self.reads(expr, pos),
            Stmt::SelectAny {
                var, class, filter, ..
            }
            | Stmt::SelectMany {
                var, class, filter, ..
            } => {
                if let Ok(id) = self.domain.class_id(class) {
                    if let Some(f) = filter {
                        let saved = self.selected.replace(id);
                        self.reads(f, pos);
                        self.selected = saved;
                    }
                    self.env.insert(var.clone(), id);
                } else if let Some(f) = filter {
                    self.reads(f, pos);
                }
            }
            Stmt::Relate { a, b, .. } | Stmt::Unrelate { a, b, .. } => {
                self.reads(a, pos);
                self.reads(b, pos);
            }
            Stmt::Generate {
                event,
                args,
                target,
                delay,
                ..
            } => {
                for a in args {
                    self.reads(a, pos);
                }
                if let Some(d) = delay {
                    self.reads(d, pos);
                }
                if let GenTarget::Inst(texpr) = target {
                    // A bare unbound variable resolves to an actor at run
                    // time; actor signals leave the domain and cannot race.
                    let is_actor_fallback = matches!(texpr, Expr::Var(name)
                        if !self.env.contains_key(name) && self.domain.actor_id(name).is_ok());
                    if !is_actor_fallback {
                        self.reads(texpr, pos);
                        if let Some(tclass) = self.infer(texpr) {
                            if let Some(ev) = self.domain.class(tclass).event_id(event) {
                                self.facts.generated.insert((tclass, ev));
                                self.facts.sends.push(SendFact {
                                    sender: self.self_class,
                                    state: self.state,
                                    target: tclass,
                                    event: ev,
                                    delayed: delay.is_some(),
                                    pos,
                                });
                            }
                        }
                    }
                }
            }
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (cond, body) in arms {
                    self.reads(cond, pos);
                    self.block(body);
                }
                if let Some(body) = otherwise {
                    self.block(body);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.reads(cond, pos);
                self.block(body);
            }
            Stmt::ForEach { var, set, body, .. } => {
                self.reads(set, pos);
                if let Some(id) = self.infer(set) {
                    self.env.insert(var.clone(), id);
                }
                self.block(body);
            }
            Stmt::ExprStmt { expr, .. } => self.reads(expr, pos),
            Stmt::Cancel { .. }
            | Stmt::Break { .. }
            | Stmt::Continue { .. }
            | Stmt::Return { .. } => {}
        }
    }
}

/// Runs every whole-model lint (`X0006`..`X0011`, `X0015`, `X0017`)
/// over the domain.
pub fn lint_domain(domain: &Domain, spans: &SourceMap, diags: &mut Diagnostics) {
    let facts = ModelFacts::gather(domain);
    let plan = effects::analyze(domain);
    lint_dead_events(domain, spans, diags);
    lint_dead_transitions(domain, &facts, spans, diags);
    lint_attr_usage(domain, &facts, spans, diags);
    lint_signal_races(domain, &facts, diags);
    lint_signal_cycles(domain, &facts, diags);
    lint_shard_safety(&plan, spans, diags);
    lint_cross_shard_races(domain, &plan, diags);
}

/// `X0006`: events no transition row consumes (a `CantHappen` row is a
/// declaration that the event must *not* arrive, so it does not count as
/// consumption; a passive class consumes nothing).
fn lint_dead_events(domain: &Domain, spans: &SourceMap, diags: &mut Diagnostics) {
    for class in &domain.classes {
        for (ei, ev) in class.events.iter().enumerate() {
            let eid = EventId::new(ei as u32);
            let consumed = class.state_machine.as_ref().is_some_and(|m| {
                m.transitions.iter().any(|t| {
                    t.event == eid
                        && matches!(t.target, TransitionTarget::To(_) | TransitionTarget::Ignore)
                })
            });
            if !consumed {
                let mut d = Diagnostic::new(
                    Code::DeadEvent,
                    spans.get(&SourceMap::event_key(&class.name, &ev.name)),
                    format!(
                        "event `{}.{}` is declared but no transition consumes it",
                        class.name, ev.name
                    ),
                )
                .with_element(format!("class {}", class.name));
                if class.state_machine.is_none() {
                    d = d.with_note(
                        "the class is passive (no state machine), so it can never receive signals"
                            .to_owned(),
                    );
                }
                diags.push(d);
            }
        }
    }
}

/// `X0007`: transitions whose trigger no action generates. Events with a
/// row out of the *initial* state are exempt: freshly created instances
/// sit in the initial state, so such events are the model's environment
/// entry points (injected by stimulus, not by actions).
fn lint_dead_transitions(
    domain: &Domain,
    facts: &ModelFacts,
    spans: &SourceMap,
    diags: &mut Diagnostics,
) {
    for (ci, class) in domain.classes.iter().enumerate() {
        let class_id = ClassId::new(ci as u32);
        let Some(machine) = &class.state_machine else {
            continue;
        };
        for (ei, ev) in class.events.iter().enumerate() {
            let eid = EventId::new(ei as u32);
            let consuming: Vec<_> = machine
                .transitions
                .iter()
                .filter(|t| {
                    t.event == eid
                        && matches!(t.target, TransitionTarget::To(_) | TransitionTarget::Ignore)
                })
                .collect();
            if consuming.is_empty() {
                continue; // X0006 already covers it
            }
            if facts.generated.contains(&(class_id, eid)) {
                continue;
            }
            let entry_point = consuming.iter().any(|t| t.from == machine.initial);
            if entry_point {
                continue;
            }
            let first = consuming[0];
            let from_name = &machine.states[first.from.index()].name;
            diags.push(
                Diagnostic::new(
                    Code::DeadTransition,
                    spans.get(&SourceMap::transition_key(&class.name, from_name, &ev.name)),
                    format!(
                        "transition(s) on `{}.{}` can never fire: no action generates the event",
                        class.name, ev.name
                    ),
                )
                .with_element(format!("class {}", class.name))
                .with_note(
                    "events with a transition out of the initial state are assumed to be \
                     environment-injected and are not flagged"
                        .to_owned(),
                ),
            );
        }
    }
}

/// `X0008`/`X0009`: attributes written but never read, and attributes
/// read but never written (every read yields the declared default).
fn lint_attr_usage(
    domain: &Domain,
    facts: &ModelFacts,
    spans: &SourceMap,
    diags: &mut Diagnostics,
) {
    for (ci, class) in domain.classes.iter().enumerate() {
        let class_id = ClassId::new(ci as u32);
        for (ai, attr) in class.attributes.iter().enumerate() {
            let key = (class_id, AttrId::new(ai as u32));
            let read = facts.attr_reads.contains_key(&key);
            let written = facts.attr_writes.contains_key(&key);
            let decl_pos = spans.get(&SourceMap::attr_key(&class.name, &attr.name));
            if written && !read {
                diags.push(
                    Diagnostic::new(
                        Code::WriteOnlyAttribute,
                        decl_pos,
                        format!(
                            "attribute `{}.{}` is written but never read",
                            class.name, attr.name
                        ),
                    )
                    .with_element(format!("class {}", class.name)),
                );
            } else if read && !written {
                diags.push(
                    Diagnostic::new(
                        Code::ConstantAttribute,
                        decl_pos,
                        format!(
                            "attribute `{}.{}` is read but never written: every read yields \
                             the default `{}`",
                            class.name, attr.name, attr.default
                        ),
                    )
                    .with_element(format!("class {}", class.name)),
                );
            }
        }
    }
}

/// `X0010`: two distinct sender classes signal the same target class with
/// order-sensitive events. The execution semantics orders signals only
/// between one sender/receiver pair, so the relative order of the two
/// streams is undefined. Two events are order-sensitive when they are the
/// *same* event (interleaving changes multiplicity-sensitive behaviour)
/// or when the states they enter write overlapping attribute sets.
fn lint_signal_races(domain: &Domain, facts: &ModelFacts, diags: &mut Diagnostics) {
    // (target, sender, event) → first send site, deduplicated.
    let mut sites: BTreeMap<(ClassId, ClassId, EventId), &SendFact> = BTreeMap::new();
    for f in &facts.sends {
        sites.entry((f.target, f.sender, f.event)).or_insert(f);
    }
    let mut reported: BTreeSet<(ClassId, ClassId, EventId, ClassId, EventId)> = BTreeSet::new();
    let entries: Vec<_> = sites.values().collect();
    for (i, a) in entries.iter().enumerate() {
        for b in entries.iter().skip(i + 1) {
            if a.target != b.target || a.sender == b.sender {
                continue;
            }
            let (first, second) = if (a.sender, a.event) <= (b.sender, b.event) {
                (a, b)
            } else {
                (b, a)
            };
            let same_event = first.event == second.event;
            type AttrKeys = Vec<(ClassId, AttrId)>;
            let (overlap, rw_overlap): (AttrKeys, AttrKeys) = if same_event {
                (Vec::new(), Vec::new())
            } else {
                let wa = facts.event_write_set(domain, first.target, first.event);
                let wb = facts.event_write_set(domain, second.target, second.event);
                let ra = facts.event_read_set(domain, first.target, first.event);
                let rb = facts.event_read_set(domain, second.target, second.event);
                // Write/write overlap is the classic lost-update
                // shape; a write in one stream against a read in the
                // other is just as order-sensitive (the read's value
                // depends on the interleaving), so it violates
                // confluence too.
                let ww: Vec<_> = wa.intersection(&wb).copied().collect();
                let mut wr: BTreeSet<(ClassId, AttrId)> = wa.intersection(&rb).copied().collect();
                wr.extend(ra.intersection(&wb).copied());
                (ww, wr.into_iter().collect())
            };
            if !same_event && overlap.is_empty() && rw_overlap.is_empty() {
                continue;
            }
            if !reported.insert((
                first.target,
                first.sender,
                first.event,
                second.sender,
                second.event,
            )) {
                continue;
            }
            let target = &domain.class(first.target).name;
            let s1 = &domain.class(first.sender).name;
            let s2 = &domain.class(second.sender).name;
            let e1 = &domain.class(first.target).events[first.event.index()].name;
            let e2 = &domain.class(second.target).events[second.event.index()].name;
            let attr_list = |set: &[(ClassId, AttrId)]| -> String {
                set.iter()
                    .map(|(c, a)| {
                        format!(
                            "{}.{}",
                            domain.class(*c).name,
                            domain.class(*c).attributes[a.index()].name
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let reason = if same_event {
                format!("both send the same event `{e1}`, so their interleaving is observable")
            } else if !overlap.is_empty() {
                format!(
                    "the states they enter write overlapping attribute(s): {}",
                    attr_list(&overlap)
                )
            } else {
                format!(
                    "one stream writes attribute(s) the other reads: {} — the read's \
                     value depends on the interleaving",
                    attr_list(&rw_overlap)
                )
            };
            diags.push(
                Diagnostic::new(
                    Code::SignalRace,
                    first.pos,
                    format!(
                        "signal race on class `{target}`: `{s1}` sends `{e1}` and `{s2}` \
                         sends `{e2}` with no mutual ordering"
                    ),
                )
                .with_element(format!("class {target}"))
                .with_note(reason)
                .with_note(format!(
                    "the other sender is `{s2}` at {}:{}; the causality rule orders signals \
                     only between one sender/receiver pair",
                    second.pos.line, second.pos.col
                )),
            );
        }
    }
}

/// `X0011`: cycles in the dispatch graph. Node `(class, event)`; edge to
/// `(target, event')` when receiving the event enters a state whose
/// action generates `event'` at the target. A cycle means every
/// participant re-generates on receipt: the signal population never
/// drains, so the scheduler livelocks or queues grow without bound.
fn lint_signal_cycles(domain: &Domain, facts: &ModelFacts, diags: &mut Diagnostics) {
    // Build edges: (class, event) → [(target, event, via send)].
    let mut edges: BTreeMap<(ClassId, EventId), Vec<&SendFact>> = BTreeMap::new();
    for (ci, class) in domain.classes.iter().enumerate() {
        let class_id = ClassId::new(ci as u32);
        let Some(machine) = &class.state_machine else {
            continue;
        };
        for t in &machine.transitions {
            let TransitionTarget::To(s) = t.target else {
                continue;
            };
            for f in &facts.sends {
                if f.sender == class_id && f.state == s {
                    edges.entry((class_id, t.event)).or_default().push(f);
                }
            }
        }
    }
    // Tarjan SCC over the node set.
    let nodes: Vec<(ClassId, EventId)> = {
        let mut set: BTreeSet<(ClassId, EventId)> = edges.keys().copied().collect();
        for outs in edges.values() {
            for f in outs {
                set.insert((f.target, f.event));
            }
        }
        set.into_iter().collect()
    };
    let index_of: BTreeMap<(ClassId, EventId), usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let sccs = tarjan(&nodes, &index_of, &edges);
    for scc in sccs {
        let cyclic = scc.len() > 1
            || edges
                .get(&nodes[scc[0]])
                .is_some_and(|outs| outs.iter().any(|f| (f.target, f.event) == nodes[scc[0]]));
        if !cyclic {
            continue;
        }
        let member_set: BTreeSet<usize> = scc.iter().copied().collect();
        let names: Vec<String> = scc
            .iter()
            .map(|&i| {
                let (c, e) = nodes[i];
                format!(
                    "{}.{}",
                    domain.class(c).name,
                    domain.class(c).events[e.index()].name
                )
            })
            .collect();
        // Anchor the diagnostic at one in-cycle send site.
        let mut anchor: Option<&SendFact> = None;
        let mut any_delayed = false;
        for &i in &scc {
            if let Some(outs) = edges.get(&nodes[i]) {
                for f in outs {
                    if index_of
                        .get(&(f.target, f.event))
                        .is_some_and(|j| member_set.contains(j))
                    {
                        anchor.get_or_insert(f);
                        any_delayed |= f.delayed;
                    }
                }
            }
        }
        let pos = anchor.map_or(Pos::UNKNOWN, |f| f.pos);
        let mut d = Diagnostic::new(
            Code::SignalCycle,
            pos,
            format!(
                "signal cycle: {} — every participant re-generates on receipt, so the \
                 signal population never drains",
                names.join(" -> ")
            ),
        )
        .with_element(format!("{} machine(s)", {
            let classes: BTreeSet<ClassId> = scc.iter().map(|&i| nodes[i].0).collect();
            classes.len()
        }));
        if any_delayed {
            d = d.with_note(
                "the cycle contains a delayed (`after`) signal: it is timer-paced, but still \
                 never terminates"
                    .to_owned(),
            );
        }
        diags.push(d);
    }
}

/// Iterative Tarjan strongly-connected components; returns SCCs in
/// deterministic (reverse topological) order of discovery.
fn tarjan(
    nodes: &[(ClassId, EventId)],
    index_of: &BTreeMap<(ClassId, EventId), usize>,
    edges: &BTreeMap<(ClassId, EventId), Vec<&SendFact>>,
) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: usize,
        lowlink: usize,
        on_stack: bool,
    }
    let n = nodes.len();
    let mut state: Vec<Option<NodeState>> = vec![None; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, iterator position over its successors).
    for start in 0..n {
        if state[start].is_some() {
            continue;
        }
        let succs = |v: usize| -> Vec<usize> {
            edges
                .get(&nodes[v])
                .map(|outs| {
                    outs.iter()
                        .filter_map(|f| index_of.get(&(f.target, f.event)).copied())
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut dfs: Vec<(usize, Vec<usize>, usize)> = vec![(start, succs(start), 0)];
        state[start] = Some(NodeState {
            index: next_index,
            lowlink: next_index,
            on_stack: true,
        });
        stack.push(start);
        next_index += 1;
        while let Some((v, vsuccs, i)) = dfs.last_mut() {
            if *i < vsuccs.len() {
                let w = vsuccs[*i];
                *i += 1;
                match state[w] {
                    None => {
                        state[w] = Some(NodeState {
                            index: next_index,
                            lowlink: next_index,
                            on_stack: true,
                        });
                        stack.push(w);
                        next_index += 1;
                        let ws = succs(w);
                        dfs.push((w, ws, 0));
                    }
                    Some(ws) if ws.on_stack => {
                        let v = *v;
                        let vl = state[v].unwrap().lowlink.min(ws.index);
                        state[v].as_mut().unwrap().lowlink = vl;
                    }
                    Some(_) => {}
                }
            } else {
                let (v, _, _) = dfs.pop().unwrap();
                let vs = state[v].unwrap();
                if let Some((parent, _, _)) = dfs.last() {
                    let pl = state[*parent].unwrap().lowlink.min(vs.lowlink);
                    state[*parent].as_mut().unwrap().lowlink = pl;
                }
                if vs.lowlink == vs.index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        state[w].as_mut().unwrap().on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

// ---------------------------------------------------------------------------
// Shard-safety analysis (X0015, X0017)
// ---------------------------------------------------------------------------

/// Finds every construct that blocks sharded execution, in model order,
/// at statement granularity (one entry per offending statement position
/// per distinct reason). Empty means the model shards without
/// restriction.
///
/// Since the effect analysis ([`crate::effects`]) replaced the syntactic
/// reject-list, this is a query against the whole-model admission plan:
/// read-only non-self access to never-written attributes, writes to
/// instances created in the same run-to-completion step, and navigation
/// confined to a single (runtime-colocated) association are *admitted*
/// and produce no offense. The sharded executor's static gate and the
/// `X0015` lint both call this.
pub fn shard_offenses(domain: &Domain) -> Vec<ShardOffense> {
    effects::analyze(domain).offenses
}

/// `X0015`: notes every statement that forces `--shards N` back to
/// sequential execution, anchored at the statement itself.
fn lint_shard_safety(plan: &effects::ShardPlan, spans: &SourceMap, diags: &mut Diagnostics) {
    for off in &plan.offenses {
        // Models parsed from `.xtuml` files carry file-absolute
        // statement positions; fall back to the state header span when
        // the statement has none (builder-assembled models).
        let pos = if off.pos == Pos::UNKNOWN {
            spans.get(&SourceMap::state_key(&off.class, &off.state))
        } else {
            off.pos
        };
        diags.push(
            Diagnostic::new(
                Code::ShardUnsafe,
                pos,
                format!(
                    "state action {} — sharded execution falls back to sequential",
                    off.reason.describe()
                ),
            )
            .with_element(format!("state {}.{}", off.class, off.state))
            .with_note(
                "actions that only touch `self` attributes and communicate by signals shard freely"
                    .to_owned(),
            ),
        );
    }
}

/// `X0017`: a genuine cross-shard write race — two actions access the
/// same written attribute through receiver shapes no admission rule
/// reconciles to one shard. Reported with the two-action witness path.
fn lint_cross_shard_races(domain: &Domain, plan: &effects::ShardPlan, diags: &mut Diagnostics) {
    for race in &plan.races {
        let attr = format!(
            "{}.{}",
            domain.class(race.class).name,
            domain.class(race.class).attributes[race.attr.index()].name
        );
        let site = |s: &effects::Site| {
            let c = domain.class(s.class);
            let state = c
                .state_machine
                .as_ref()
                .map(|m| m.states[s.state.index()].name.as_str())
                .unwrap_or("?");
            format!(
                "{}.{} {} it at {}",
                c.name,
                state,
                if s.write { "writes" } else { "reads" },
                s.pos
            )
        };
        diags.push(
            Diagnostic::new(
                Code::CrossShardRace,
                race.a.pos,
                format!("cross-shard race on attribute `{attr}`"),
            )
            .with_element(format!("attr {attr}"))
            .with_note(format!("witness: {}; {}", site(&race.a), site(&race.b)))
            .with_note(
                "the two sites reach the attribute through different receiver shapes, so no \
                 shard placement makes both accesses local"
                    .to_owned(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DomainBuilder;
    use crate::model::Multiplicity;
    use crate::value::DataType;

    fn lint(domain: &Domain) -> Diagnostics {
        let mut diags = Diagnostics::new();
        lint_domain(domain, &SourceMap::new(), &mut diags);
        diags
    }

    fn codes(diags: &Diagnostics) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    /// Two distinct senders, same event → race regardless of write sets.
    #[test]
    fn same_event_from_two_senders_races() {
        let mut b = DomainBuilder::new("d");
        b.class("T")
            .event("Hit", &[])
            .state("S", "")
            .initial("S")
            .transition("S", "Hit", "S");
        b.class("A")
            .event("Go", &[])
            .state("I", "")
            .state("W", "x = any(self -> T[R1]); gen Hit() to x;")
            .initial("I")
            .transition("I", "Go", "W");
        b.class("B")
            .event("Go", &[])
            .state("I", "")
            .state("W", "x = any(self -> T[R2]); gen Hit() to x;")
            .initial("I")
            .transition("I", "Go", "W");
        b.association("R1", "A", Multiplicity::One, "T", Multiplicity::One);
        b.association("R2", "B", Multiplicity::One, "T", Multiplicity::One);
        let d = b.build().unwrap();
        let diags = lint(&d);
        assert!(codes(&diags).contains(&Code::SignalRace), "{diags:?}");
    }

    /// Distinct events whose entered states write disjoint attributes do
    /// not race; overlapping write sets do.
    #[test]
    fn distinct_events_race_only_on_overlapping_writes() {
        let build = |overlap: bool| {
            let mut b = DomainBuilder::new("d");
            let quiet_action = if overlap {
                "self.n = 0;"
            } else {
                "self.m = 0;"
            };
            b.class("T")
                .attr("n", DataType::Int)
                .attr("m", DataType::Int)
                .event("Bump", &[])
                .event("Clear", &[])
                .state("Idle", "x = self.n + self.m;")
                .state("Up", "self.n = self.n + 1;")
                .state("Down", quiet_action)
                .initial("Idle")
                .transition("Idle", "Bump", "Up")
                .transition("Up", "Bump", "Up")
                .transition("Idle", "Clear", "Down")
                .transition("Up", "Clear", "Down")
                .transition("Down", "Bump", "Up");
            b.class("A")
                .event("Go", &[])
                .state("I", "")
                .state("W", "x = any(self -> T[R1]); gen Bump() to x;")
                .initial("I")
                .transition("I", "Go", "W");
            b.class("B")
                .event("Go", &[])
                .state("I", "")
                .state("W", "x = any(self -> T[R2]); gen Clear() to x;")
                .initial("I")
                .transition("I", "Go", "W");
            b.association("R1", "A", Multiplicity::One, "T", Multiplicity::One);
            b.association("R2", "B", Multiplicity::One, "T", Multiplicity::One);
            b.build().unwrap()
        };
        let racy = lint(&build(true));
        assert!(codes(&racy).contains(&Code::SignalRace), "{racy:?}");
        let clean = lint(&build(false));
        assert!(!codes(&clean).contains(&Code::SignalRace), "{clean:?}");
    }

    #[test]
    fn dead_event_on_active_and_passive_classes() {
        let mut b = DomainBuilder::new("d");
        b.class("C")
            .event("Used", &[])
            .event("Unused", &[])
            .state("S", "")
            .initial("S")
            .transition("S", "Used", "S");
        b.class("P").event("Ghost", &[]); // passive
        let d = b.build().unwrap();
        let diags = lint(&d);
        let dead: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == Code::DeadEvent).collect();
        assert_eq!(dead.len(), 2, "{diags:?}");
        assert!(dead.iter().any(|d| d.message.contains("C.Unused")));
        assert!(dead.iter().any(|d| d.message.contains("P.Ghost")));
    }

    #[test]
    fn dead_transition_flagged_unless_initial_entry_point() {
        // `Internal` is consumed only deep in the machine and never
        // generated → dead. `Kick` is consumed from the initial state →
        // exempt (environment entry point), even though never generated.
        let mut b = DomainBuilder::new("d");
        b.class("C")
            .event("Kick", &[])
            .event("Internal", &[])
            .state("Start", "")
            .state("Mid", "")
            .state("End", "")
            .initial("Start")
            .transition("Start", "Kick", "Mid")
            .transition("Mid", "Internal", "End");
        let d = b.build().unwrap();
        let diags = lint(&d);
        let dead: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == Code::DeadTransition)
            .collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("C.Internal"));
    }

    #[test]
    fn generated_event_is_not_a_dead_transition() {
        let mut b = DomainBuilder::new("d");
        b.class("C")
            .event("Kick", &[])
            .event("Step", &[])
            .state("Start", "")
            .state("Mid", "gen Step() to self;")
            .state("End", "")
            .initial("Start")
            .transition("Start", "Kick", "Mid")
            .transition("Mid", "Step", "End");
        let d = b.build().unwrap();
        let diags = lint(&d);
        assert!(!codes(&diags).contains(&Code::DeadTransition), "{diags:?}");
    }

    #[test]
    fn attr_usage_lints() {
        let mut b = DomainBuilder::new("d");
        b.class("C")
            .attr("hits", DataType::Int) // written, never read
            .attr("limit", DataType::Int) // read, never written
            .attr("both", DataType::Int) // read and written
            .event("E", &[])
            .state("S", "")
            .state(
                "T",
                "self.hits = 1; x = self.limit; self.both = self.both + 1;",
            )
            .initial("S")
            .transition("S", "E", "T");
        let d = b.build().unwrap();
        let diags = lint(&d);
        let write_only: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == Code::WriteOnlyAttribute)
            .collect();
        let constant: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == Code::ConstantAttribute)
            .collect();
        assert_eq!(write_only.len(), 1, "{diags:?}");
        assert!(write_only[0].message.contains("C.hits"));
        assert_eq!(constant.len(), 1, "{diags:?}");
        assert!(constant[0].message.contains("C.limit"));
    }

    #[test]
    fn ping_pong_cycle_detected() {
        let mut b = DomainBuilder::new("d");
        b.class("Ping")
            .event("Serve", &[])
            .state("Idle", "")
            .state("Serving", "x = any(self -> Pong[R1]); gen Return() to x;")
            .initial("Idle")
            .transition("Idle", "Serve", "Serving")
            .transition("Serving", "Serve", "Serving");
        b.class("Pong")
            .event("Return", &[])
            .state("Waiting", "")
            .state("Returning", "y = any(self -> Ping[R1]); gen Serve() to y;")
            .initial("Waiting")
            .transition("Waiting", "Return", "Returning")
            .transition("Returning", "Return", "Returning");
        b.association("R1", "Ping", Multiplicity::One, "Pong", Multiplicity::One);
        let d = b.build().unwrap();
        let diags = lint(&d);
        let cycles: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == Code::SignalCycle)
            .collect();
        assert_eq!(cycles.len(), 1, "{diags:?}");
        assert!(cycles[0].message.contains("Ping.Serve"));
        assert!(cycles[0].message.contains("Pong.Return"));
    }

    #[test]
    fn self_loop_cycle_detected_and_noted_when_delayed() {
        let mut b = DomainBuilder::new("d");
        b.class("C")
            .event("Tick", &[])
            .state("Idle", "")
            .state("Running", "gen Tick() to self after 10;")
            .initial("Idle")
            .transition("Idle", "Tick", "Running")
            .transition("Running", "Tick", "Running");
        let d = b.build().unwrap();
        let diags = lint(&d);
        let cycles: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == Code::SignalCycle)
            .collect();
        assert_eq!(cycles.len(), 1, "{diags:?}");
        assert!(cycles[0].notes.iter().any(|n| n.contains("timer-paced")));
    }

    /// A request/response pair is NOT a cycle: the responder's reply event
    /// does not re-generate the request.
    #[test]
    fn request_response_is_not_a_cycle() {
        let mut b = DomainBuilder::new("d");
        b.class("Client")
            .event("Go", &[])
            .event("Reply", &[])
            .state("Idle", "")
            .state("Asking", "x = any(self -> Server[R1]); gen Ask() to x;")
            .state("Done", "")
            .initial("Idle")
            .transition("Idle", "Go", "Asking")
            .transition("Asking", "Reply", "Done");
        b.class("Server")
            .event("Ask", &[])
            .state("Waiting", "")
            .state(
                "Answering",
                "y = any(self -> Client[R1]); gen Reply() to y;",
            )
            .initial("Waiting")
            .transition("Waiting", "Ask", "Answering")
            .transition("Answering", "Ask", "Answering");
        b.association(
            "R1",
            "Client",
            Multiplicity::One,
            "Server",
            Multiplicity::One,
        );
        let d = b.build().unwrap();
        let diags = lint(&d);
        assert!(!codes(&diags).contains(&Code::SignalCycle), "{diags:?}");
    }
}
