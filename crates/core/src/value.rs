//! The value system of the action language.
//!
//! Executable UML deliberately has a tiny set of data types — the paper's
//! whole point is a *streamlined* subset. We provide booleans, 64-bit
//! integers, reals, strings, instance references and instance sets. Instance
//! references are typed by class and may be *empty* (the result of a
//! `select any` that found nothing), mirroring OAL semantics.

use crate::error::{CoreError, Result};
use crate::ids::{ClassId, InstId};
use std::fmt;

/// Static type of an action-language expression or attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Real,
    /// UTF-8 string.
    Str,
    /// Reference to an instance of the given class (possibly empty).
    Inst(ClassId),
    /// A set of instances of the given class.
    Set(ClassId),
}

impl DataType {
    /// True if the type is numeric (`Int` or `Real`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Real)
    }

    /// The class a reference or set type points at, if any.
    pub fn class(self) -> Option<ClassId> {
        match self {
            DataType::Inst(c) | DataType::Set(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Real => write!(f, "real"),
            DataType::Str => write!(f, "string"),
            DataType::Inst(c) => write!(f, "inst<{c}>"),
            DataType::Set(c) => write!(f, "set<{c}>"),
        }
    }
}

/// A runtime value in the action language.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Real value.
    Real(f64),
    /// String value.
    Str(String),
    /// Instance reference; `None` is the *empty* reference.
    Inst(ClassId, Option<InstId>),
    /// Ordered set of instances (creation-order, duplicates removed).
    Set(ClassId, Vec<InstId>),
}

impl Value {
    /// The static type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Real(_) => DataType::Real,
            Value::Str(_) => DataType::Str,
            Value::Inst(c, _) => DataType::Inst(*c),
            Value::Set(c, _) => DataType::Set(*c),
        }
    }

    /// Default value for a type: `false`, `0`, `0.0`, `""`, empty ref,
    /// empty set.
    pub fn default_for(ty: DataType) -> Value {
        match ty {
            DataType::Bool => Value::Bool(false),
            DataType::Int => Value::Int(0),
            DataType::Real => Value::Real(0.0),
            DataType::Str => Value::Str(String::new()),
            DataType::Inst(c) => Value::Inst(c, None),
            DataType::Set(c) => Value::Set(c, Vec::new()),
        }
    }

    /// Extracts a boolean or reports a runtime type error.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(CoreError::runtime(format!(
                "expected bool, got {}",
                other.data_type()
            ))),
        }
    }

    /// Extracts an integer or reports a runtime type error.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(CoreError::runtime(format!(
                "expected int, got {}",
                other.data_type()
            ))),
        }
    }

    /// Extracts a real or reports a runtime type error.
    pub fn as_real(&self) -> Result<f64> {
        match self {
            Value::Real(r) => Ok(*r),
            other => Err(CoreError::runtime(format!(
                "expected real, got {}",
                other.data_type()
            ))),
        }
    }

    /// Extracts a string slice or reports a runtime type error.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(CoreError::runtime(format!(
                "expected string, got {}",
                other.data_type()
            ))),
        }
    }

    /// Extracts a non-empty instance reference, or reports a runtime error
    /// for non-references *and* for the empty reference.
    pub fn as_inst(&self) -> Result<InstId> {
        match self {
            Value::Inst(_, Some(i)) => Ok(*i),
            Value::Inst(c, None) => Err(CoreError::runtime(format!(
                "empty instance reference of class {c}"
            ))),
            other => Err(CoreError::runtime(format!(
                "expected instance reference, got {}",
                other.data_type()
            ))),
        }
    }

    /// True if this is an empty reference or an empty set.
    ///
    /// Non-reference values are never "empty".
    pub fn is_empty_ref(&self) -> bool {
        matches!(self, Value::Inst(_, None)) || matches!(self, Value::Set(_, v) if v.is_empty())
    }

    /// Cardinality of a set (or 0/1 for an instance reference).
    pub fn cardinality(&self) -> Result<i64> {
        match self {
            Value::Set(_, v) => Ok(v.len() as i64),
            Value::Inst(_, r) => Ok(i64::from(r.is_some())),
            other => Err(CoreError::runtime(format!(
                "cardinality needs a set or reference, got {}",
                other.data_type()
            ))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Inst(c, Some(i)) => write!(f, "{c}:{i}"),
            Value::Inst(c, None) => write!(f, "{c}:<empty>"),
            Value::Set(c, v) => {
                write!(f, "{c}:{{")?;
                for (k, i) in v.iter().enumerate() {
                    if k > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{i}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Binary operators of the action language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` — numeric addition or string concatenation.
    Add,
    /// `-` — numeric subtraction.
    Sub,
    /// `*` — numeric multiplication.
    Mul,
    /// `/` — numeric division (integer division traps on zero).
    Div,
    /// `%` — integer remainder (traps on zero).
    Rem,
    /// `==` — structural equality.
    Eq,
    /// `!=` — structural inequality.
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` — logical conjunction (both sides evaluated).
    And,
    /// `or` — logical disjunction (both sides evaluated).
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        write!(f, "{s}")
    }
}

/// Unary operators of the action language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-` — numeric negation.
    Neg,
    /// `not` — boolean negation.
    Not,
    /// `cardinality` — element count of a set (0/1 for a reference).
    Cardinality,
    /// `empty` — true for an empty reference/set.
    Empty,
    /// `not_empty` — false for an empty reference/set.
    NotEmpty,
    /// `any` — pick the deterministic first element of a set.
    Any,
    /// `int` — cast real→int (truncating) or parse-free int identity.
    ToInt,
    /// `real` — cast int→real or real identity.
    ToReal,
    /// `string` — render any scalar as a string.
    ToStr,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "not",
            UnOp::Cardinality => "cardinality",
            UnOp::Empty => "empty",
            UnOp::NotEmpty => "not_empty",
            UnOp::Any => "any",
            UnOp::ToInt => "int",
            UnOp::ToReal => "real",
            UnOp::ToStr => "string",
        };
        write!(f, "{s}")
    }
}

/// Applies a binary operator to two runtime values.
///
/// # Errors
///
/// Returns [`CoreError::Runtime`] on operand type mismatch, division or
/// remainder by zero.
pub fn apply_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    use BinOp::*;
    use Value::*;
    let err = || {
        Err(CoreError::runtime(format!(
            "operator `{op}` not defined for {} and {}",
            a.data_type(),
            b.data_type()
        )))
    };
    match op {
        Add => match (a, b) {
            (Int(x), Int(y)) => Ok(Int(x.wrapping_add(*y))),
            (Real(x), Real(y)) => Ok(Real(x + y)),
            (Str(x), Str(y)) => Ok(Str(format!("{x}{y}"))),
            _ => err(),
        },
        Sub => match (a, b) {
            (Int(x), Int(y)) => Ok(Int(x.wrapping_sub(*y))),
            (Real(x), Real(y)) => Ok(Real(x - y)),
            _ => err(),
        },
        Mul => match (a, b) {
            (Int(x), Int(y)) => Ok(Int(x.wrapping_mul(*y))),
            (Real(x), Real(y)) => Ok(Real(x * y)),
            _ => err(),
        },
        Div => match (a, b) {
            (Int(_), Int(0)) => Err(CoreError::runtime("integer division by zero")),
            (Int(x), Int(y)) => Ok(Int(x.wrapping_div(*y))),
            (Real(x), Real(y)) => Ok(Real(x / y)),
            _ => err(),
        },
        Rem => match (a, b) {
            (Int(_), Int(0)) => Err(CoreError::runtime("integer remainder by zero")),
            (Int(x), Int(y)) => Ok(Int(x.wrapping_rem(*y))),
            _ => err(),
        },
        Eq => value_eq(a, b).map(Bool),
        Ne => value_eq(a, b).map(|e| Bool(!e)),
        Lt | Le | Gt | Ge => {
            let ord = match (a, b) {
                (Int(x), Int(y)) => x.partial_cmp(y),
                (Real(x), Real(y)) => x.partial_cmp(y),
                (Str(x), Str(y)) => x.partial_cmp(y),
                _ => return err(),
            };
            let Some(ord) = ord else {
                return Err(CoreError::runtime("NaN is not ordered"));
            };
            let r = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Bool(r))
        }
        And => Ok(Bool(a.as_bool()? && b.as_bool()?)),
        Or => Ok(Bool(a.as_bool()? || b.as_bool()?)),
    }
}

/// Structural equality between values of the same type.
fn value_eq(a: &Value, b: &Value) -> Result<bool> {
    use Value::*;
    match (a, b) {
        (Bool(x), Bool(y)) => Ok(x == y),
        (Int(x), Int(y)) => Ok(x == y),
        (Real(x), Real(y)) => Ok(x == y),
        (Str(x), Str(y)) => Ok(x == y),
        (Inst(_, x), Inst(_, y)) => Ok(x == y),
        (Set(_, x), Set(_, y)) => Ok(x == y),
        _ => Err(CoreError::runtime(format!(
            "cannot compare {} with {}",
            a.data_type(),
            b.data_type()
        ))),
    }
}

/// Applies a unary operator to a runtime value.
///
/// # Errors
///
/// Returns [`CoreError::Runtime`] on operand type mismatch, or for `any`
/// applied to an empty set.
pub fn apply_unop(op: UnOp, v: &Value) -> Result<Value> {
    use UnOp::*;
    match op {
        Neg => match v {
            Value::Int(x) => Ok(Value::Int(x.wrapping_neg())),
            Value::Real(x) => Ok(Value::Real(-x)),
            other => Err(CoreError::runtime(format!(
                "cannot negate {}",
                other.data_type()
            ))),
        },
        Not => Ok(Value::Bool(!v.as_bool()?)),
        Cardinality => Ok(Value::Int(v.cardinality()?)),
        Empty => {
            v.cardinality()?; // type check: must be ref or set
            Ok(Value::Bool(v.is_empty_ref()))
        }
        NotEmpty => {
            v.cardinality()?;
            Ok(Value::Bool(!v.is_empty_ref()))
        }
        Any => match v {
            Value::Set(c, items) => items.first().copied().map_or_else(
                || {
                    Err(CoreError::runtime(format!(
                        "`any` applied to empty {c} set"
                    )))
                },
                |i| Ok(Value::Inst(*c, Some(i))),
            ),
            Value::Inst(c, Some(i)) => Ok(Value::Inst(*c, Some(*i))),
            other => Err(CoreError::runtime(format!(
                "`any` needs a set, got {}",
                other.data_type()
            ))),
        },
        ToInt => match v {
            Value::Int(x) => Ok(Value::Int(*x)),
            Value::Real(x) => Ok(Value::Int(*x as i64)),
            Value::Bool(b) => Ok(Value::Int(i64::from(*b))),
            other => Err(CoreError::runtime(format!(
                "cannot cast {} to int",
                other.data_type()
            ))),
        },
        ToReal => match v {
            Value::Int(x) => Ok(Value::Real(*x as f64)),
            Value::Real(x) => Ok(Value::Real(*x)),
            other => Err(CoreError::runtime(format!(
                "cannot cast {} to real",
                other.data_type()
            ))),
        },
        ToStr => match v {
            Value::Str(s) => Ok(Value::Str(s.clone())),
            Value::Int(x) => Ok(Value::Str(x.to_string())),
            Value::Real(x) => Ok(Value::Str(x.to_string())),
            Value::Bool(b) => Ok(Value::Str(b.to_string())),
            other => Err(CoreError::runtime(format!(
                "cannot cast {} to string",
                other.data_type()
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(a: i64, b: i64) -> (Value, Value) {
        (Value::Int(a), Value::Int(b))
    }

    #[test]
    fn arithmetic() {
        let (a, b) = ints(7, 3);
        assert_eq!(apply_binop(BinOp::Add, &a, &b).unwrap(), Value::Int(10));
        assert_eq!(apply_binop(BinOp::Sub, &a, &b).unwrap(), Value::Int(4));
        assert_eq!(apply_binop(BinOp::Mul, &a, &b).unwrap(), Value::Int(21));
        assert_eq!(apply_binop(BinOp::Div, &a, &b).unwrap(), Value::Int(2));
        assert_eq!(apply_binop(BinOp::Rem, &a, &b).unwrap(), Value::Int(1));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let (a, z) = ints(1, 0);
        assert!(apply_binop(BinOp::Div, &a, &z).is_err());
        assert!(apply_binop(BinOp::Rem, &a, &z).is_err());
    }

    #[test]
    fn string_concat_and_compare() {
        let a = Value::from("ab");
        let b = Value::from("cd");
        assert_eq!(
            apply_binop(BinOp::Add, &a, &b).unwrap(),
            Value::from("abcd")
        );
        assert_eq!(apply_binop(BinOp::Lt, &a, &b).unwrap(), Value::Bool(true));
    }

    #[test]
    fn mixed_numeric_types_are_rejected() {
        assert!(apply_binop(BinOp::Add, &Value::Int(1), &Value::Real(2.0)).is_err());
    }

    #[test]
    fn comparisons() {
        let (a, b) = ints(2, 5);
        for (op, want) in [
            (BinOp::Lt, true),
            (BinOp::Le, true),
            (BinOp::Gt, false),
            (BinOp::Ge, false),
            (BinOp::Eq, false),
            (BinOp::Ne, true),
        ] {
            assert_eq!(apply_binop(op, &a, &b).unwrap(), Value::Bool(want));
        }
    }

    #[test]
    fn logic_ops_require_bools() {
        assert_eq!(
            apply_binop(BinOp::And, &Value::Bool(true), &Value::Bool(false)).unwrap(),
            Value::Bool(false)
        );
        assert!(apply_binop(BinOp::And, &Value::Int(1), &Value::Bool(true)).is_err());
    }

    #[test]
    fn instance_equality_ignores_which_side_is_empty() {
        let c = ClassId::new(0);
        let e1 = Value::Inst(c, None);
        let e2 = Value::Inst(c, None);
        let i1 = Value::Inst(c, Some(InstId::new(4)));
        assert_eq!(apply_binop(BinOp::Eq, &e1, &e2).unwrap(), Value::Bool(true));
        assert_eq!(
            apply_binop(BinOp::Eq, &e1, &i1).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn unary_ops() {
        assert_eq!(
            apply_unop(UnOp::Neg, &Value::Int(5)).unwrap(),
            Value::Int(-5)
        );
        assert_eq!(
            apply_unop(UnOp::Not, &Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            apply_unop(UnOp::ToReal, &Value::Int(2)).unwrap(),
            Value::Real(2.0)
        );
        assert_eq!(
            apply_unop(UnOp::ToInt, &Value::Real(2.9)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            apply_unop(UnOp::ToStr, &Value::Int(42)).unwrap(),
            Value::from("42")
        );
    }

    #[test]
    fn set_ops() {
        let c = ClassId::new(1);
        let s = Value::Set(c, vec![InstId::new(3), InstId::new(9)]);
        assert_eq!(apply_unop(UnOp::Cardinality, &s).unwrap(), Value::Int(2));
        assert_eq!(apply_unop(UnOp::Empty, &s).unwrap(), Value::Bool(false));
        assert_eq!(
            apply_unop(UnOp::Any, &s).unwrap(),
            Value::Inst(c, Some(InstId::new(3)))
        );
        let empty = Value::Set(c, vec![]);
        assert!(apply_unop(UnOp::Any, &empty).is_err());
        assert_eq!(apply_unop(UnOp::Empty, &empty).unwrap(), Value::Bool(true));
    }

    #[test]
    fn empty_on_scalar_is_type_error() {
        assert!(apply_unop(UnOp::Empty, &Value::Int(3)).is_err());
    }

    #[test]
    fn default_values() {
        assert_eq!(Value::default_for(DataType::Int), Value::Int(0));
        assert!(Value::default_for(DataType::Inst(ClassId::new(2))).is_empty_ref());
    }

    #[test]
    fn display_round_trips_visually() {
        let c = ClassId::new(0);
        assert_eq!(Value::Inst(c, None).to_string(), "C0:<empty>");
        assert_eq!(Value::Set(c, vec![InstId::new(1)]).to_string(), "C0:{I1}");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        let max = Value::Int(i64::MAX);
        let one = Value::Int(1);
        assert_eq!(
            apply_binop(BinOp::Add, &max, &one).unwrap(),
            Value::Int(i64::MIN)
        );
    }
}
