//! The Executable UML metamodel.
//!
//! A [`Domain`] is a self-contained subject matter: classes, associations
//! between them, and the external [`Actor`]s (terminators) on the domain
//! boundary. Classes carry [`StateMachine`]s whose states hold entry
//! [`Block`]s of actions; state machines communicate only by signals
//! ([`EventDecl`]). This is the paper's §2 — the complete modeling language,
//! with *nothing* presuming a hardware or software implementation.

use crate::action::Block;
use crate::error::{CoreError, Result};
use crate::ids::{ActorId, AssocId, AttrId, ClassId, EventId, StateId};
use crate::value::{DataType, Value};
use std::collections::BTreeMap;

/// An attribute of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name, unique within the class.
    pub name: String,
    /// Static type.
    pub ty: DataType,
    /// Initial value for newly created instances.
    pub default: Value,
}

/// A signal (event) declaration, carried by a class or an actor.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDecl {
    /// Event name, unique within its owner.
    pub name: String,
    /// Typed, positional parameters.
    pub params: Vec<(String, DataType)>,
}

/// A bridge-function declaration on an actor (a synchronous service the
/// domain may call, e.g. `LOG::info`).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name, unique within the actor.
    pub name: String,
    /// Typed, positional parameters.
    pub params: Vec<(String, DataType)>,
    /// Return type; `None` for procedures.
    pub ret: Option<DataType>,
}

/// A state of a state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// State name, unique within the machine.
    pub name: String,
    /// Entry action block, executed to completion on entry.
    pub action: Block,
}

/// What happens when an event arrives in a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionTarget {
    /// Transition to the given state and execute its entry actions.
    To(StateId),
    /// Consume the event silently (explicitly declared "ignore").
    Ignore,
    /// Specification error: this event must never arrive here. This is the
    /// implicit default for undeclared (state, event) pairs.
    CantHappen,
}

/// One row of the state-transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Triggering event.
    pub event: EventId,
    /// Effect.
    pub target: TransitionTarget,
}

/// A Moore-style state machine: actions live on states, transitions are
/// `(state, event) -> state` rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateMachine {
    /// States in declaration order.
    pub states: Vec<State>,
    /// The initial state entered at instance creation. The initial state's
    /// entry action is **not** executed at creation (xtUML creation
    /// semantics: creation places the instance in the state silently).
    pub initial: StateId,
    /// Transition rows.
    pub transitions: Vec<Transition>,
    /// Dense dispatch table filled in by [`StateMachine::index`].
    pub(crate) table: BTreeMap<(StateId, EventId), TransitionTarget>,
}

impl StateMachine {
    /// (Re)builds the dispatch table from `transitions`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Duplicate`] if two rows share a
    /// `(state, event)` pair.
    pub fn index(&mut self) -> Result<()> {
        self.table.clear();
        for t in &self.transitions {
            if self.table.insert((t.from, t.event), t.target).is_some() {
                return Err(CoreError::Duplicate {
                    kind: "transition",
                    name: format!("({}, {})", t.from, t.event),
                });
            }
        }
        Ok(())
    }

    /// Looks up the effect of `event` arriving in `state`; undeclared pairs
    /// are [`TransitionTarget::CantHappen`].
    pub fn dispatch(&self, state: StateId, event: EventId) -> TransitionTarget {
        self.table
            .get(&(state, event))
            .copied()
            .unwrap_or(TransitionTarget::CantHappen)
    }

    /// Finds a state id by name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId::new(i as u32))
    }

    /// The state with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids are only minted by builders).
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }
}

/// A class: attributes, signal declarations, and an optional state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Class {
    /// Class name, unique within the domain.
    pub name: String,
    /// Attributes in declaration order.
    pub attributes: Vec<Attribute>,
    /// Signals this class's instances can receive.
    pub events: Vec<EventDecl>,
    /// The lifecycle; `None` for passive (data-only) classes.
    pub state_machine: Option<StateMachine>,
}

impl Class {
    /// Finds an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId::new(i as u32))
    }

    /// Finds an event id by name.
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.events
            .iter()
            .position(|e| e.name == name)
            .map(|i| EventId::new(i as u32))
    }

    /// The event declaration with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn event(&self, id: EventId) -> &EventDecl {
        &self.events[id.index()]
    }

    /// The attribute declaration with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.index()]
    }
}

/// Multiplicity of one end of an association.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Multiplicity {
    /// Exactly one (unconditional).
    One,
    /// Zero or one (conditional).
    ZeroOne,
    /// Zero or more.
    Many,
}

impl Multiplicity {
    /// True if more than one link is allowed at this end.
    pub fn is_many(self) -> bool {
        matches!(self, Multiplicity::Many)
    }
}

/// A binary association between two classes, named `R<k>` in
/// Shlaer-Mellor style.
#[derive(Debug, Clone, PartialEq)]
pub struct Association {
    /// Association name, e.g. `R1`, unique within the domain.
    pub name: String,
    /// One participating class (the "from" side, declaration order only —
    /// associations are navigable in both directions).
    pub from: ClassId,
    /// The other participating class.
    pub to: ClassId,
    /// Multiplicity at the `from` end (how many `from`-instances one
    /// `to`-instance may be linked to).
    pub from_mult: Multiplicity,
    /// Multiplicity at the `to` end.
    pub to_mult: Multiplicity,
}

/// An external entity on the domain boundary (a *terminator*): something
/// the domain talks to but does not model — the environment, a legacy
/// component, the user.
///
/// Signals generated **to** an actor are the domain's observable outputs;
/// bridge functions are synchronous services the actor provides.
#[derive(Debug, Clone, PartialEq)]
pub struct Actor {
    /// Actor name, unique within the domain (conventionally upper-case).
    pub name: String,
    /// Signals the domain may send to this actor.
    pub events: Vec<EventDecl>,
    /// Synchronous functions the domain may call on this actor.
    pub funcs: Vec<FuncDecl>,
}

impl Actor {
    /// Finds an event id by name.
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.events
            .iter()
            .position(|e| e.name == name)
            .map(|i| EventId::new(i as u32))
    }

    /// Finds a function declaration by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// A complete Executable UML domain model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Domain {
    /// Domain name.
    pub name: String,
    /// Classes; index = [`ClassId`].
    pub classes: Vec<Class>,
    /// Associations; index = [`AssocId`].
    pub associations: Vec<Association>,
    /// External actors; index = [`ActorId`].
    pub actors: Vec<Actor>,
    class_names: BTreeMap<String, ClassId>,
    assoc_names: BTreeMap<String, AssocId>,
    actor_names: BTreeMap<String, ActorId>,
}

impl Domain {
    /// Creates an empty domain with the given name.
    pub fn new(name: impl Into<String>) -> Domain {
        Domain {
            name: name.into(),
            ..Domain::default()
        }
    }

    /// Rebuilds the name-lookup indices; called by builders after mutation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Duplicate`] on duplicate class, association or
    /// actor names.
    pub fn reindex(&mut self) -> Result<()> {
        self.class_names.clear();
        self.assoc_names.clear();
        self.actor_names.clear();
        for (i, c) in self.classes.iter().enumerate() {
            if self
                .class_names
                .insert(c.name.clone(), ClassId::new(i as u32))
                .is_some()
            {
                return Err(CoreError::Duplicate {
                    kind: "class",
                    name: c.name.clone(),
                });
            }
        }
        for (i, a) in self.associations.iter().enumerate() {
            if self
                .assoc_names
                .insert(a.name.clone(), AssocId::new(i as u32))
                .is_some()
            {
                return Err(CoreError::Duplicate {
                    kind: "association",
                    name: a.name.clone(),
                });
            }
        }
        for (i, a) in self.actors.iter().enumerate() {
            if self
                .actor_names
                .insert(a.name.clone(), ActorId::new(i as u32))
                .is_some()
            {
                return Err(CoreError::Duplicate {
                    kind: "actor",
                    name: a.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Looks up a class id by name.
    pub fn class_id(&self, name: &str) -> Result<ClassId> {
        self.class_names
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::unresolved("class", name))
    }

    /// Looks up an association id by name.
    pub fn assoc_id(&self, name: &str) -> Result<AssocId> {
        self.assoc_names
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::unresolved("association", name))
    }

    /// Looks up an actor id by name.
    pub fn actor_id(&self, name: &str) -> Result<ActorId> {
        self.actor_names
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::unresolved("actor", name))
    }

    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// The association with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn association(&self, id: AssocId) -> &Association {
        &self.associations[id.index()]
    }

    /// The actor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.index()]
    }

    /// Given an association and the class of a navigation *source*, returns
    /// the class at the far end.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Validate`] if `from` participates at neither
    /// end of the association.
    pub fn nav_target(&self, assoc: AssocId, from: ClassId) -> Result<ClassId> {
        let a = self.association(assoc);
        if a.from == from {
            Ok(a.to)
        } else if a.to == from {
            Ok(a.from)
        } else {
            Err(CoreError::validate(format!(
                "class {} does not participate in association {}",
                self.class(from).name,
                a.name
            )))
        }
    }

    /// Total number of action statements across all state machines — a
    /// coarse model-size metric used in experiment reports.
    pub fn action_weight(&self) -> usize {
        self.classes
            .iter()
            .filter_map(|c| c.state_machine.as_ref())
            .flat_map(|m| m.states.iter())
            .map(|s| s.action.weight())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_class_domain() -> Domain {
        let mut d = Domain::new("test");
        d.classes.push(Class {
            name: "A".into(),
            attributes: vec![Attribute {
                name: "x".into(),
                ty: DataType::Int,
                default: Value::Int(0),
            }],
            events: vec![EventDecl {
                name: "Go".into(),
                params: vec![],
            }],
            state_machine: None,
        });
        d.classes.push(Class {
            name: "B".into(),
            attributes: vec![],
            events: vec![],
            state_machine: None,
        });
        d.associations.push(Association {
            name: "R1".into(),
            from: ClassId::new(0),
            to: ClassId::new(1),
            from_mult: Multiplicity::One,
            to_mult: Multiplicity::Many,
        });
        d.reindex().unwrap();
        d
    }

    #[test]
    fn name_lookups() {
        let d = two_class_domain();
        assert_eq!(d.class_id("A").unwrap(), ClassId::new(0));
        assert_eq!(d.class_id("B").unwrap(), ClassId::new(1));
        assert!(d.class_id("C").is_err());
        assert_eq!(d.assoc_id("R1").unwrap(), AssocId::new(0));
        let a = d.class(ClassId::new(0));
        assert_eq!(a.attr_id("x").unwrap(), AttrId::new(0));
        assert_eq!(a.event_id("Go").unwrap(), EventId::new(0));
        assert!(a.event_id("Stop").is_none());
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut d = two_class_domain();
        d.classes.push(Class {
            name: "A".into(),
            attributes: vec![],
            events: vec![],
            state_machine: None,
        });
        assert!(matches!(
            d.reindex(),
            Err(CoreError::Duplicate { kind: "class", .. })
        ));
    }

    #[test]
    fn navigation_targets() {
        let d = two_class_domain();
        let r1 = d.assoc_id("R1").unwrap();
        assert_eq!(d.nav_target(r1, ClassId::new(0)).unwrap(), ClassId::new(1));
        assert_eq!(d.nav_target(r1, ClassId::new(1)).unwrap(), ClassId::new(0));
    }

    #[test]
    fn dispatch_table() {
        let mut m = StateMachine {
            states: vec![
                State {
                    name: "S0".into(),
                    action: Block::new(),
                },
                State {
                    name: "S1".into(),
                    action: Block::new(),
                },
            ],
            initial: StateId::new(0),
            transitions: vec![
                Transition {
                    from: StateId::new(0),
                    event: EventId::new(0),
                    target: TransitionTarget::To(StateId::new(1)),
                },
                Transition {
                    from: StateId::new(1),
                    event: EventId::new(0),
                    target: TransitionTarget::Ignore,
                },
            ],
            table: BTreeMap::new(),
        };
        m.index().unwrap();
        assert_eq!(
            m.dispatch(StateId::new(0), EventId::new(0)),
            TransitionTarget::To(StateId::new(1))
        );
        assert_eq!(
            m.dispatch(StateId::new(1), EventId::new(0)),
            TransitionTarget::Ignore
        );
        assert_eq!(
            m.dispatch(StateId::new(1), EventId::new(9)),
            TransitionTarget::CantHappen
        );
        assert_eq!(m.state_id("S1"), Some(StateId::new(1)));
    }

    #[test]
    fn duplicate_transition_rejected() {
        let mut m = StateMachine {
            states: vec![State {
                name: "S0".into(),
                action: Block::new(),
            }],
            initial: StateId::new(0),
            transitions: vec![
                Transition {
                    from: StateId::new(0),
                    event: EventId::new(0),
                    target: TransitionTarget::Ignore,
                },
                Transition {
                    from: StateId::new(0),
                    event: EventId::new(0),
                    target: TransitionTarget::CantHappen,
                },
            ],
            table: BTreeMap::new(),
        };
        assert!(m.index().is_err());
    }

    #[test]
    fn multiplicity_helpers() {
        assert!(Multiplicity::Many.is_many());
        assert!(!Multiplicity::One.is_many());
        assert!(!Multiplicity::ZeroOne.is_many());
    }
}
