//! Whole-model structural and semantic validation.
//!
//! Executing a model against formal test cases (paper §2) is only
//! meaningful if the model is internally consistent first. [`validate`]
//! checks:
//!
//! 1. id ranges — every transition references existing states/events,
//!    every association references existing classes;
//! 2. initial-state sanity;
//! 3. attribute defaults match their declared types;
//! 4. **action typing per inbound event**: a state's entry action is
//!    type-checked once for every event that can enter it (the `rcvd`
//!    parameters differ per event), plus once with no parameters if it is
//!    an initial state that actions can also enter via creation;
//! 5. unreachable-state detection (`X0005`, returned as warnings).
//!
//! Every check *accumulates*: [`validate_into`] reports all findings into
//! a [`Diagnostics`] sink with source spans resolved through a
//! [`SourceMap`], while [`validate`] keeps the historical fail-fast
//! contract (first error, warnings on success).

use crate::diag::{Code, Diagnostic, Diagnostics, SourceMap};
use crate::error::{CoreError, Pos, Result};
use crate::ids::{ClassId, StateId};
use crate::model::{Class, Domain, TransitionTarget};
use crate::typeck;
use crate::value::DataType;
use std::collections::{BTreeMap, BTreeSet};

/// A non-fatal finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// The stable lint code (e.g. [`Code::UnreachableState`]).
    pub code: Code,
    /// Source position of the offending element; [`Pos::UNKNOWN`] when
    /// validated without a source map.
    pub pos: Pos,
    /// Human-readable description.
    pub msg: String,
}

/// An error-level finding: the historical [`CoreError`] (what
/// [`validate`] returns) paired with its diagnostic form (what
/// [`validate_into`] emits).
struct Finding {
    error: CoreError,
    diag: Diagnostic,
}

/// Validates a domain; returns warnings on success.
///
/// # Errors
///
/// Returns the first structural or type error found (in model order —
/// every error is still *detected*; see [`validate_into`] to get all of
/// them).
pub fn validate(domain: &Domain) -> Result<Vec<Warning>> {
    let (mut findings, warnings) = validate_impl(domain, &SourceMap::new());
    if findings.is_empty() {
        Ok(warnings)
    } else {
        Err(findings.remove(0).error)
    }
}

/// Validates a domain, accumulating **every** finding (errors and
/// warnings) into `diags`, with positions resolved through `spans`.
pub fn validate_into(domain: &Domain, spans: &SourceMap, diags: &mut Diagnostics) {
    let (findings, warnings) = validate_impl(domain, spans);
    for f in findings {
        diags.push(f.diag);
    }
    for w in warnings {
        diags.push(Diagnostic::new(w.code, w.pos, w.msg));
    }
}

fn validate_impl(domain: &Domain, spans: &SourceMap) -> (Vec<Finding>, Vec<Warning>) {
    let mut findings = Vec::new();
    let mut warnings = Vec::new();
    for (ci, class) in domain.classes.iter().enumerate() {
        let class_id = ClassId::new(ci as u32);
        check_attr_defaults(class, spans, &mut findings);
        if let Some(machine) = &class.state_machine {
            let before = findings.len();
            check_machine_structure(class, machine, spans, &mut findings);
            // Action checks index states/events by id; skip them when the
            // machine's structure is broken rather than panic.
            if findings.len() == before {
                check_state_actions(domain, class_id, class, machine, spans, &mut findings);
                warn_unreachable(class, machine, spans, &mut warnings);
            }
        }
    }
    for assoc in &domain.associations {
        if assoc.from.index() >= domain.classes.len() || assoc.to.index() >= domain.classes.len() {
            let msg = format!("association {} references a missing class", assoc.name);
            findings.push(Finding {
                error: CoreError::validate(msg.clone()),
                diag: Diagnostic::new(
                    Code::UnresolvedReference,
                    spans.get(&SourceMap::assoc_key(&assoc.name)),
                    msg,
                )
                .with_element(format!("association {}", assoc.name)),
            });
        }
    }
    (findings, warnings)
}

fn check_attr_defaults(class: &Class, spans: &SourceMap, findings: &mut Vec<Finding>) {
    let mut seen = BTreeSet::new();
    for attr in &class.attributes {
        let pos = spans.get(&SourceMap::attr_key(&class.name, &attr.name));
        if !seen.insert(attr.name.as_str()) {
            let name = format!("{}.{}", class.name, attr.name);
            findings.push(Finding {
                error: CoreError::Duplicate {
                    kind: "attribute",
                    name: name.clone(),
                },
                diag: Diagnostic::new(
                    Code::DuplicateDefinition,
                    pos,
                    format!("duplicate attribute `{name}`"),
                )
                .with_element(format!("class {}", class.name)),
            });
            continue;
        }
        if attr.default.data_type() != attr.ty {
            let msg = format!(
                "attribute {}.{} declared {} but default is {}",
                class.name,
                attr.name,
                attr.ty,
                attr.default.data_type()
            );
            findings.push(Finding {
                error: CoreError::validate(msg.clone()),
                diag: Diagnostic::new(Code::BadDefault, pos, msg)
                    .with_element(format!("class {}", class.name)),
            });
        }
    }
    let mut seen_ev = BTreeSet::new();
    for ev in &class.events {
        if !seen_ev.insert(ev.name.as_str()) {
            let name = format!("{}.{}", class.name, ev.name);
            findings.push(Finding {
                error: CoreError::Duplicate {
                    kind: "event",
                    name: name.clone(),
                },
                diag: Diagnostic::new(
                    Code::DuplicateDefinition,
                    spans.get(&SourceMap::event_key(&class.name, &ev.name)),
                    format!("duplicate event `{name}`"),
                )
                .with_element(format!("class {}", class.name)),
            });
        }
    }
}

fn check_machine_structure(
    class: &Class,
    machine: &crate::model::StateMachine,
    spans: &SourceMap,
    findings: &mut Vec<Finding>,
) {
    let class_pos = spans.get(&SourceMap::class_key(&class.name));
    let element = format!("class {}", class.name);
    fn structural(findings: &mut Vec<Finding>, pos: Pos, element: &str, msg: String) {
        findings.push(Finding {
            error: CoreError::validate(msg.clone()),
            diag: Diagnostic::new(Code::UnresolvedReference, pos, msg).with_element(element),
        });
    }
    if machine.states.is_empty() {
        structural(
            findings,
            class_pos,
            &element,
            format!("class {} has a state machine with no states", class.name),
        );
        return;
    }
    if machine.initial.index() >= machine.states.len() {
        structural(
            findings,
            class_pos,
            &element,
            format!("class {} initial state out of range", class.name),
        );
        return;
    }
    let mut seen = BTreeSet::new();
    for s in &machine.states {
        if !seen.insert(s.name.as_str()) {
            let name = format!("{}.{}", class.name, s.name);
            findings.push(Finding {
                error: CoreError::Duplicate {
                    kind: "state",
                    name: name.clone(),
                },
                diag: Diagnostic::new(
                    Code::DuplicateDefinition,
                    spans.get(&SourceMap::state_key(&class.name, &s.name)),
                    format!("duplicate state `{name}`"),
                )
                .with_element(element.clone()),
            });
        }
    }
    for t in &machine.transitions {
        if t.from.index() >= machine.states.len() {
            structural(
                findings,
                class_pos,
                &element,
                format!(
                    "class {}: transition from unknown state {}",
                    class.name, t.from
                ),
            );
        }
        if t.event.index() >= class.events.len() {
            structural(
                findings,
                class_pos,
                &element,
                format!(
                    "class {}: transition on unknown event {}",
                    class.name, t.event
                ),
            );
        }
        if let TransitionTarget::To(s) = t.target {
            if s.index() >= machine.states.len() {
                structural(
                    findings,
                    class_pos,
                    &element,
                    format!("class {}: transition to unknown state {}", class.name, s),
                );
            }
        }
    }
}

/// Maps each state to the set of events whose transitions enter it.
fn inbound_events(
    machine: &crate::model::StateMachine,
) -> BTreeMap<StateId, BTreeSet<crate::ids::EventId>> {
    let mut map: BTreeMap<StateId, BTreeSet<crate::ids::EventId>> = BTreeMap::new();
    for t in &machine.transitions {
        if let TransitionTarget::To(s) = t.target {
            map.entry(s).or_default().insert(t.event);
        }
    }
    map
}

fn check_state_actions(
    domain: &Domain,
    class_id: ClassId,
    class: &Class,
    machine: &crate::model::StateMachine,
    spans: &SourceMap,
    findings: &mut Vec<Finding>,
) {
    let inbound = inbound_events(machine);
    for (si, state) in machine.states.iter().enumerate() {
        let sid = StateId::new(si as u32);
        let element = format!("class {}, state {}", class.name, state.name);
        // The same block is checked once per inbound event (the `rcvd`
        // parameters differ); errors not involving `rcvd` would repeat, so
        // deduplicate by position + message within the state.
        let mut seen: BTreeSet<(u32, u32, String)> = BTreeSet::new();
        let state_pos = spans.get(&SourceMap::state_key(&class.name, &state.name));
        let events = inbound.get(&sid);
        match events {
            Some(events) if !events.is_empty() => {
                for ev in events {
                    let ev_name = class.events[ev.index()].name.clone();
                    let params: Vec<(String, DataType)> = class.events[ev.index()].params.clone();
                    typeck::check_block_into(
                        domain,
                        class_id,
                        &params,
                        &state.action,
                        &mut |pos, e| {
                            if !seen.insert((pos.line, pos.col, e.to_string())) {
                                return;
                            }
                            let fallback = if pos.line == 0 { state_pos } else { pos };
                            findings.push(Finding {
                                error: CoreError::validate(format!(
                                    "class {}, state {}, via event {}: {e}",
                                    class.name, state.name, ev_name
                                )),
                                diag: Diagnostic::from_core_error(&e, fallback)
                                    .with_element(element.clone())
                                    .with_note(format!(
                                        "while checking the entry action for event `{ev_name}`"
                                    )),
                            });
                        },
                    );
                }
            }
            _ => {
                // Entered only at creation (or never): check without params.
                typeck::check_block_into(domain, class_id, &[], &state.action, &mut |pos, e| {
                    if !seen.insert((pos.line, pos.col, e.to_string())) {
                        return;
                    }
                    let fallback = if pos.line == 0 { state_pos } else { pos };
                    findings.push(Finding {
                        error: CoreError::validate(format!(
                            "class {}, state {}: {e}",
                            class.name, state.name
                        )),
                        diag: Diagnostic::from_core_error(&e, fallback)
                            .with_element(element.clone())
                            .with_note("while checking the creation-entry action".to_owned()),
                    });
                });
            }
        }
    }
}

/// Flags states no transition chain from the initial state reaches.
///
/// Instances enter a machine **only** through its initial state — both
/// `create` statements in actions and `create` stimuli place the new
/// instance in `machine.initial` without running any transition — so
/// seeding the reachability walk with the initial state alone is exact:
/// the initial state itself is never flagged even with no inbound
/// transition rows, and there is no other creation entry point that
/// could make this walk under-approximate.
fn warn_unreachable(
    class: &Class,
    machine: &crate::model::StateMachine,
    spans: &SourceMap,
    warnings: &mut Vec<Warning>,
) {
    let mut reachable = BTreeSet::new();
    let mut stack = vec![machine.initial];
    while let Some(s) = stack.pop() {
        if !reachable.insert(s) {
            continue;
        }
        for t in &machine.transitions {
            if t.from == s {
                if let TransitionTarget::To(next) = t.target {
                    if !reachable.contains(&next) {
                        stack.push(next);
                    }
                }
            }
        }
    }
    for (si, state) in machine.states.iter().enumerate() {
        if !reachable.contains(&StateId::new(si as u32)) {
            warnings.push(Warning {
                code: Code::UnreachableState,
                pos: spans.get(&SourceMap::state_key(&class.name, &state.name)),
                msg: format!("class {}: state {} is unreachable", class.name, state.name),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DomainBuilder;
    use crate::model::{Attribute, Class as MClass};
    use crate::value::Value;

    #[test]
    fn valid_model_has_no_warnings() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .event("E", &[])
            .state("A", "")
            .state("B", "")
            .initial("A")
            .transition("A", "E", "B")
            .transition("B", "E", "A");
        // build() runs validate() internally; re-run to inspect warnings.
        let domain = d.build().unwrap();
        assert!(validate(&domain).unwrap().is_empty());
    }

    #[test]
    fn unreachable_state_warns() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .event("E", &[])
            .state("A", "")
            .state("Orphan", "")
            .initial("A")
            .transition("A", "E", "A");
        let domain = d.build().unwrap();
        let warnings = validate(&domain).unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].msg.contains("Orphan"));
        assert_eq!(warnings[0].code, Code::UnreachableState);
        assert_eq!(warnings[0].pos, Pos::UNKNOWN); // no source map here
    }

    #[test]
    fn initial_state_with_no_inbound_transitions_is_reachable() {
        // Regression: instances enter via creation directly into the
        // initial state, so a `Boot` state with no inbound transition
        // rows must NOT be flagged unreachable.
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .event("E", &[])
            .state("Boot", "")
            .state("Run", "")
            .initial("Boot")
            .transition("Boot", "E", "Run")
            .transition("Run", "E", "Run");
        let domain = d.build().unwrap();
        assert!(validate(&domain).unwrap().is_empty());
    }

    #[test]
    fn bad_attr_default_rejected() {
        let mut domain = Domain::new("m");
        domain.classes.push(MClass {
            name: "C".into(),
            attributes: vec![Attribute {
                name: "x".into(),
                ty: DataType::Int,
                default: Value::Bool(true),
            }],
            events: vec![],
            state_machine: None,
        });
        domain.reindex().unwrap();
        assert!(validate(&domain).is_err());
    }

    #[test]
    fn validate_into_accumulates_every_finding() {
        // Two independent defects in two classes: a bad default and a
        // duplicate attribute. Fail-fast `validate` reports one;
        // `validate_into` reports both.
        let mut domain = Domain::new("m");
        domain.classes.push(MClass {
            name: "A".into(),
            attributes: vec![Attribute {
                name: "x".into(),
                ty: DataType::Int,
                default: Value::Bool(true),
            }],
            events: vec![],
            state_machine: None,
        });
        domain.classes.push(MClass {
            name: "B".into(),
            attributes: vec![
                Attribute {
                    name: "y".into(),
                    ty: DataType::Int,
                    default: Value::Int(0),
                },
                Attribute {
                    name: "y".into(),
                    ty: DataType::Int,
                    default: Value::Int(0),
                },
            ],
            events: vec![],
            state_machine: None,
        });
        domain.reindex().unwrap();
        assert!(validate(&domain).is_err());
        let mut diags = Diagnostics::new();
        validate_into(&domain, &SourceMap::new(), &mut diags);
        assert_eq!(diags.len(), 2);
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::BadDefault));
        assert!(codes.contains(&Code::DuplicateDefinition));
        assert!(diags.has_errors());
    }

    #[test]
    fn action_checked_against_each_inbound_event() {
        // State `S` is entered by both `WithV` (has param v) and `Bare`
        // (no params); its action uses rcvd.v, so entering via Bare is a
        // type error.
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .attr("n", DataType::Int)
            .event("WithV", &[("v", DataType::Int)])
            .event("Bare", &[])
            .state("A", "")
            .state("S", "self.n = rcvd.v;")
            .initial("A")
            .transition("A", "WithV", "S")
            .transition("A", "Bare", "S");
        assert!(d.build().is_err());

        // With only the parameterised inbound event it is fine.
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .attr("n", DataType::Int)
            .event("WithV", &[("v", DataType::Int)])
            .state("A", "")
            .state("S", "self.n = rcvd.v;")
            .initial("A")
            .transition("A", "WithV", "S");
        assert!(d.build().is_ok());
    }

    #[test]
    fn initial_state_action_checked_without_params() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .attr("n", DataType::Int)
            .event("E", &[])
            .state("A", "self.n = rcvd.v;") // no inbound events → no rcvd
            .initial("A")
            .transition("A", "E", "A");
        assert!(d.build().is_err());
    }

    #[test]
    fn duplicate_event_names_rejected() {
        let mut domain = Domain::new("m");
        domain.classes.push(MClass {
            name: "C".into(),
            attributes: vec![],
            events: vec![
                crate::model::EventDecl {
                    name: "E".into(),
                    params: vec![],
                },
                crate::model::EventDecl {
                    name: "E".into(),
                    params: vec![],
                },
            ],
            state_machine: None,
        });
        domain.reindex().unwrap();
        assert!(validate(&domain).is_err());
    }
}
