//! Whole-model structural and semantic validation.
//!
//! Executing a model against formal test cases (paper §2) is only
//! meaningful if the model is internally consistent first. [`validate`]
//! checks:
//!
//! 1. id ranges — every transition references existing states/events,
//!    every association references existing classes;
//! 2. initial-state sanity;
//! 3. attribute defaults match their declared types;
//! 4. **action typing per inbound event**: a state's entry action is
//!    type-checked once for every event that can enter it (the `rcvd`
//!    parameters differ per event), plus once with no parameters if it is
//!    an initial state that actions can also enter via creation;
//! 5. unreachable-state detection (returned as warnings, not errors).

use crate::error::{CoreError, Result};
use crate::ids::{ClassId, StateId};
use crate::model::{Class, Domain, TransitionTarget};
use crate::typeck;
use crate::value::DataType;
use std::collections::{BTreeMap, BTreeSet};

/// A non-fatal finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// Human-readable description.
    pub msg: String,
}

/// Validates a domain; returns warnings on success.
///
/// # Errors
///
/// Returns the first structural or type error found.
pub fn validate(domain: &Domain) -> Result<Vec<Warning>> {
    let mut warnings = Vec::new();
    for (ci, class) in domain.classes.iter().enumerate() {
        let class_id = ClassId::new(ci as u32);
        check_attr_defaults(class)?;
        if let Some(machine) = &class.state_machine {
            check_machine_structure(domain, class, machine)?;
            check_state_actions(domain, class_id, class, machine)?;
            warn_unreachable(class, machine, &mut warnings);
        }
    }
    for assoc in &domain.associations {
        if assoc.from.index() >= domain.classes.len() || assoc.to.index() >= domain.classes.len() {
            return Err(CoreError::validate(format!(
                "association {} references a missing class",
                assoc.name
            )));
        }
    }
    Ok(warnings)
}

fn check_attr_defaults(class: &Class) -> Result<()> {
    let mut seen = BTreeSet::new();
    for attr in &class.attributes {
        if !seen.insert(attr.name.as_str()) {
            return Err(CoreError::Duplicate {
                kind: "attribute",
                name: format!("{}.{}", class.name, attr.name),
            });
        }
        if attr.default.data_type() != attr.ty {
            return Err(CoreError::validate(format!(
                "attribute {}.{} declared {} but default is {}",
                class.name,
                attr.name,
                attr.ty,
                attr.default.data_type()
            )));
        }
    }
    let mut seen_ev = BTreeSet::new();
    for ev in &class.events {
        if !seen_ev.insert(ev.name.as_str()) {
            return Err(CoreError::Duplicate {
                kind: "event",
                name: format!("{}.{}", class.name, ev.name),
            });
        }
    }
    Ok(())
}

fn check_machine_structure(
    _domain: &Domain,
    class: &Class,
    machine: &crate::model::StateMachine,
) -> Result<()> {
    if machine.states.is_empty() {
        return Err(CoreError::validate(format!(
            "class {} has a state machine with no states",
            class.name
        )));
    }
    if machine.initial.index() >= machine.states.len() {
        return Err(CoreError::validate(format!(
            "class {} initial state out of range",
            class.name
        )));
    }
    let mut seen = BTreeSet::new();
    for s in &machine.states {
        if !seen.insert(s.name.as_str()) {
            return Err(CoreError::Duplicate {
                kind: "state",
                name: format!("{}.{}", class.name, s.name),
            });
        }
    }
    for t in &machine.transitions {
        if t.from.index() >= machine.states.len() {
            return Err(CoreError::validate(format!(
                "class {}: transition from unknown state {}",
                class.name, t.from
            )));
        }
        if t.event.index() >= class.events.len() {
            return Err(CoreError::validate(format!(
                "class {}: transition on unknown event {}",
                class.name, t.event
            )));
        }
        if let TransitionTarget::To(s) = t.target {
            if s.index() >= machine.states.len() {
                return Err(CoreError::validate(format!(
                    "class {}: transition to unknown state {}",
                    class.name, s
                )));
            }
        }
    }
    Ok(())
}

/// Maps each state to the set of events whose transitions enter it.
fn inbound_events(
    class: &Class,
    machine: &crate::model::StateMachine,
) -> BTreeMap<StateId, BTreeSet<crate::ids::EventId>> {
    let mut map: BTreeMap<StateId, BTreeSet<crate::ids::EventId>> = BTreeMap::new();
    for t in &machine.transitions {
        if let TransitionTarget::To(s) = t.target {
            map.entry(s).or_default().insert(t.event);
        }
    }
    let _ = class;
    map
}

fn check_state_actions(
    domain: &Domain,
    class_id: ClassId,
    class: &Class,
    machine: &crate::model::StateMachine,
) -> Result<()> {
    let inbound = inbound_events(class, machine);
    for (si, state) in machine.states.iter().enumerate() {
        let sid = StateId::new(si as u32);
        let events = inbound.get(&sid);
        match events {
            Some(events) if !events.is_empty() => {
                for ev in events {
                    let params: Vec<(String, DataType)> = class.events[ev.index()].params.clone();
                    typeck::check_block(domain, class_id, &params, &state.action).map_err(|e| {
                        CoreError::validate(format!(
                            "class {}, state {}, via event {}: {e}",
                            class.name,
                            state.name,
                            class.events[ev.index()].name
                        ))
                    })?;
                }
            }
            _ => {
                // Entered only at creation (or never): check without params.
                typeck::check_block(domain, class_id, &[], &state.action).map_err(|e| {
                    CoreError::validate(format!("class {}, state {}: {e}", class.name, state.name))
                })?;
            }
        }
    }
    Ok(())
}

fn warn_unreachable(
    class: &Class,
    machine: &crate::model::StateMachine,
    warnings: &mut Vec<Warning>,
) {
    let mut reachable = BTreeSet::new();
    let mut stack = vec![machine.initial];
    while let Some(s) = stack.pop() {
        if !reachable.insert(s) {
            continue;
        }
        for t in &machine.transitions {
            if t.from == s {
                if let TransitionTarget::To(next) = t.target {
                    if !reachable.contains(&next) {
                        stack.push(next);
                    }
                }
            }
        }
    }
    for (si, state) in machine.states.iter().enumerate() {
        if !reachable.contains(&StateId::new(si as u32)) {
            warnings.push(Warning {
                msg: format!("class {}: state {} is unreachable", class.name, state.name),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DomainBuilder;
    use crate::model::{Attribute, Class as MClass};
    use crate::value::Value;

    #[test]
    fn valid_model_has_no_warnings() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .event("E", &[])
            .state("A", "")
            .state("B", "")
            .initial("A")
            .transition("A", "E", "B")
            .transition("B", "E", "A");
        // build() runs validate() internally; re-run to inspect warnings.
        let domain = d.build().unwrap();
        assert!(validate(&domain).unwrap().is_empty());
    }

    #[test]
    fn unreachable_state_warns() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .event("E", &[])
            .state("A", "")
            .state("Orphan", "")
            .initial("A")
            .transition("A", "E", "A");
        let domain = d.build().unwrap();
        let warnings = validate(&domain).unwrap();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].msg.contains("Orphan"));
    }

    #[test]
    fn bad_attr_default_rejected() {
        let mut domain = Domain::new("m");
        domain.classes.push(MClass {
            name: "C".into(),
            attributes: vec![Attribute {
                name: "x".into(),
                ty: DataType::Int,
                default: Value::Bool(true),
            }],
            events: vec![],
            state_machine: None,
        });
        domain.reindex().unwrap();
        assert!(validate(&domain).is_err());
    }

    #[test]
    fn action_checked_against_each_inbound_event() {
        // State `S` is entered by both `WithV` (has param v) and `Bare`
        // (no params); its action uses rcvd.v, so entering via Bare is a
        // type error.
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .attr("n", DataType::Int)
            .event("WithV", &[("v", DataType::Int)])
            .event("Bare", &[])
            .state("A", "")
            .state("S", "self.n = rcvd.v;")
            .initial("A")
            .transition("A", "WithV", "S")
            .transition("A", "Bare", "S");
        assert!(d.build().is_err());

        // With only the parameterised inbound event it is fine.
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .attr("n", DataType::Int)
            .event("WithV", &[("v", DataType::Int)])
            .state("A", "")
            .state("S", "self.n = rcvd.v;")
            .initial("A")
            .transition("A", "WithV", "S");
        assert!(d.build().is_ok());
    }

    #[test]
    fn initial_state_action_checked_without_params() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .attr("n", DataType::Int)
            .event("E", &[])
            .state("A", "self.n = rcvd.v;") // no inbound events → no rcvd
            .initial("A")
            .transition("A", "E", "A");
        assert!(d.build().is_err());
    }

    #[test]
    fn duplicate_event_names_rejected() {
        let mut domain = Domain::new("m");
        domain.classes.push(MClass {
            name: "C".into(),
            attributes: vec![],
            events: vec![
                crate::model::EventDecl {
                    name: "E".into(),
                    params: vec![],
                },
                crate::model::EventDecl {
                    name: "E".into(),
                    params: vec![],
                },
            ],
            state_machine: None,
        });
        domain.reindex().unwrap();
        assert!(validate(&domain).is_err());
    }
}
