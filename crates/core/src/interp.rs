//! The action-language evaluator, parameterised over an execution host.
//!
//! The paper's model compiler "may [implement the model] any manner it
//! chooses so long as the defined behavior is preserved" (§4). We make the
//! *defined behaviour* a single reusable artifact: this module evaluates
//! action blocks against the [`ActionHost`] trait, and every execution
//! platform in the workspace — the abstract model interpreter
//! (`xtuml-exec`), the generated-hardware FSMs (`xtuml-mda` lowering onto
//! `xtuml-rtl`) and the generated-software tasks (`xtuml-mda` lowering onto
//! `xtuml-swrt`) — implements `ActionHost` over its own object store and
//! signal transport. Behavioural equivalence across partitions then reduces
//! to the hosts' transport semantics, which is exactly what the
//! verification layer checks.

use crate::action::{Block, Expr, GenTarget, LValue, Stmt};
use crate::error::{CoreError, Result};
use crate::ids::{ActorId, AssocId, AttrId, ClassId, EventId, InstId};
use crate::model::Domain;
use crate::value::{apply_binop, apply_unop, Value};
use std::collections::BTreeMap;

/// The services an execution platform provides to running actions.
///
/// Implementations must keep instance populations **per platform
/// partition**: a host only ever sees classes mapped to it, plus a
/// transport (`send*`) that may cross the partition boundary.
pub trait ActionHost {
    /// The domain model being executed (for name→id resolution).
    fn domain(&self) -> &Domain;

    /// Creates an instance of `class` in its initial state; returns its id.
    ///
    /// # Errors
    ///
    /// Implementations report resource exhaustion or out-of-partition
    /// classes as [`CoreError::Runtime`].
    fn create(&mut self, class: ClassId) -> Result<InstId>;

    /// Deletes an instance; subsequent access through the reference fails.
    ///
    /// # Errors
    ///
    /// Fails if the instance is unknown or already deleted.
    fn delete(&mut self, inst: InstId) -> Result<()>;

    /// The class of a live instance.
    ///
    /// # Errors
    ///
    /// Fails if the instance is unknown or deleted.
    fn class_of(&self, inst: InstId) -> Result<ClassId>;

    /// Reads an attribute.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    fn attr_read(&self, inst: InstId, attr: AttrId) -> Result<Value>;

    /// Writes an attribute.
    ///
    /// # Errors
    ///
    /// Fails on dangling references or a type mismatch.
    fn attr_write(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()>;

    /// All live instances of a class, in creation order.
    fn instances_of(&self, class: ClassId) -> Vec<InstId>;

    /// Instances linked to `inst` across `assoc`, in link order.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    fn related(&self, inst: InstId, assoc: AssocId) -> Result<Vec<InstId>>;

    /// Creates a link.
    ///
    /// # Errors
    ///
    /// Fails on dangling references or multiplicity violations.
    fn relate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()>;

    /// Removes a link.
    ///
    /// # Errors
    ///
    /// Fails if no such link exists.
    fn unrelate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()>;

    /// Sends a signal to an instance (possibly across the partition
    /// boundary; possibly to `self`).
    ///
    /// # Errors
    ///
    /// Fails on dangling references or queue overflow (platform-defined).
    fn send(&mut self, from: InstId, to: InstId, event: EventId, args: Vec<Value>) -> Result<()>;

    /// Sends a signal to an external actor — an *observable output*.
    ///
    /// # Errors
    ///
    /// Platform-defined.
    fn send_actor(
        &mut self,
        from: InstId,
        actor: ActorId,
        event: EventId,
        args: Vec<Value>,
    ) -> Result<()>;

    /// Schedules a signal to an instance after `delay` time units (the
    /// timer idiom: `gen Ev() to self after n;`).
    ///
    /// # Errors
    ///
    /// Platform-defined.
    fn send_delayed(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: Vec<Value>,
        delay: i64,
    ) -> Result<()>;

    /// Cancels pending delayed signals of the given event to `inst`.
    ///
    /// # Errors
    ///
    /// Platform-defined; cancelling when nothing is pending is *not* an
    /// error.
    fn cancel_delayed(&mut self, inst: InstId, event: EventId) -> Result<()>;

    /// Invokes a synchronous bridge function on an actor.
    ///
    /// # Errors
    ///
    /// Fails if the actor does not implement the function.
    fn bridge_call(&mut self, actor: ActorId, func: &str, args: Vec<Value>) -> Result<Value>;
}

/// Why a block stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to the end.
    Completed,
    /// A `return;` statement fired.
    Returned,
}

/// Control-flow signal inside loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Broke,
    Continued,
    Returned,
}

/// Default fuel: maximum primitive steps per action block before the
/// interpreter assumes a runaway loop. Run-to-completion semantics make an
/// unbounded action block a model error, not a scheduling choice.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// Execution context for one run-to-completion action block.
#[derive(Debug)]
pub struct ExecCtx {
    /// The instance whose state action is running.
    pub self_inst: InstId,
    /// Parameters of the event that triggered the transition.
    pub params: BTreeMap<String, Value>,
    /// Local variables (function-scoped, created on first assignment).
    pub locals: BTreeMap<String, Value>,
    /// Candidate binding for `selected` inside `where` clauses.
    selected: Option<Value>,
    /// Primitive-step counter (statements + expression nodes); the
    /// substrates convert this into cycles.
    pub steps: u64,
    /// Remaining fuel; see [`DEFAULT_FUEL`].
    pub fuel: u64,
}

impl ExecCtx {
    /// Creates a context for `self_inst` with the given event parameters.
    pub fn new(self_inst: InstId, params: BTreeMap<String, Value>) -> ExecCtx {
        ExecCtx {
            self_inst,
            params,
            locals: BTreeMap::new(),
            selected: None,
            steps: 0,
            fuel: DEFAULT_FUEL,
        }
    }

    fn burn(&mut self, n: u64) -> Result<()> {
        self.steps += n;
        if self.fuel < n {
            return Err(CoreError::runtime(
                "action block exceeded its fuel limit (runaway loop?)",
            ));
        }
        self.fuel -= n;
        Ok(())
    }
}

/// Executes a block to completion against `host`.
///
/// Returns the outcome and leaves the accumulated step count in
/// `ctx.steps` (the substrates' cost models read it).
///
/// # Errors
///
/// Propagates name-resolution and runtime errors ([`CoreError::Runtime`],
/// [`CoreError::Unresolved`]) from the statements executed.
pub fn run_block<H: ActionHost>(host: &mut H, ctx: &mut ExecCtx, block: &Block) -> Result<Outcome> {
    match exec_block(host, ctx, block)? {
        Flow::Returned => Ok(Outcome::Returned),
        Flow::Broke | Flow::Continued => {
            Err(CoreError::runtime("`break`/`continue` outside of a loop"))
        }
        Flow::Normal => Ok(Outcome::Completed),
    }
}

fn exec_block<H: ActionHost>(host: &mut H, ctx: &mut ExecCtx, block: &Block) -> Result<Flow> {
    for stmt in &block.stmts {
        match exec_stmt(host, ctx, stmt)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

fn exec_stmt<H: ActionHost>(host: &mut H, ctx: &mut ExecCtx, stmt: &Stmt) -> Result<Flow> {
    ctx.burn(1)?;
    match stmt {
        Stmt::Assign { lhs, expr, .. } => {
            let v = eval(host, ctx, expr)?;
            match lhs {
                LValue::Var(name) => {
                    ctx.locals.insert(name.clone(), v);
                }
                LValue::Attr(base, attr) => {
                    let base_v = eval(host, ctx, base)?;
                    let inst = base_v.as_inst()?;
                    let class = host.class_of(inst)?;
                    let attr_id = resolve_attr(host.domain(), class, attr)?;
                    host.attr_write(inst, attr_id, v)?;
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::Create { var, class, .. } => {
            let class_id = host.domain().class_id(class)?;
            let inst = host.create(class_id)?;
            ctx.locals
                .insert(var.clone(), Value::Inst(class_id, Some(inst)));
            Ok(Flow::Normal)
        }
        Stmt::Delete { expr, .. } => {
            let inst = eval(host, ctx, expr)?.as_inst()?;
            host.delete(inst)?;
            Ok(Flow::Normal)
        }
        Stmt::SelectAny {
            var, class, filter, ..
        } => {
            let class_id = host.domain().class_id(class)?;
            let matched = select_instances(host, ctx, class_id, filter.as_ref(), true)?;
            let v = Value::Inst(class_id, matched.first().copied());
            ctx.locals.insert(var.clone(), v);
            Ok(Flow::Normal)
        }
        Stmt::SelectMany {
            var, class, filter, ..
        } => {
            let class_id = host.domain().class_id(class)?;
            let matched = select_instances(host, ctx, class_id, filter.as_ref(), false)?;
            ctx.locals
                .insert(var.clone(), Value::Set(class_id, matched));
            Ok(Flow::Normal)
        }
        Stmt::Relate { a, b, assoc, .. } => {
            let ia = eval(host, ctx, a)?.as_inst()?;
            let ib = eval(host, ctx, b)?.as_inst()?;
            let assoc_id = host.domain().assoc_id(assoc)?;
            host.relate(ia, ib, assoc_id)?;
            Ok(Flow::Normal)
        }
        Stmt::Unrelate { a, b, assoc, .. } => {
            let ia = eval(host, ctx, a)?.as_inst()?;
            let ib = eval(host, ctx, b)?.as_inst()?;
            let assoc_id = host.domain().assoc_id(assoc)?;
            host.unrelate(ia, ib, assoc_id)?;
            Ok(Flow::Normal)
        }
        Stmt::Generate {
            event,
            args,
            target,
            delay,
            ..
        } => {
            let arg_vals: Vec<Value> = args
                .iter()
                .map(|a| eval(host, ctx, a))
                .collect::<Result<_>>()?;
            exec_generate(host, ctx, event, arg_vals, target, delay.as_ref())
        }
        Stmt::Cancel { event, .. } => {
            let class = host.class_of(ctx.self_inst)?;
            let event_id = resolve_event(host.domain(), class, event)?;
            host.cancel_delayed(ctx.self_inst, event_id)?;
            Ok(Flow::Normal)
        }
        Stmt::If {
            arms, otherwise, ..
        } => {
            for (cond, body) in arms {
                if eval(host, ctx, cond)?.as_bool()? {
                    return exec_block(host, ctx, body);
                }
            }
            if let Some(body) = otherwise {
                return exec_block(host, ctx, body);
            }
            Ok(Flow::Normal)
        }
        Stmt::While { cond, body, .. } => {
            while eval(host, ctx, cond)?.as_bool()? {
                ctx.burn(1)?;
                match exec_block(host, ctx, body)? {
                    Flow::Broke => break,
                    Flow::Returned => return Ok(Flow::Returned),
                    Flow::Normal | Flow::Continued => {}
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::ForEach { var, set, body, .. } => {
            let set_v = eval(host, ctx, set)?;
            let Value::Set(class, items) = set_v else {
                return Err(CoreError::runtime(format!(
                    "foreach needs a set, got {}",
                    set_v.data_type()
                )));
            };
            for item in items {
                ctx.burn(1)?;
                ctx.locals
                    .insert(var.clone(), Value::Inst(class, Some(item)));
                match exec_block(host, ctx, body)? {
                    Flow::Broke => break,
                    Flow::Returned => return Ok(Flow::Returned),
                    Flow::Normal | Flow::Continued => {}
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::Break { .. } => Ok(Flow::Broke),
        Stmt::Continue { .. } => Ok(Flow::Continued),
        Stmt::Return { .. } => Ok(Flow::Returned),
        Stmt::ExprStmt { expr, .. } => {
            eval(host, ctx, expr)?;
            Ok(Flow::Normal)
        }
    }
}

fn exec_generate<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    event: &str,
    args: Vec<Value>,
    target: &GenTarget,
    delay: Option<&Expr>,
) -> Result<Flow> {
    // Resolve dynamic actor fallback: a bare variable in target position
    // that is not a local but names an actor is an actor send (used when
    // blocks are parsed without declaration context).
    let actor_target: Option<ActorId> = match target {
        GenTarget::Actor(name) => Some(host.domain().actor_id(name)?),
        GenTarget::Inst(Expr::Var(name)) if !ctx.locals.contains_key(name) => {
            host.domain().actor_id(name).ok()
        }
        GenTarget::Inst(_) => None,
    };

    if let Some(actor) = actor_target {
        if delay.is_some() {
            return Err(CoreError::runtime(
                "`after` is only valid for instance-directed signals",
            ));
        }
        let event_id = host
            .domain()
            .actor(actor)
            .event_id(event)
            .ok_or_else(|| CoreError::unresolved("actor event", event))?;
        check_arity(
            &host.domain().actor(actor).events[event_id.index()].params,
            &args,
            event,
        )?;
        host.send_actor(ctx.self_inst, actor, event_id, args)?;
        return Ok(Flow::Normal);
    }

    let GenTarget::Inst(target_expr) = target else {
        unreachable!("actor targets handled above");
    };
    let target_v = eval(host, ctx, target_expr)?;
    let to = target_v.as_inst()?;
    let class = host.class_of(to)?;
    let event_id = resolve_event(host.domain(), class, event)?;
    check_arity(
        &host.domain().class(class).events[event_id.index()].params,
        &args,
        event,
    )?;
    match delay {
        None => host.send(ctx.self_inst, to, event_id, args)?,
        Some(d) => {
            let ticks = eval(host, ctx, d)?.as_int()?;
            if ticks < 0 {
                return Err(CoreError::runtime("negative signal delay"));
            }
            host.send_delayed(ctx.self_inst, to, event_id, args, ticks)?;
        }
    }
    Ok(Flow::Normal)
}

fn check_arity(
    params: &[(String, crate::value::DataType)],
    args: &[Value],
    event: &str,
) -> Result<()> {
    if params.len() != args.len() {
        return Err(CoreError::runtime(format!(
            "event `{event}` takes {} argument(s), got {}",
            params.len(),
            args.len()
        )));
    }
    Ok(())
}

fn select_instances<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    class: ClassId,
    filter: Option<&Expr>,
    first_only: bool,
) -> Result<Vec<InstId>> {
    let candidates = host.instances_of(class);
    let mut out = Vec::new();
    for inst in candidates {
        ctx.burn(1)?;
        let keep = match filter {
            None => true,
            Some(f) => {
                let saved = ctx.selected.replace(Value::Inst(class, Some(inst)));
                let r = eval(host, ctx, f)?.as_bool();
                ctx.selected = saved;
                r?
            }
        };
        if keep {
            out.push(inst);
            if first_only {
                break;
            }
        }
    }
    Ok(out)
}

fn resolve_attr(domain: &Domain, class: ClassId, name: &str) -> Result<AttrId> {
    domain
        .class(class)
        .attr_id(name)
        .ok_or_else(|| CoreError::Unresolved {
            kind: "attribute",
            name: format!("{}.{name}", domain.class(class).name),
        })
}

fn resolve_event(domain: &Domain, class: ClassId, name: &str) -> Result<EventId> {
    domain
        .class(class)
        .event_id(name)
        .ok_or_else(|| CoreError::Unresolved {
            kind: "event",
            name: format!("{}.{name}", domain.class(class).name),
        })
}

/// Evaluates an expression.
///
/// # Errors
///
/// Propagates runtime and resolution errors.
pub fn eval<H: ActionHost>(host: &mut H, ctx: &mut ExecCtx, expr: &Expr) -> Result<Value> {
    ctx.burn(1)?;
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(name) => ctx
            .locals
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::unresolved("variable", name.clone())),
        Expr::SelfRef => {
            let class = host.class_of(ctx.self_inst)?;
            Ok(Value::Inst(class, Some(ctx.self_inst)))
        }
        Expr::Selected => ctx
            .selected
            .clone()
            .ok_or_else(|| CoreError::runtime("`selected` used outside a `where` clause")),
        Expr::Param(name) => ctx
            .params
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::unresolved("event parameter", name.clone())),
        Expr::Attr(base, name) => {
            let base_v = eval(host, ctx, base)?;
            let inst = base_v.as_inst()?;
            let class = host.class_of(inst)?;
            let attr = resolve_attr(host.domain(), class, name)?;
            host.attr_read(inst, attr)
        }
        Expr::Nav(base, class_name, assoc_name) => {
            let base_v = eval(host, ctx, base)?;
            let assoc = host.domain().assoc_id(assoc_name)?;
            let want = host.domain().class_id(class_name)?;
            let sources: Vec<InstId> = match base_v {
                Value::Inst(_, Some(i)) => vec![i],
                Value::Inst(_, None) => vec![],
                Value::Set(_, items) => items,
                other => {
                    return Err(CoreError::runtime(format!(
                        "cannot navigate from {}",
                        other.data_type()
                    )))
                }
            };
            let mut out: Vec<InstId> = Vec::new();
            for src in sources {
                let src_class = host.class_of(src)?;
                let target_class = host.domain().nav_target(assoc, src_class)?;
                if target_class != want {
                    return Err(CoreError::runtime(format!(
                        "association {assoc_name} from {} reaches {}, not {}",
                        host.domain().class(src_class).name,
                        host.domain().class(target_class).name,
                        class_name
                    )));
                }
                for t in host.related(src, assoc)? {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
            Ok(Value::Set(want, out))
        }
        Expr::Unary(op, e) => {
            let v = eval(host, ctx, e)?;
            apply_unop(*op, &v)
        }
        Expr::Binary(op, a, b) => {
            let va = eval(host, ctx, a)?;
            let vb = eval(host, ctx, b)?;
            apply_binop(*op, &va, &vb)
        }
        Expr::BridgeCall(actor, func, args) => {
            let actor_id = host.domain().actor_id(actor)?;
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(host, ctx, a))
                .collect::<Result<_>>()?;
            host.bridge_call(actor_id, func, vals)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Actor, Attribute, Class, EventDecl};
    use crate::parse::parse_block;
    use crate::value::DataType;

    /// A minimal in-memory host for interpreter unit tests.
    struct MiniHost {
        domain: Domain,
        // (class, attrs, alive)
        instances: Vec<(ClassId, Vec<Value>, bool)>,
        links: Vec<(AssocId, InstId, InstId)>,
        sent: Vec<(InstId, InstId, EventId, Vec<Value>)>,
        actor_sent: Vec<(ActorId, EventId, Vec<Value>)>,
        delayed: Vec<(InstId, EventId, i64)>,
        log: Vec<String>,
    }

    impl MiniHost {
        fn new(domain: Domain) -> MiniHost {
            MiniHost {
                domain,
                instances: Vec::new(),
                links: Vec::new(),
                sent: Vec::new(),
                actor_sent: Vec::new(),
                delayed: Vec::new(),
                log: Vec::new(),
            }
        }

        fn check_live(&self, inst: InstId) -> Result<()> {
            match self.instances.get(inst.index()) {
                Some((_, _, true)) => Ok(()),
                _ => Err(CoreError::runtime(format!("dangling instance {inst}"))),
            }
        }
    }

    impl ActionHost for MiniHost {
        fn domain(&self) -> &Domain {
            &self.domain
        }
        fn create(&mut self, class: ClassId) -> Result<InstId> {
            let attrs = self
                .domain
                .class(class)
                .attributes
                .iter()
                .map(|a| a.default.clone())
                .collect();
            self.instances.push((class, attrs, true));
            Ok(InstId::new(self.instances.len() as u32 - 1))
        }
        fn delete(&mut self, inst: InstId) -> Result<()> {
            self.check_live(inst)?;
            self.instances[inst.index()].2 = false;
            Ok(())
        }
        fn class_of(&self, inst: InstId) -> Result<ClassId> {
            self.check_live(inst)?;
            Ok(self.instances[inst.index()].0)
        }
        fn attr_read(&self, inst: InstId, attr: AttrId) -> Result<Value> {
            self.check_live(inst)?;
            Ok(self.instances[inst.index()].1[attr.index()].clone())
        }
        fn attr_write(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
            self.check_live(inst)?;
            self.instances[inst.index()].1[attr.index()] = value;
            Ok(())
        }
        fn instances_of(&self, class: ClassId) -> Vec<InstId> {
            self.instances
                .iter()
                .enumerate()
                .filter(|(_, (c, _, alive))| *alive && *c == class)
                .map(|(i, _)| InstId::new(i as u32))
                .collect()
        }
        fn related(&self, inst: InstId, assoc: AssocId) -> Result<Vec<InstId>> {
            self.check_live(inst)?;
            Ok(self
                .links
                .iter()
                .filter(|(a, x, y)| *a == assoc && (*x == inst || *y == inst))
                .map(|(_, x, y)| if *x == inst { *y } else { *x })
                .collect())
        }
        fn relate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
            self.links.push((assoc, a, b));
            Ok(())
        }
        fn unrelate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
            let before = self.links.len();
            self.links.retain(|(x, p, q)| {
                !(*x == assoc && ((*p == a && *q == b) || (*p == b && *q == a)))
            });
            if self.links.len() == before {
                return Err(CoreError::runtime("no such link"));
            }
            Ok(())
        }
        fn send(
            &mut self,
            from: InstId,
            to: InstId,
            event: EventId,
            args: Vec<Value>,
        ) -> Result<()> {
            self.sent.push((from, to, event, args));
            Ok(())
        }
        fn send_actor(
            &mut self,
            _from: InstId,
            actor: ActorId,
            event: EventId,
            args: Vec<Value>,
        ) -> Result<()> {
            self.actor_sent.push((actor, event, args));
            Ok(())
        }
        fn send_delayed(
            &mut self,
            _from: InstId,
            to: InstId,
            event: EventId,
            _args: Vec<Value>,
            delay: i64,
        ) -> Result<()> {
            self.delayed.push((to, event, delay));
            Ok(())
        }
        fn cancel_delayed(&mut self, inst: InstId, event: EventId) -> Result<()> {
            self.delayed
                .retain(|(i, e, _)| !(*i == inst && *e == event));
            Ok(())
        }
        fn bridge_call(&mut self, actor: ActorId, func: &str, args: Vec<Value>) -> Result<Value> {
            let name = &self.domain.actor(actor).name;
            self.log.push(format!("{name}::{func}({args:?})"));
            Ok(Value::Int(args.len() as i64))
        }
    }

    fn test_domain() -> Domain {
        let mut d = Domain::new("t");
        d.classes.push(Class {
            name: "Counter".into(),
            attributes: vec![Attribute {
                name: "n".into(),
                ty: DataType::Int,
                default: Value::Int(0),
            }],
            events: vec![
                EventDecl {
                    name: "Tick".into(),
                    params: vec![],
                },
                EventDecl {
                    name: "Set".into(),
                    params: vec![("v".into(), DataType::Int)],
                },
            ],
            state_machine: None,
        });
        d.classes.push(Class {
            name: "Lamp".into(),
            attributes: vec![Attribute {
                name: "on".into(),
                ty: DataType::Bool,
                default: Value::Bool(false),
            }],
            events: vec![],
            state_machine: None,
        });
        d.associations.push(crate::model::Association {
            name: "R1".into(),
            from: ClassId::new(0),
            to: ClassId::new(1),
            from_mult: crate::model::Multiplicity::One,
            to_mult: crate::model::Multiplicity::Many,
        });
        d.actors.push(Actor {
            name: "ENV".into(),
            events: vec![EventDecl {
                name: "done".into(),
                params: vec![("code".into(), DataType::Int)],
            }],
            funcs: vec![crate::model::FuncDecl {
                name: "info".into(),
                params: vec![("msg".into(), DataType::Str)],
                ret: None,
            }],
        });
        d.reindex().unwrap();
        d
    }

    fn run(host: &mut MiniHost, self_inst: InstId, src: &str) -> Result<ExecCtx> {
        let block = parse_block(src).unwrap();
        let mut ctx = ExecCtx::new(self_inst, BTreeMap::new());
        run_block(host, &mut ctx, &block)?;
        Ok(ctx)
    }

    fn host_with_counter() -> (MiniHost, InstId) {
        let mut h = MiniHost::new(test_domain());
        let i = h.create(ClassId::new(0)).unwrap();
        (h, i)
    }

    #[test]
    fn assign_and_attrs() {
        let (mut h, i) = host_with_counter();
        run(&mut h, i, "self.n = self.n + 41; x = self.n + 1;").unwrap();
        assert_eq!(h.attr_read(i, AttrId::new(0)).unwrap(), Value::Int(41));
    }

    #[test]
    fn create_select_delete() {
        let (mut h, i) = host_with_counter();
        let ctx = run(
            &mut h,
            i,
            "a = create Lamp; b = create Lamp;\n\
             select many all from Lamp;\n\
             n = cardinality(all);\n\
             delete a;\n\
             select many rest from Lamp;\n\
             m = cardinality(rest);",
        )
        .unwrap();
        assert_eq!(ctx.locals["n"], Value::Int(2));
        assert_eq!(ctx.locals["m"], Value::Int(1));
    }

    #[test]
    fn select_with_where() {
        let (mut h, i) = host_with_counter();
        let ctx = run(
            &mut h,
            i,
            "a = create Lamp; b = create Lamp;\n\
             b.on = true;\n\
             select any lit from Lamp where selected.on;\n\
             select any dark from Lamp where not selected.on;\n\
             lit_found = not_empty(lit);",
        )
        .unwrap();
        assert_eq!(ctx.locals["lit_found"], Value::Bool(true));
        let Value::Inst(_, Some(lit)) = ctx.locals["lit"] else {
            panic!("lit should be bound")
        };
        assert_eq!(h.attr_read(lit, AttrId::new(0)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn select_any_empty_binds_empty_ref() {
        let (mut h, i) = host_with_counter();
        let ctx = run(&mut h, i, "select any l from Lamp; e = empty(l);").unwrap();
        assert_eq!(ctx.locals["e"], Value::Bool(true));
    }

    #[test]
    fn relate_navigate_unrelate() {
        let (mut h, i) = host_with_counter();
        let ctx = run(
            &mut h,
            i,
            "a = create Lamp; b = create Lamp;\n\
             relate self to a across R1;\n\
             relate self to b across R1;\n\
             lamps = self -> Lamp[R1];\n\
             n = cardinality(lamps);\n\
             unrelate self from a across R1;\n\
             m = cardinality(self -> Lamp[R1]);",
        )
        .unwrap();
        assert_eq!(ctx.locals["n"], Value::Int(2));
        assert_eq!(ctx.locals["m"], Value::Int(1));
    }

    #[test]
    fn navigation_wrong_class_is_error() {
        let (mut h, i) = host_with_counter();
        assert!(run(&mut h, i, "x = self -> Counter[R1];").is_err());
    }

    #[test]
    fn generate_to_instance_and_actor() {
        let (mut h, i) = host_with_counter();
        run(
            &mut h,
            i,
            "gen Set(7) to self;\n\
             gen Tick() to self after 10;\n\
             gen done(0) to ENV;",
        )
        .unwrap();
        assert_eq!(h.sent.len(), 1);
        assert_eq!(h.sent[0].2, EventId::new(1));
        assert_eq!(h.sent[0].3, vec![Value::Int(7)]);
        assert_eq!(h.delayed, vec![(i, EventId::new(0), 10)]);
        assert_eq!(h.actor_sent.len(), 1);
    }

    #[test]
    fn cancel_removes_delayed() {
        let (mut h, i) = host_with_counter();
        run(&mut h, i, "gen Tick() to self after 10; cancel Tick;").unwrap();
        assert!(h.delayed.is_empty());
    }

    #[test]
    fn wrong_arity_is_runtime_error() {
        let (mut h, i) = host_with_counter();
        assert!(run(&mut h, i, "gen Set() to self;").is_err());
        assert!(run(&mut h, i, "gen done() to ENV;").is_err());
    }

    #[test]
    fn control_flow_loops() {
        let (mut h, i) = host_with_counter();
        let ctx = run(
            &mut h,
            i,
            "total = 0; k = 0;\n\
             while (k < 5) { k = k + 1; if (k == 3) { continue; } total = total + k; }\n\
             count = 0;\n\
             a = create Lamp; b = create Lamp; c = create Lamp;\n\
             select many all from Lamp;\n\
             foreach l in all { count = count + 1; if (count == 2) { break; } }",
        )
        .unwrap();
        assert_eq!(ctx.locals["total"], Value::Int(1 + 2 + 4 + 5));
        assert_eq!(ctx.locals["count"], Value::Int(2));
    }

    #[test]
    fn return_stops_block() {
        let (mut h, i) = host_with_counter();
        let ctx = run(&mut h, i, "x = 1; return; x = 2;").unwrap();
        assert_eq!(ctx.locals["x"], Value::Int(1));
    }

    #[test]
    fn runaway_loop_exhausts_fuel() {
        let (mut h, i) = host_with_counter();
        let block = parse_block("while (true) { x = 1; }").unwrap();
        let mut ctx = ExecCtx::new(i, BTreeMap::new());
        ctx.fuel = 1000;
        let err = run_block(&mut h, &mut ctx, &block).unwrap_err();
        assert!(err.to_string().contains("fuel"));
    }

    #[test]
    fn bridge_call_reaches_host() {
        let (mut h, i) = host_with_counter();
        let ctx = run(&mut h, i, "ENV::info(\"hi\"); r = ENV::info(\"a\");").unwrap();
        assert_eq!(h.log.len(), 2);
        assert_eq!(ctx.locals["r"], Value::Int(1));
    }

    #[test]
    fn event_params_via_rcvd() {
        let (mut h, i) = host_with_counter();
        let block = parse_block("self.n = rcvd.v * 2;").unwrap();
        let mut params = BTreeMap::new();
        params.insert("v".to_string(), Value::Int(21));
        let mut ctx = ExecCtx::new(i, params);
        run_block(&mut h, &mut ctx, &block).unwrap();
        assert_eq!(h.attr_read(i, AttrId::new(0)).unwrap(), Value::Int(42));
    }

    #[test]
    fn dangling_reference_detected() {
        let (mut h, i) = host_with_counter();
        assert!(run(&mut h, i, "a = create Lamp; delete a; a.on = true;").is_err());
    }

    #[test]
    fn unknown_variable_is_resolution_error() {
        let (mut h, i) = host_with_counter();
        let err = run(&mut h, i, "x = nope + 1;").unwrap_err();
        assert!(matches!(
            err,
            CoreError::Unresolved {
                kind: "variable",
                ..
            }
        ));
    }

    #[test]
    fn steps_are_counted() {
        let (mut h, i) = host_with_counter();
        let ctx = run(&mut h, i, "x = 1;").unwrap();
        // one statement + two expression nodes (literal, implicit?) — at
        // minimum the statement and the literal burn fuel.
        assert!(ctx.steps >= 2);
    }
}
