//! The action-language evaluator, parameterised over an execution host.
//!
//! The paper's model compiler "may [implement the model] any manner it
//! chooses so long as the defined behavior is preserved" (§4). We make the
//! *defined behaviour* a single reusable artifact: this module executes
//! compiled action blocks (see [`code`](crate::code)) against the
//! [`ActionHost`] trait, and every execution platform in the workspace —
//! the abstract model interpreter (`xtuml-exec`), the generated-hardware
//! FSMs (`xtuml-mda` lowering onto `xtuml-rtl`) and the generated-software
//! tasks (`xtuml-mda` lowering onto `xtuml-swrt`) — implements
//! `ActionHost` over its own object store and signal transport.
//! Behavioural equivalence across partitions then reduces to the hosts'
//! transport semantics, which is exactly what the verification layer
//! checks.
//!
//! Actions execute from the slot-resolved IR, not the AST: variables live
//! in a dense frame (`Vec<Option<Value>>`), attributes/associations/events
//! are pre-resolved ids, so the per-dispatch cost is a plain tree walk
//! with no name lookups. Fuel accounting is unchanged from the AST
//! evaluator — one unit per statement and per expression node — so the
//! substrates' cost models see identical step counts.

use crate::code::{CAction, CExpr, CStmt, Slot};
use crate::error::{CoreError, Result};
use crate::ids::{ActorId, AssocId, AttrId, ClassId, EventId, InstId};
use crate::model::Domain;
use crate::value::{apply_binop, apply_unop, Value};

/// The services an execution platform provides to running actions.
///
/// Implementations must keep instance populations **per platform
/// partition**: a host only ever sees classes mapped to it, plus a
/// transport (`send*`) that may cross the partition boundary.
pub trait ActionHost {
    /// The domain model being executed (for name→id resolution).
    fn domain(&self) -> &Domain;

    /// Creates an instance of `class` in its initial state; returns its id.
    ///
    /// # Errors
    ///
    /// Implementations report resource exhaustion or out-of-partition
    /// classes as [`CoreError::Runtime`].
    fn create(&mut self, class: ClassId) -> Result<InstId>;

    /// Deletes an instance; subsequent access through the reference fails.
    ///
    /// # Errors
    ///
    /// Fails if the instance is unknown or already deleted.
    fn delete(&mut self, inst: InstId) -> Result<()>;

    /// The class of a live instance.
    ///
    /// # Errors
    ///
    /// Fails if the instance is unknown or deleted.
    fn class_of(&self, inst: InstId) -> Result<ClassId>;

    /// Reads an attribute.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    fn attr_read(&self, inst: InstId, attr: AttrId) -> Result<Value>;

    /// Writes an attribute.
    ///
    /// # Errors
    ///
    /// Fails on dangling references or a type mismatch.
    fn attr_write(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()>;

    /// All live instances of a class, in creation order.
    fn instances_of(&self, class: ClassId) -> Vec<InstId>;

    /// Instances linked to `inst` across `assoc`, in link order.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    fn related(&self, inst: InstId, assoc: AssocId) -> Result<Vec<InstId>>;

    /// Visits all live instances of a class in creation order without
    /// materialising a `Vec`. Hosts backed by an indexed store should
    /// override this (and [`ActionHost::first_instance_of`] /
    /// [`ActionHost::related_each`]) with allocation-free walks; the
    /// default delegates to [`ActionHost::instances_of`].
    fn each_instance(&self, class: ClassId, f: &mut dyn FnMut(InstId)) {
        for inst in self.instances_of(class) {
            f(inst);
        }
    }

    /// The first live instance of a class in creation order, if any
    /// (unfiltered `select any`).
    fn first_instance_of(&self, class: ClassId) -> Option<InstId> {
        self.instances_of(class).first().copied()
    }

    /// Visits the instances linked to `inst` across `assoc`, in link
    /// order, without materialising a `Vec`.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    fn related_each(&self, inst: InstId, assoc: AssocId, f: &mut dyn FnMut(InstId)) -> Result<()> {
        for t in self.related(inst, assoc)? {
            f(t);
        }
        Ok(())
    }

    /// Creates a link.
    ///
    /// # Errors
    ///
    /// Fails on dangling references or multiplicity violations.
    fn relate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()>;

    /// Removes a link.
    ///
    /// # Errors
    ///
    /// Fails if no such link exists.
    fn unrelate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()>;

    /// Sends a signal to an instance (possibly across the partition
    /// boundary; possibly to `self`).
    ///
    /// # Errors
    ///
    /// Fails on dangling references or queue overflow (platform-defined).
    fn send(&mut self, from: InstId, to: InstId, event: EventId, args: Vec<Value>) -> Result<()>;

    /// Sends a signal to an external actor — an *observable output*.
    ///
    /// # Errors
    ///
    /// Platform-defined.
    fn send_actor(
        &mut self,
        from: InstId,
        actor: ActorId,
        event: EventId,
        args: Vec<Value>,
    ) -> Result<()>;

    /// Schedules a signal to an instance after `delay` time units (the
    /// timer idiom: `gen Ev() to self after n;`).
    ///
    /// # Errors
    ///
    /// Platform-defined.
    fn send_delayed(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: Vec<Value>,
        delay: i64,
    ) -> Result<()>;

    /// Cancels pending delayed signals of the given event to `inst`.
    ///
    /// # Errors
    ///
    /// Platform-defined; cancelling when nothing is pending is *not* an
    /// error.
    fn cancel_delayed(&mut self, inst: InstId, event: EventId) -> Result<()>;

    /// Invokes a synchronous bridge function on an actor.
    ///
    /// # Errors
    ///
    /// Fails if the actor does not implement the function.
    fn bridge_call(&mut self, actor: ActorId, func: &str, args: Vec<Value>) -> Result<Value>;

    /// [`ActionHost::send`] with a pre-shared payload, passed by value:
    /// the bytecode VM's send ops hand over a pooled (or literal-table)
    /// `Arc<[Value]>`, and hosts whose signal queue stores `Arc` payloads
    /// should override this to move the `Arc` straight into the queue —
    /// zero per-send allocation *and* zero refcount traffic. The default
    /// delegates to [`ActionHost::send`].
    ///
    /// # Errors
    ///
    /// As for [`ActionHost::send`].
    fn send_arc(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: std::sync::Arc<[Value]>,
    ) -> Result<()> {
        self.send(from, to, event, args.to_vec())
    }

    /// [`ActionHost::send_actor`] with a pre-shared payload; see
    /// [`ActionHost::send_arc`].
    ///
    /// # Errors
    ///
    /// As for [`ActionHost::send_actor`].
    fn send_actor_arc(
        &mut self,
        from: InstId,
        actor: ActorId,
        event: EventId,
        args: std::sync::Arc<[Value]>,
    ) -> Result<()> {
        self.send_actor(from, actor, event, args.to_vec())
    }

    /// Pops a *uniquely-owned* payload buffer of exactly `len` slots from
    /// the host's recycling pool, if it keeps one. The bytecode VM fills
    /// every slot before handing the buffer to [`ActionHost::send_arc`],
    /// so hosts that recycle dispatched envelope payloads turn computed
    /// sends into zero-allocation operations. The default host keeps no
    /// pool.
    fn take_payload(&mut self, len: usize) -> Option<std::sync::Arc<[Value]>> {
        let _ = len;
        None
    }

    /// [`ActionHost::attr_write`] for a value whose type the caller has
    /// already proven statically — the bytecode lowering only emits this
    /// for fused constant stores the typechecker validated against the
    /// declared attribute type. Hosts with a type-checking store may skip
    /// the declared-type re-check; every liveness and missing-slot error
    /// must still be raised. The default stays fully checked.
    ///
    /// # Errors
    ///
    /// As for [`ActionHost::attr_write`], minus the type mismatch (which
    /// the caller guarantees cannot occur).
    fn attr_write_typed(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
        self.attr_write(inst, attr, value)
    }
}

/// Why a block stopped executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to the end.
    Completed,
    /// A `return;` statement fired.
    Returned,
}

/// Control-flow signal inside loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Broke,
    Continued,
    Returned,
}

/// Default fuel: maximum primitive steps per action block before the
/// interpreter assumes a runaway loop. Run-to-completion semantics make an
/// unbounded action block a model error, not a scheduling choice.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// Execution context for one run-to-completion action block.
#[derive(Debug)]
pub struct ExecCtx {
    /// The instance whose state action is running.
    pub self_inst: InstId,
    /// Static class of `self_inst` (from the compiled action).
    pub self_class: ClassId,
    /// The execution frame: event parameters in the leading slots, locals
    /// after them. `None` marks a slot not yet assigned.
    pub frame: Vec<Option<Value>>,
    /// Candidate binding for `selected` inside `where` clauses.
    pub(crate) selected: Option<Value>,
    /// Reusable candidate buffer for filtered selects: the filter needs
    /// `&mut host`, so candidates must be materialised before evaluation,
    /// but hot dispatch loops can hand the buffer back in (like `frame`)
    /// so steady-state filtered selects allocate nothing.
    pub scratch: Vec<InstId>,
    /// Primitive-step counter (statements + expression nodes); the
    /// substrates convert this into cycles.
    pub steps: u64,
    /// Remaining fuel; see [`DEFAULT_FUEL`].
    pub fuel: u64,
}

impl ExecCtx {
    /// Creates a context sized for `action`, with all slots unassigned.
    pub fn new(self_inst: InstId, action: &CAction) -> ExecCtx {
        ExecCtx::with_frame(self_inst, action.self_class, vec![None; action.frame_len()])
    }

    /// Creates a context over a caller-provided frame, allowing hot
    /// dispatch loops to reuse one frame allocation across steps. The
    /// frame must already be sized to the action's
    /// [`frame_len`](CAction::frame_len).
    pub fn with_frame(
        self_inst: InstId,
        self_class: ClassId,
        frame: Vec<Option<Value>>,
    ) -> ExecCtx {
        ExecCtx {
            self_inst,
            self_class,
            frame,
            selected: None,
            scratch: Vec::new(),
            steps: 0,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Fills the leading parameter slots from the triggering event's
    /// arguments.
    pub fn bind_args<I: IntoIterator<Item = Value>>(&mut self, args: I) {
        for (slot, v) in args.into_iter().enumerate() {
            self.frame[slot] = Some(v);
        }
    }

    #[inline(always)]
    pub(crate) fn burn(&mut self, n: u64) -> Result<()> {
        self.steps += n;
        if self.fuel < n {
            return Err(CoreError::runtime(
                "action block exceeded its fuel limit (runaway loop?)",
            ));
        }
        self.fuel -= n;
        Ok(())
    }
}

/// Executes a compiled action to completion against `host`.
///
/// Returns the outcome and leaves the accumulated step count in
/// `ctx.steps` (the substrates' cost models read it).
///
/// # Errors
///
/// Propagates runtime errors ([`CoreError::Runtime`]) and unbound-slot
/// reads ([`CoreError::Unresolved`]) from the statements executed.
pub fn run_code<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    action: &CAction,
) -> Result<Outcome> {
    match exec_stmts(host, ctx, action, &action.code)? {
        Flow::Returned => Ok(Outcome::Returned),
        Flow::Broke | Flow::Continued => {
            Err(CoreError::runtime("`break`/`continue` outside of a loop"))
        }
        Flow::Normal => Ok(Outcome::Completed),
    }
}

fn exec_stmts<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    action: &CAction,
    stmts: &[CStmt],
) -> Result<Flow> {
    for stmt in stmts {
        match exec_stmt(host, ctx, action, stmt)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

fn exec_stmt<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    action: &CAction,
    stmt: &CStmt,
) -> Result<Flow> {
    ctx.burn(1)?;
    match stmt {
        CStmt::AssignSlot { slot, expr } => {
            let v = eval(host, ctx, action, expr)?;
            ctx.frame[*slot] = Some(v);
            Ok(Flow::Normal)
        }
        CStmt::AssignAttr { base, attr, expr } => {
            let v = eval(host, ctx, action, expr)?;
            // Same `self.x` fast path as `CExpr::Attr` in [`eval`].
            let inst = if matches!(base, CExpr::SelfRef) {
                ctx.burn(1)?;
                ctx.self_inst
            } else {
                eval(host, ctx, action, base)?.as_inst()?
            };
            host.attr_write(inst, *attr, v)?;
            Ok(Flow::Normal)
        }
        CStmt::Create { slot, class } => {
            let inst = host.create(*class)?;
            ctx.frame[*slot] = Some(Value::Inst(*class, Some(inst)));
            Ok(Flow::Normal)
        }
        CStmt::Delete { expr } => {
            let inst = eval(host, ctx, action, expr)?.as_inst()?;
            host.delete(inst)?;
            Ok(Flow::Normal)
        }
        CStmt::SelectAny {
            slot,
            class,
            filter,
        } => {
            let picked = match filter {
                None => {
                    let first = host.first_instance_of(*class);
                    if first.is_some() {
                        ctx.burn(1)?;
                    }
                    first
                }
                Some(f) => select_first(host, ctx, action, *class, f)?,
            };
            ctx.frame[*slot] = Some(Value::Inst(*class, picked));
            Ok(Flow::Normal)
        }
        CStmt::SelectMany {
            slot,
            class,
            filter,
        } => {
            let matched = match filter {
                None => {
                    let all = host.instances_of(*class);
                    ctx.burn(all.len() as u64)?;
                    all
                }
                Some(f) => select_filtered(host, ctx, action, *class, f)?,
            };
            ctx.frame[*slot] = Some(Value::Set(*class, matched));
            Ok(Flow::Normal)
        }
        CStmt::Relate { a, b, assoc } => {
            let ia = eval(host, ctx, action, a)?.as_inst()?;
            let ib = eval(host, ctx, action, b)?.as_inst()?;
            host.relate(ia, ib, *assoc)?;
            Ok(Flow::Normal)
        }
        CStmt::Unrelate { a, b, assoc } => {
            let ia = eval(host, ctx, action, a)?.as_inst()?;
            let ib = eval(host, ctx, action, b)?.as_inst()?;
            host.unrelate(ia, ib, *assoc)?;
            Ok(Flow::Normal)
        }
        CStmt::GenInst {
            event,
            args,
            target,
            delay,
        } => {
            match delay {
                None => {
                    // Hot path: build the payload in a pooled buffer
                    // (same recycling the bytecode VM's sends use), so
                    // steady-state frame-interpreted sends allocate
                    // nothing either.
                    let payload = eval_payload(host, ctx, action, args)?;
                    let to = eval(host, ctx, action, target)?.as_inst()?;
                    host.send_arc(ctx.self_inst, to, *event, payload)?;
                }
                Some(d) => {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(eval(host, ctx, action, a)?);
                    }
                    let to = eval(host, ctx, action, target)?.as_inst()?;
                    let ticks = eval(host, ctx, action, d)?.as_int()?;
                    if ticks < 0 {
                        return Err(CoreError::runtime("negative signal delay"));
                    }
                    host.send_delayed(ctx.self_inst, to, *event, vals, ticks)?;
                }
            }
            Ok(Flow::Normal)
        }
        CStmt::GenActor { actor, event, args } => {
            let payload = eval_payload(host, ctx, action, args)?;
            host.send_actor_arc(ctx.self_inst, *actor, *event, payload)?;
            Ok(Flow::Normal)
        }
        CStmt::Cancel { event } => {
            host.cancel_delayed(ctx.self_inst, *event)?;
            Ok(Flow::Normal)
        }
        CStmt::If { arms, otherwise } => {
            for (cond, body) in arms {
                if eval(host, ctx, action, cond)?.as_bool()? {
                    return exec_stmts(host, ctx, action, body);
                }
            }
            if let Some(body) = otherwise {
                return exec_stmts(host, ctx, action, body);
            }
            Ok(Flow::Normal)
        }
        CStmt::While { cond, body } => {
            while eval(host, ctx, action, cond)?.as_bool()? {
                ctx.burn(1)?;
                match exec_stmts(host, ctx, action, body)? {
                    Flow::Broke => break,
                    Flow::Returned => return Ok(Flow::Returned),
                    Flow::Normal | Flow::Continued => {}
                }
            }
            Ok(Flow::Normal)
        }
        CStmt::ForEach { slot, set, body } => {
            let set_v = eval(host, ctx, action, set)?;
            let Value::Set(class, items) = set_v else {
                return Err(CoreError::runtime(format!(
                    "foreach needs a set, got {}",
                    set_v.data_type()
                )));
            };
            for item in items {
                ctx.burn(1)?;
                ctx.frame[*slot] = Some(Value::Inst(class, Some(item)));
                match exec_stmts(host, ctx, action, body)? {
                    Flow::Broke => break,
                    Flow::Returned => return Ok(Flow::Returned),
                    Flow::Normal | Flow::Continued => {}
                }
            }
            Ok(Flow::Normal)
        }
        CStmt::Break => Ok(Flow::Broke),
        CStmt::Continue => Ok(Flow::Continued),
        CStmt::Return => Ok(Flow::Returned),
        CStmt::ExprStmt(expr) => {
            eval(host, ctx, action, expr)?;
            Ok(Flow::Normal)
        }
    }
}

/// `select any … where f`: first candidate passing the filter.
fn select_first<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    action: &CAction,
    class: ClassId,
    filter: &CExpr,
) -> Result<Option<InstId>> {
    // The filter needs `&mut host`, so candidates must be materialised
    // before evaluation (the host cannot be borrowed while iterating it)
    // — into the reusable scratch buffer, not a fresh `Vec`.
    let mut cands = std::mem::take(&mut ctx.scratch);
    cands.clear();
    host.each_instance(class, &mut |i| cands.push(i));
    let mut picked = None;
    for &inst in &cands {
        ctx.burn(1)?;
        let saved = ctx.selected.replace(Value::Inst(class, Some(inst)));
        let keep = eval(host, ctx, action, filter).and_then(|v| v.as_bool());
        ctx.selected = saved;
        match keep {
            Ok(true) => {
                picked = Some(inst);
                break;
            }
            Ok(false) => {}
            Err(e) => {
                ctx.scratch = cands;
                return Err(e);
            }
        }
    }
    ctx.scratch = cands;
    Ok(picked)
}

/// `select many … where f`: all candidates passing the filter.
fn select_filtered<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    action: &CAction,
    class: ClassId,
    filter: &CExpr,
) -> Result<Vec<InstId>> {
    // The output `Vec` is the result (it becomes a `Value::Set`), but the
    // candidate list goes through the reusable scratch buffer.
    let mut cands = std::mem::take(&mut ctx.scratch);
    cands.clear();
    host.each_instance(class, &mut |i| cands.push(i));
    let mut out = Vec::new();
    for &inst in &cands {
        ctx.burn(1)?;
        let saved = ctx.selected.replace(Value::Inst(class, Some(inst)));
        let keep = eval(host, ctx, action, filter).and_then(|v| v.as_bool());
        ctx.selected = saved;
        match keep {
            Ok(true) => out.push(inst),
            Ok(false) => {}
            Err(e) => {
                ctx.scratch = cands;
                return Err(e);
            }
        }
    }
    ctx.scratch = cands;
    Ok(out)
}

/// Evaluates send arguments into an `Arc<[Value]>` payload, reusing a
/// uniquely-owned buffer from the host's payload pool when one of the
/// right arity is available, and allocating otherwise. Argument
/// evaluation order (and therefore burn/error order) matches the plain
/// `Vec` path exactly.
fn eval_payload<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    action: &CAction,
    args: &[CExpr],
) -> Result<std::sync::Arc<[Value]>> {
    match host.take_payload(args.len()) {
        Some(mut arc) => {
            for (i, a) in args.iter().enumerate() {
                let v = eval(host, ctx, action, a)?;
                std::sync::Arc::get_mut(&mut arc).expect("pooled payloads are uniquely owned")[i] =
                    v;
            }
            Ok(arc)
        }
        None => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(host, ctx, action, a)?);
            }
            Ok(std::sync::Arc::from(vals))
        }
    }
}

fn unbound_slot(action: &CAction, slot: Slot) -> CoreError {
    let kind = if slot < action.layout.params() {
        "event parameter"
    } else {
        "variable"
    };
    CoreError::unresolved(kind, action.layout.name(slot).to_owned())
}

/// Evaluates a compiled expression.
///
/// # Errors
///
/// Propagates runtime and unbound-slot errors.
pub fn eval<H: ActionHost>(
    host: &mut H,
    ctx: &mut ExecCtx,
    action: &CAction,
    expr: &CExpr,
) -> Result<Value> {
    ctx.burn(1)?;
    match expr {
        CExpr::Lit(v) => Ok(v.clone()),
        CExpr::Slot(slot) => ctx.frame[*slot]
            .clone()
            .ok_or_else(|| unbound_slot(action, *slot)),
        CExpr::SelfRef => Ok(Value::Inst(ctx.self_class, Some(ctx.self_inst))),
        CExpr::Selected => ctx
            .selected
            .clone()
            .ok_or_else(|| CoreError::runtime("`selected` used outside a `where` clause")),
        CExpr::Attr(base, attr) => {
            // `self.x` is the dominant shape: burn the base node's step
            // without materialising a `Value::Inst` round trip.
            let inst = if matches!(base.as_ref(), CExpr::SelfRef) {
                ctx.burn(1)?;
                ctx.self_inst
            } else {
                eval(host, ctx, action, base)?.as_inst()?
            };
            host.attr_read(inst, *attr)
        }
        CExpr::Nav {
            base,
            assoc,
            target,
        } => {
            let base_v = eval(host, ctx, action, base)?;
            let mut out: Vec<InstId> = Vec::new();
            let mut visit = |src: InstId, host: &H| {
                host.related_each(src, *assoc, &mut |t| {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                })
            };
            match base_v {
                Value::Inst(_, Some(i)) => visit(i, host)?,
                Value::Inst(_, None) => {}
                Value::Set(_, items) => {
                    for src in items {
                        visit(src, host)?;
                    }
                }
                other => {
                    return Err(CoreError::runtime(format!(
                        "cannot navigate from {}",
                        other.data_type()
                    )))
                }
            }
            Ok(Value::Set(*target, out))
        }
        CExpr::Unary(op, e) => {
            // Slot operands are read by reference: `any(set)` must not
            // clone the whole set to pick one element. Burn the step the
            // slot read would have burned.
            if let CExpr::Slot(slot) = e.as_ref() {
                ctx.burn(1)?;
                let v = ctx.frame[*slot]
                    .as_ref()
                    .ok_or_else(|| unbound_slot(action, *slot))?;
                return apply_unop(*op, v);
            }
            let v = eval(host, ctx, action, e)?;
            apply_unop(*op, &v)
        }
        CExpr::Binary(op, a, b) => {
            let va = eval(host, ctx, action, a)?;
            let vb = eval(host, ctx, action, b)?;
            apply_binop(*op, &va, &vb)
        }
        CExpr::Bridge { actor, func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(host, ctx, action, a)?);
            }
            host.bridge_call(*actor, func, vals)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::compile_block;
    use crate::model::{Actor, Attribute, Class, EventDecl};
    use crate::parse::parse_block;
    use crate::value::DataType;

    /// A minimal in-memory host for interpreter unit tests.
    struct MiniHost {
        domain: Domain,
        // (class, attrs, alive)
        instances: Vec<(ClassId, Vec<Value>, bool)>,
        links: Vec<(AssocId, InstId, InstId)>,
        sent: Vec<(InstId, InstId, EventId, Vec<Value>)>,
        actor_sent: Vec<(ActorId, EventId, Vec<Value>)>,
        delayed: Vec<(InstId, EventId, i64)>,
        log: Vec<String>,
    }

    impl MiniHost {
        fn new(domain: Domain) -> MiniHost {
            MiniHost {
                domain,
                instances: Vec::new(),
                links: Vec::new(),
                sent: Vec::new(),
                actor_sent: Vec::new(),
                delayed: Vec::new(),
                log: Vec::new(),
            }
        }

        fn check_live(&self, inst: InstId) -> Result<()> {
            match self.instances.get(inst.index()) {
                Some((_, _, true)) => Ok(()),
                _ => Err(CoreError::runtime(format!("dangling instance {inst}"))),
            }
        }
    }

    impl ActionHost for MiniHost {
        fn domain(&self) -> &Domain {
            &self.domain
        }
        fn create(&mut self, class: ClassId) -> Result<InstId> {
            let attrs = self
                .domain
                .class(class)
                .attributes
                .iter()
                .map(|a| a.default.clone())
                .collect();
            self.instances.push((class, attrs, true));
            Ok(InstId::new(self.instances.len() as u32 - 1))
        }
        fn delete(&mut self, inst: InstId) -> Result<()> {
            self.check_live(inst)?;
            self.instances[inst.index()].2 = false;
            Ok(())
        }
        fn class_of(&self, inst: InstId) -> Result<ClassId> {
            self.check_live(inst)?;
            Ok(self.instances[inst.index()].0)
        }
        fn attr_read(&self, inst: InstId, attr: AttrId) -> Result<Value> {
            self.check_live(inst)?;
            Ok(self.instances[inst.index()].1[attr.index()].clone())
        }
        fn attr_write(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
            self.check_live(inst)?;
            self.instances[inst.index()].1[attr.index()] = value;
            Ok(())
        }
        fn instances_of(&self, class: ClassId) -> Vec<InstId> {
            self.instances
                .iter()
                .enumerate()
                .filter(|(_, (c, _, alive))| *alive && *c == class)
                .map(|(i, _)| InstId::new(i as u32))
                .collect()
        }
        fn related(&self, inst: InstId, assoc: AssocId) -> Result<Vec<InstId>> {
            self.check_live(inst)?;
            Ok(self
                .links
                .iter()
                .filter(|(a, x, y)| *a == assoc && (*x == inst || *y == inst))
                .map(|(_, x, y)| if *x == inst { *y } else { *x })
                .collect())
        }
        fn relate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
            self.links.push((assoc, a, b));
            Ok(())
        }
        fn unrelate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
            let before = self.links.len();
            self.links.retain(|(x, p, q)| {
                !(*x == assoc && ((*p == a && *q == b) || (*p == b && *q == a)))
            });
            if self.links.len() == before {
                return Err(CoreError::runtime("no such link"));
            }
            Ok(())
        }
        fn send(
            &mut self,
            from: InstId,
            to: InstId,
            event: EventId,
            args: Vec<Value>,
        ) -> Result<()> {
            self.check_live(to)?;
            self.sent.push((from, to, event, args));
            Ok(())
        }
        fn send_actor(
            &mut self,
            _from: InstId,
            actor: ActorId,
            event: EventId,
            args: Vec<Value>,
        ) -> Result<()> {
            self.actor_sent.push((actor, event, args));
            Ok(())
        }
        fn send_delayed(
            &mut self,
            _from: InstId,
            to: InstId,
            event: EventId,
            _args: Vec<Value>,
            delay: i64,
        ) -> Result<()> {
            self.delayed.push((to, event, delay));
            Ok(())
        }
        fn cancel_delayed(&mut self, inst: InstId, event: EventId) -> Result<()> {
            self.delayed
                .retain(|(i, e, _)| !(*i == inst && *e == event));
            Ok(())
        }
        fn bridge_call(&mut self, actor: ActorId, func: &str, args: Vec<Value>) -> Result<Value> {
            let name = &self.domain.actor(actor).name;
            self.log.push(format!("{name}::{func}({args:?})"));
            Ok(Value::Int(args.len() as i64))
        }
    }

    fn test_domain() -> Domain {
        let mut d = Domain::new("t");
        d.classes.push(Class {
            name: "Counter".into(),
            attributes: vec![Attribute {
                name: "n".into(),
                ty: DataType::Int,
                default: Value::Int(0),
            }],
            events: vec![
                EventDecl {
                    name: "Tick".into(),
                    params: vec![],
                },
                EventDecl {
                    name: "Set".into(),
                    params: vec![("v".into(), DataType::Int)],
                },
            ],
            state_machine: None,
        });
        d.classes.push(Class {
            name: "Lamp".into(),
            attributes: vec![Attribute {
                name: "on".into(),
                ty: DataType::Bool,
                default: Value::Bool(false),
            }],
            events: vec![],
            state_machine: None,
        });
        d.associations.push(crate::model::Association {
            name: "R1".into(),
            from: ClassId::new(0),
            to: ClassId::new(1),
            from_mult: crate::model::Multiplicity::One,
            to_mult: crate::model::Multiplicity::Many,
        });
        d.actors.push(Actor {
            name: "ENV".into(),
            events: vec![EventDecl {
                name: "done".into(),
                params: vec![("code".into(), DataType::Int)],
            }],
            funcs: vec![crate::model::FuncDecl {
                name: "info".into(),
                params: vec![("msg".into(), DataType::Str)],
                ret: None,
            }],
        });
        d.reindex().unwrap();
        d
    }

    /// A compiled-and-executed block plus its final frame, with name-based
    /// access for assertions.
    #[derive(Debug)]
    struct Run {
        action: CAction,
        ctx: ExecCtx,
    }

    impl Run {
        fn local(&self, name: &str) -> Value {
            let slot = self
                .action
                .layout
                .slot(name)
                .unwrap_or_else(|| panic!("no slot for `{name}`"));
            self.ctx.frame[slot]
                .clone()
                .unwrap_or_else(|| panic!("`{name}` never assigned"))
        }
    }

    fn run(host: &mut MiniHost, self_inst: InstId, src: &str) -> Result<Run> {
        let block = parse_block(src).unwrap();
        let self_class = host.class_of(self_inst)?;
        let action = compile_block(&host.domain, self_class, &[], &block)?;
        let mut ctx = ExecCtx::new(self_inst, &action);
        run_code(host, &mut ctx, &action)?;
        Ok(Run { action, ctx })
    }

    fn host_with_counter() -> (MiniHost, InstId) {
        let mut h = MiniHost::new(test_domain());
        let i = h.create(ClassId::new(0)).unwrap();
        (h, i)
    }

    #[test]
    fn assign_and_attrs() {
        let (mut h, i) = host_with_counter();
        run(&mut h, i, "self.n = self.n + 41; x = self.n + 1;").unwrap();
        assert_eq!(h.attr_read(i, AttrId::new(0)).unwrap(), Value::Int(41));
    }

    #[test]
    fn create_select_delete() {
        let (mut h, i) = host_with_counter();
        let r = run(
            &mut h,
            i,
            "a = create Lamp; b = create Lamp;\n\
             select many all from Lamp;\n\
             n = cardinality(all);\n\
             delete a;\n\
             select many rest from Lamp;\n\
             m = cardinality(rest);",
        )
        .unwrap();
        assert_eq!(r.local("n"), Value::Int(2));
        assert_eq!(r.local("m"), Value::Int(1));
    }

    #[test]
    fn select_with_where() {
        let (mut h, i) = host_with_counter();
        let r = run(
            &mut h,
            i,
            "a = create Lamp; b = create Lamp;\n\
             b.on = true;\n\
             select any lit from Lamp where selected.on;\n\
             select any dark from Lamp where not selected.on;\n\
             lit_found = not_empty(lit);",
        )
        .unwrap();
        assert_eq!(r.local("lit_found"), Value::Bool(true));
        let Value::Inst(_, Some(lit)) = r.local("lit") else {
            panic!("lit should be bound")
        };
        assert_eq!(h.attr_read(lit, AttrId::new(0)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn select_any_empty_binds_empty_ref() {
        let (mut h, i) = host_with_counter();
        let r = run(&mut h, i, "select any l from Lamp; e = empty(l);").unwrap();
        assert_eq!(r.local("e"), Value::Bool(true));
    }

    #[test]
    fn relate_navigate_unrelate() {
        let (mut h, i) = host_with_counter();
        let r = run(
            &mut h,
            i,
            "a = create Lamp; b = create Lamp;\n\
             relate self to a across R1;\n\
             relate self to b across R1;\n\
             lamps = self -> Lamp[R1];\n\
             n = cardinality(lamps);\n\
             unrelate self from a across R1;\n\
             m = cardinality(self -> Lamp[R1]);",
        )
        .unwrap();
        assert_eq!(r.local("n"), Value::Int(2));
        assert_eq!(r.local("m"), Value::Int(1));
    }

    #[test]
    fn navigation_wrong_class_is_error() {
        let (mut h, i) = host_with_counter();
        assert!(run(&mut h, i, "x = self -> Counter[R1];").is_err());
    }

    #[test]
    fn generate_to_instance_and_actor() {
        let (mut h, i) = host_with_counter();
        run(
            &mut h,
            i,
            "gen Set(7) to self;\n\
             gen Tick() to self after 10;\n\
             gen done(0) to ENV;",
        )
        .unwrap();
        assert_eq!(h.sent.len(), 1);
        assert_eq!(h.sent[0].2, EventId::new(1));
        assert_eq!(h.sent[0].3, vec![Value::Int(7)]);
        assert_eq!(h.delayed, vec![(i, EventId::new(0), 10)]);
        assert_eq!(h.actor_sent.len(), 1);
    }

    #[test]
    fn cancel_removes_delayed() {
        let (mut h, i) = host_with_counter();
        run(&mut h, i, "gen Tick() to self after 10; cancel Tick;").unwrap();
        assert!(h.delayed.is_empty());
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let (mut h, i) = host_with_counter();
        assert!(run(&mut h, i, "gen Set() to self;").is_err());
        assert!(run(&mut h, i, "gen done() to ENV;").is_err());
    }

    #[test]
    fn control_flow_loops() {
        let (mut h, i) = host_with_counter();
        let r = run(
            &mut h,
            i,
            "total = 0; k = 0;\n\
             while (k < 5) { k = k + 1; if (k == 3) { continue; } total = total + k; }\n\
             count = 0;\n\
             a = create Lamp; b = create Lamp; c = create Lamp;\n\
             select many all from Lamp;\n\
             foreach l in all { count = count + 1; if (count == 2) { break; } }",
        )
        .unwrap();
        assert_eq!(r.local("total"), Value::Int(1 + 2 + 4 + 5));
        assert_eq!(r.local("count"), Value::Int(2));
    }

    #[test]
    fn return_stops_block() {
        let (mut h, i) = host_with_counter();
        let r = run(&mut h, i, "x = 1; return; x = 2;").unwrap();
        assert_eq!(r.local("x"), Value::Int(1));
    }

    #[test]
    fn runaway_loop_exhausts_fuel() {
        let (mut h, i) = host_with_counter();
        let block = parse_block("while (true) { x = 1; }").unwrap();
        let action = compile_block(&h.domain, ClassId::new(0), &[], &block).unwrap();
        let mut ctx = ExecCtx::new(i, &action);
        ctx.fuel = 1000;
        let err = run_code(&mut h, &mut ctx, &action).unwrap_err();
        assert!(err.to_string().contains("fuel"));
    }

    #[test]
    fn bridge_call_reaches_host() {
        let (mut h, i) = host_with_counter();
        let r = run(&mut h, i, "ENV::info(\"hi\"); r = ENV::info(\"a\");").unwrap();
        assert_eq!(h.log.len(), 2);
        assert_eq!(r.local("r"), Value::Int(1));
    }

    #[test]
    fn event_params_via_rcvd() {
        let (mut h, i) = host_with_counter();
        let block = parse_block("self.n = rcvd.v * 2;").unwrap();
        let action = compile_block(
            &h.domain,
            ClassId::new(0),
            &[("v".to_owned(), DataType::Int)],
            &block,
        )
        .unwrap();
        let mut ctx = ExecCtx::new(i, &action);
        ctx.bind_args([Value::Int(21)]);
        run_code(&mut h, &mut ctx, &action).unwrap();
        assert_eq!(h.attr_read(i, AttrId::new(0)).unwrap(), Value::Int(42));
    }

    #[test]
    fn unbound_param_read_is_resolution_error() {
        let (mut h, i) = host_with_counter();
        let block = parse_block("self.n = rcvd.v * 2;").unwrap();
        let action = compile_block(
            &h.domain,
            ClassId::new(0),
            &[("v".to_owned(), DataType::Int)],
            &block,
        )
        .unwrap();
        // No arguments bound: the parameter slot stays empty.
        let mut ctx = ExecCtx::new(i, &action);
        let err = run_code(&mut h, &mut ctx, &action).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Unresolved {
                kind: "event parameter",
                ..
            }
        ));
    }

    #[test]
    fn dangling_reference_detected() {
        let (mut h, i) = host_with_counter();
        assert!(run(&mut h, i, "a = create Lamp; delete a; a.on = true;").is_err());
    }

    #[test]
    fn unknown_variable_is_resolution_error() {
        let (mut h, i) = host_with_counter();
        let err = run(&mut h, i, "x = nope + 1;").unwrap_err();
        assert!(matches!(
            err,
            CoreError::Unresolved {
                kind: "variable",
                ..
            }
        ));
    }

    #[test]
    fn use_before_assignment_is_a_runtime_resolution_error() {
        // Flow-insensitive compilation allocates the slot, but reading it
        // before any assignment executed must still fail, as the
        // name-resolving evaluator did.
        let (mut h, i) = host_with_counter();
        let err = run(
            &mut h,
            i,
            "if (false) { x = 1; }\n\
             y = x + 1;",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Unresolved {
                kind: "variable",
                ..
            }
        ));
    }

    #[test]
    fn steps_are_counted() {
        let (mut h, i) = host_with_counter();
        let r = run(&mut h, i, "x = 1;").unwrap();
        // one statement + the literal expression node at minimum.
        assert!(r.ctx.steps >= 2);
    }
}
