//! Fluent, programmatic construction of domains.
//!
//! The builder accepts action bodies as source text (parsed with
//! [`crate::parse`]) or as pre-built [`Block`]s, resolves all names, and
//! validates the result (structure + types) before handing out a
//! [`Domain`]. A model that leaves [`DomainBuilder::build`] successfully is
//! executable.

use crate::action::Block;
use crate::error::{CoreError, Result};
use crate::ids::{EventId, StateId};
use crate::model::{
    Actor, Association, Attribute, Class, Domain, EventDecl, FuncDecl, Multiplicity, State,
    StateMachine, Transition, TransitionTarget,
};
use crate::parse;
use crate::validate;
use crate::value::{DataType, Value};

/// Action body supplied either as source text or as an AST.
#[derive(Debug, Clone)]
enum Body {
    Src(String),
    Ast(Block),
}

#[derive(Debug, Clone)]
struct StateDecl {
    name: String,
    body: Body,
}

#[derive(Debug, Clone)]
enum TargetDecl {
    To(String),
    Ignore,
}

#[derive(Debug, Clone)]
struct TransDecl {
    from: String,
    event: String,
    target: TargetDecl,
}

/// Builder for one class; obtained from [`DomainBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder {
    name: String,
    attrs: Vec<Attribute>,
    events: Vec<EventDecl>,
    states: Vec<StateDecl>,
    initial: Option<String>,
    transitions: Vec<TransDecl>,
}

impl ClassBuilder {
    fn new(name: &str) -> ClassBuilder {
        ClassBuilder {
            name: name.to_owned(),
            attrs: Vec::new(),
            events: Vec::new(),
            states: Vec::new(),
            initial: None,
            transitions: Vec::new(),
        }
    }

    /// Declares an attribute with the type's zero default.
    pub fn attr(&mut self, name: &str, ty: DataType) -> &mut Self {
        self.attr_default(name, ty, Value::default_for(ty))
    }

    /// Declares an attribute with an explicit default value.
    pub fn attr_default(&mut self, name: &str, ty: DataType, default: Value) -> &mut Self {
        self.attrs.push(Attribute {
            name: name.to_owned(),
            ty,
            default,
        });
        self
    }

    /// Declares a signal this class's instances can receive.
    pub fn event(&mut self, name: &str, params: &[(&str, DataType)]) -> &mut Self {
        self.events.push(EventDecl {
            name: name.to_owned(),
            params: params.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
        });
        self
    }

    /// Declares a state whose entry action is given as source text.
    pub fn state(&mut self, name: &str, action_src: &str) -> &mut Self {
        self.states.push(StateDecl {
            name: name.to_owned(),
            body: Body::Src(action_src.to_owned()),
        });
        self
    }

    /// Declares a state whose entry action is a pre-built block.
    pub fn state_block(&mut self, name: &str, action: Block) -> &mut Self {
        self.states.push(StateDecl {
            name: name.to_owned(),
            body: Body::Ast(action),
        });
        self
    }

    /// Selects the initial state (required once any state is declared).
    pub fn initial(&mut self, name: &str) -> &mut Self {
        self.initial = Some(name.to_owned());
        self
    }

    /// Declares a transition row `from --event--> to`.
    pub fn transition(&mut self, from: &str, event: &str, to: &str) -> &mut Self {
        self.transitions.push(TransDecl {
            from: from.to_owned(),
            event: event.to_owned(),
            target: TargetDecl::To(to.to_owned()),
        });
        self
    }

    /// Declares that `event` is silently consumed in `state`.
    pub fn ignore(&mut self, state: &str, event: &str) -> &mut Self {
        self.transitions.push(TransDecl {
            from: state.to_owned(),
            event: event.to_owned(),
            target: TargetDecl::Ignore,
        });
        self
    }
}

/// Builder for one actor; obtained from [`DomainBuilder::actor`].
#[derive(Debug)]
pub struct ActorBuilder {
    name: String,
    events: Vec<EventDecl>,
    funcs: Vec<FuncDecl>,
}

impl ActorBuilder {
    fn new(name: &str) -> ActorBuilder {
        ActorBuilder {
            name: name.to_owned(),
            events: Vec::new(),
            funcs: Vec::new(),
        }
    }

    /// Declares a signal the domain may send to this actor.
    pub fn event(&mut self, name: &str, params: &[(&str, DataType)]) -> &mut Self {
        self.events.push(EventDecl {
            name: name.to_owned(),
            params: params.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
        });
        self
    }

    /// Declares a synchronous bridge function with a return value.
    pub fn func(
        &mut self,
        name: &str,
        params: &[(&str, DataType)],
        ret: Option<DataType>,
    ) -> &mut Self {
        self.funcs.push(FuncDecl {
            name: name.to_owned(),
            params: params.iter().map(|(n, t)| ((*n).to_owned(), *t)).collect(),
            ret,
        });
        self
    }
}

/// Builds a [`Domain`] incrementally; see the crate-level example.
#[derive(Debug)]
pub struct DomainBuilder {
    name: String,
    classes: Vec<ClassBuilder>,
    assocs: Vec<(String, String, Multiplicity, String, Multiplicity)>,
    actors: Vec<ActorBuilder>,
}

impl DomainBuilder {
    /// Starts a new domain.
    pub fn new(name: &str) -> DomainBuilder {
        DomainBuilder {
            name: name.to_owned(),
            classes: Vec::new(),
            assocs: Vec::new(),
            actors: Vec::new(),
        }
    }

    /// Adds a class and returns its builder.
    pub fn class(&mut self, name: &str) -> &mut ClassBuilder {
        self.classes.push(ClassBuilder::new(name));
        self.classes.last_mut().expect("just pushed")
    }

    /// Adds an actor and returns its builder.
    pub fn actor(&mut self, name: &str) -> &mut ActorBuilder {
        self.actors.push(ActorBuilder::new(name));
        self.actors.last_mut().expect("just pushed")
    }

    /// Declares an association `name: from (fm) -- (tm) to`.
    pub fn association(
        &mut self,
        name: &str,
        from: &str,
        from_mult: Multiplicity,
        to: &str,
        to_mult: Multiplicity,
    ) -> &mut Self {
        self.assocs.push((
            name.to_owned(),
            from.to_owned(),
            from_mult,
            to.to_owned(),
            to_mult,
        ));
        self
    }

    /// Resolves names, indexes transition tables, validates structure and
    /// type-checks every action block.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] found: parse errors in action text,
    /// unresolved names, duplicate declarations, structural validation
    /// failures or type errors.
    pub fn build(self) -> Result<Domain> {
        let domain = self.build_unvalidated()?;
        validate::validate(&domain)?;
        Ok(domain)
    }

    /// Like [`DomainBuilder::build`], but stops after name resolution and
    /// transition-table indexing, **without** running
    /// [`validate::validate`]. Lint drivers use this so that structural
    /// and type findings can be *accumulated* over the whole model
    /// (via [`validate::validate_into`]) instead of bailing at the first.
    ///
    /// # Errors
    ///
    /// Returns parse errors in action text, unresolved names in
    /// transitions/associations and duplicate top-level names — defects
    /// that leave no coherent model to lint.
    pub fn build_unvalidated(self) -> Result<Domain> {
        let mut domain = Domain::new(self.name);
        let actor_names: std::collections::BTreeSet<String> =
            self.actors.iter().map(|a| a.name.clone()).collect();

        for ab in self.actors {
            domain.actors.push(Actor {
                name: ab.name,
                events: ab.events,
                funcs: ab.funcs,
            });
        }

        for cb in &self.classes {
            let state_machine = if cb.states.is_empty() {
                if cb.initial.is_some() || !cb.transitions.is_empty() {
                    return Err(CoreError::validate(format!(
                        "class {} declares transitions but no states",
                        cb.name
                    )));
                }
                None
            } else {
                Some(build_machine(cb, &actor_names)?)
            };
            domain.classes.push(Class {
                name: cb.name.clone(),
                attributes: cb.attrs.clone(),
                events: cb.events.clone(),
                state_machine,
            });
        }

        // Associations can only be resolved after all classes exist.
        domain.reindex()?;
        for (name, from, fm, to, tm) in self.assocs {
            let from_id = domain.class_id(&from)?;
            let to_id = domain.class_id(&to)?;
            domain.associations.push(Association {
                name,
                from: from_id,
                to: to_id,
                from_mult: fm,
                to_mult: tm,
            });
        }
        domain.reindex()?;
        Ok(domain)
    }
}

fn build_machine(
    cb: &ClassBuilder,
    actors: &std::collections::BTreeSet<String>,
) -> Result<StateMachine> {
    let mut states = Vec::new();
    for sd in &cb.states {
        let action = match &sd.body {
            Body::Ast(b) => b.clone(),
            Body::Src(src) => {
                let toks = crate::lex::lex(src)?;
                let mut p = parse::Parser::with_actors(&toks, actors.clone());
                let b = p.parse_block_until(&crate::lex::Tok::Eof)?;
                p.expect(&crate::lex::Tok::Eof)?;
                b
            }
        };
        states.push(State {
            name: sd.name.clone(),
            action,
        });
    }

    let state_id = |name: &str| -> Result<StateId> {
        states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId::new(i as u32))
            .ok_or_else(|| CoreError::unresolved("state", name))
    };
    let event_id = |name: &str| -> Result<EventId> {
        cb.events
            .iter()
            .position(|e| e.name == name)
            .map(|i| EventId::new(i as u32))
            .ok_or_else(|| CoreError::unresolved("event", name))
    };

    let initial_name = cb.initial.as_deref().ok_or_else(|| {
        CoreError::validate(format!("class {} has states but no initial state", cb.name))
    })?;
    let initial = state_id(initial_name)?;

    let mut transitions = Vec::new();
    for td in &cb.transitions {
        let target = match &td.target {
            TargetDecl::To(to) => TransitionTarget::To(state_id(to)?),
            TargetDecl::Ignore => TransitionTarget::Ignore,
        };
        transitions.push(Transition {
            from: state_id(&td.from)?,
            event: event_id(&td.event)?,
            target,
        });
    }

    let mut machine = StateMachine {
        states,
        initial,
        transitions,
        ..StateMachine::default()
    };
    machine.index()?;
    Ok(machine)
}

/// Convenience: builds the ubiquitous ping-pong test domain used across
/// the workspace's own tests and benches — `n` `Stage` classes in a
/// pipeline, each forwarding a counted token to the next via `R<k>`
/// associations, with a `SINK` actor receiving the result.
///
/// This is the "generated-pipeline workload" of experiments E2-E5.
pub fn pipeline_domain(stages: usize) -> Result<Domain> {
    assert!(stages >= 1, "pipeline needs at least one stage");
    let mut d = DomainBuilder::new("pipeline");
    d.actor("SINK").event("out", &[("v", DataType::Int)]);
    for k in 0..stages {
        let name = format!("Stage{k}");
        let c = d.class(&name);
        c.attr("seen", DataType::Int)
            .event("Feed", &[("v", DataType::Int)]);
        let forward = if k + 1 < stages {
            // Forward the incremented token across the association.
            format!(
                "self.seen = self.seen + 1;\n\
                 nexts = self -> Stage{}[R{}];\n\
                 gen Feed(rcvd.v + 1) to any(nexts);",
                k + 1,
                k + 1
            )
        } else {
            "self.seen = self.seen + 1;\ngen out(rcvd.v) to SINK;".to_owned()
        };
        c.state("Waiting", "")
            .state("Forwarding", &forward)
            .initial("Waiting")
            .transition("Waiting", "Feed", "Forwarding")
            .transition("Forwarding", "Feed", "Forwarding");
    }
    for k in 0..stages.saturating_sub(1) {
        d.association(
            &format!("R{}", k + 1),
            &format!("Stage{k}"),
            Multiplicity::One,
            &format!("Stage{}", k + 1),
            Multiplicity::One,
        );
    }
    d.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_minimal_class() {
        let mut d = DomainBuilder::new("m");
        d.class("Led")
            .attr("on", DataType::Bool)
            .event("Toggle", &[])
            .state("Off", "self.on = false;")
            .state("On", "self.on = true;")
            .initial("Off")
            .transition("Off", "Toggle", "On")
            .transition("On", "Toggle", "Off");
        let domain = d.build().unwrap();
        let led = domain.class(domain.class_id("Led").unwrap());
        let m = led.state_machine.as_ref().unwrap();
        assert_eq!(m.states.len(), 2);
        assert_eq!(m.initial, StateId::new(0));
        assert_eq!(
            m.dispatch(StateId::new(0), EventId::new(0)),
            TransitionTarget::To(StateId::new(1))
        );
    }

    #[test]
    fn missing_initial_is_error() {
        let mut d = DomainBuilder::new("m");
        d.class("C").event("E", &[]).state("S", "");
        assert!(d.build().is_err());
    }

    #[test]
    fn unknown_state_in_transition_is_error() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .event("E", &[])
            .state("S", "")
            .initial("S")
            .transition("S", "E", "Nowhere");
        assert!(d.build().is_err());
    }

    #[test]
    fn type_errors_surface_at_build() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .attr("n", DataType::Int)
            .event("E", &[])
            .state("S", "self.n = true;")
            .initial("S")
            .transition("S", "E", "S");
        // Type errors are wrapped with class/state context by validation.
        let err = d.build().unwrap_err();
        assert!(matches!(err, CoreError::Validate { .. }));
        assert!(err.to_string().contains("type error"));
    }

    #[test]
    fn parse_errors_surface_at_build() {
        let mut d = DomainBuilder::new("m");
        d.class("C")
            .event("E", &[])
            .state("S", "this is not valid;")
            .initial("S")
            .transition("S", "E", "S");
        assert!(d.build().is_err());
    }

    #[test]
    fn association_to_unknown_class_is_error() {
        let mut d = DomainBuilder::new("m");
        d.class("A");
        d.association("R1", "A", Multiplicity::One, "B", Multiplicity::One);
        assert!(d.build().is_err());
    }

    #[test]
    fn actor_targets_resolve_in_action_text() {
        let mut d = DomainBuilder::new("m");
        d.actor("OUT").event("ping", &[]);
        d.class("C")
            .event("E", &[])
            .state("S", "gen ping() to OUT;")
            .initial("S")
            .transition("S", "E", "S");
        let domain = d.build().unwrap();
        assert_eq!(domain.actors.len(), 1);
    }

    #[test]
    fn pipeline_domain_builds_at_various_sizes() {
        for n in [1, 2, 5, 16] {
            let d = pipeline_domain(n).unwrap();
            assert_eq!(d.classes.len(), n);
            assert_eq!(d.associations.len(), n.saturating_sub(1));
            assert!(d.action_weight() > 0);
        }
    }

    #[test]
    fn duplicate_class_names_rejected() {
        let mut d = DomainBuilder::new("m");
        d.class("A");
        d.class("A");
        assert!(matches!(
            d.build(),
            Err(CoreError::Duplicate { kind: "class", .. })
        ));
    }

    #[test]
    fn transitions_without_states_rejected() {
        let mut d = DomainBuilder::new("m");
        d.class("A").event("E", &[]).transition("S", "E", "S");
        assert!(d.build().is_err());
    }
}
