//! Whole-model effect analysis: the dataflow engine behind shard safety.
//!
//! The paper's argument (§3) is that a model compiler can apply
//! *repeatable, analyzable mapping rules* because the action language is
//! a closed, statically tractable notation. This module takes that
//! seriously for the sharded executor: instead of the historical
//! syntactic reject-list (ban every `create`/`delete`/`relate`/
//! `unrelate` and every non-self attribute access), it computes
//! per-action **effect summaries** — attribute read/write sets keyed by
//! `(class, attr, receiver shape)`, plus create/delete/relate/select
//! footprints and send/timer counts — and then runs a whole-model
//! admission pass that classifies each class as *shard-local*,
//! *shard-safe-with-reason* or *unsafe-with-witness*.
//!
//! ## The receiver-shape abstraction
//!
//! Every attribute access happens through an instance-valued base
//! expression. The analysis abstracts that base into a small lattice
//! ([`Receiver`]):
//!
//! * [`Receiver::This`] — the base is `self`. Always shard-safe: the
//!   dispatching shard owns `self` by construction.
//! * [`Receiver::Created`] — the base is an instance created earlier in
//!   the *same* run-to-completion step. Safe when the create itself is
//!   admitted: the creating shard allocates (and therefore owns) the id.
//! * [`Receiver::Via`]`(R)` — the base is reached from `self` by
//!   navigating association `R` (possibly through `any(...)` or a
//!   `foreach` binding). Safe iff every link of `R` is shard-colocated —
//!   a *runtime* precondition the sharded engine checks against the
//!   setup population.
//! * [`Receiver::Other`] — anything else (`select` bindings, `selected`,
//!   navigation from a non-self base, bindings the inference loses).
//!
//! ## Admission rules
//!
//! A non-self access to `(class, attr)` is admitted when:
//!
//! 1. **const-replica**: the attribute is written nowhere in the model.
//!    Every shard's replica then holds the declared default forever, so
//!    any read — through any receiver — returns the same value the
//!    sequential engine would produce.
//! 2. **colocated navigation**: *all* non-self accesses to the
//!    attribute go through one common association `R`. If every setup
//!    link of `R` keeps both endpoints on the same shard, reader,
//!    writer and owner coincide and the access is local. The static
//!    pass admits the model and records `R` in
//!    [`ShardPlan::coloc_assocs`]; the engine re-checks the link
//!    population at its actual shard count and falls back otherwise.
//! 3. **created-instance access**: reads and writes through
//!    [`Receiver::Created`] ride on rule 3's create admission below.
//!
//! A `create` of class `K` is admitted when no action anywhere selects
//! over `K` (creation confinement): created instances then never become
//! visible to other shards, and the engine allocates ids congruent to
//! the creating shard so ownership holds. `delete`/`relate`/`unrelate`
//! remain rejected — they mutate population structure other shards
//! replicate.
//!
//! Everything else is an offense; when two access sites on the same
//! written attribute conflict, the pair becomes a [`Race`] witness
//! (diagnostic `X0017 cross-shard-race`).
//!
//! ## Soundness oracle
//!
//! The analysis is deliberately falsifiable: every model it newly
//! admits to `shards > 1` must keep its trace a pure function of
//! `(seed, shards)` and its per-actor observables equal to the
//! sequential engine's, under the fuzz differential and the
//! jobs-invariance suites. The analyzer is wrong iff a differential
//! catches it (DESIGN.md §14).

use crate::action::{Block, Expr, GenTarget, LValue, Stmt};
use crate::error::Pos;
use crate::ids::{AssocId, AttrId, ClassId, StateId};
use crate::model::Domain;
use crate::value::UnOp;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Effect summaries
// ---------------------------------------------------------------------------

/// The shape of the instance an attribute access goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Receiver {
    /// The dispatching instance (`self`).
    This,
    /// An instance created earlier in the same action.
    Created,
    /// Reached from `self` by navigating the given association.
    Via(AssocId),
    /// Any other shape: `select` bindings, `selected`, navigation from a
    /// non-self base, or a binding the inference lost.
    Other,
}

impl Receiver {
    /// Human phrasing, e.g. `"via R1"`.
    pub fn describe(self, domain: &Domain) -> String {
        match self {
            Receiver::This => "self".to_owned(),
            Receiver::Created => "created".to_owned(),
            Receiver::Via(r) => format!("via {}", domain.association(r).name),
            Receiver::Other => "any-instance".to_owned(),
        }
    }
}

/// One attribute read or write found in an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrAccess {
    /// Class owning the attribute.
    pub class: ClassId,
    /// The attribute.
    pub attr: AttrId,
    /// Shape of the instance accessed.
    pub receiver: Receiver,
    /// True for a write (assignment target).
    pub write: bool,
    /// Statement position of the access.
    pub pos: Pos,
}

/// The effect summary of one state entry action.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActionEffects {
    /// Class whose state machine holds the action.
    pub class: ClassId,
    /// The entered state.
    pub state: StateId,
    /// Every attribute access, in source order.
    pub accesses: Vec<AttrAccess>,
    /// `create` statements: `(created class, position)`.
    pub creates: Vec<(ClassId, Pos)>,
    /// `delete` statement positions.
    pub deletes: Vec<Pos>,
    /// `relate` statement positions.
    pub relates: Vec<Pos>,
    /// `unrelate` statement positions.
    pub unrelates: Vec<Pos>,
    /// `select any`/`select many` statements: `(selected class, position)`.
    pub selects: Vec<(ClassId, Pos)>,
    /// Instance-directed `gen` statements.
    pub sends: u32,
    /// Actor-directed (observable) `gen` statements.
    pub actor_sends: u32,
    /// `gen ... after` statements (timers armed).
    pub timers_set: u32,
    /// `cancel` statements.
    pub timers_cancelled: u32,
    /// Bridge (external-entity) calls.
    pub bridge_calls: u32,
    /// Attribute accesses whose base the inference could not type; each
    /// is treated as an [`Receiver::Other`] access to an unknown
    /// attribute and blocks admission: `(position, is_write)`.
    pub unknown: Vec<(Pos, bool)>,
}

/// Per-action effect summaries for the whole domain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelEffects {
    /// One summary per state entry action, in model order.
    pub actions: Vec<ActionEffects>,
}

impl ModelEffects {
    /// Walks every state entry action in the domain.
    pub fn gather(domain: &Domain) -> ModelEffects {
        let mut effects = ModelEffects::default();
        for (ci, class) in domain.classes.iter().enumerate() {
            let class_id = ClassId::new(ci as u32);
            let Some(machine) = &class.state_machine else {
                continue;
            };
            for (si, state) in machine.states.iter().enumerate() {
                let mut eff = ActionEffects {
                    class: class_id,
                    state: StateId::new(si as u32),
                    ..ActionEffects::default()
                };
                let mut w = EffectWalker {
                    domain,
                    self_class: class_id,
                    env: BTreeMap::new(),
                    selected: None,
                    eff: &mut eff,
                };
                w.block(&state.action);
                effects.actions.push(eff);
            }
        }
        effects
    }
}

/// Per-action walker tracking the receiver shape of every instance-typed
/// binding.
struct EffectWalker<'a> {
    domain: &'a Domain,
    self_class: ClassId,
    env: BTreeMap<String, (ClassId, Receiver)>,
    selected: Option<ClassId>,
    eff: &'a mut ActionEffects,
}

impl EffectWalker<'_> {
    fn block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    /// Infers the `(class, receiver shape)` of an instance-valued
    /// expression; `None` for scalars and lost bindings.
    fn infer(&self, expr: &Expr) -> Option<(ClassId, Receiver)> {
        match expr {
            Expr::SelfRef => Some((self.self_class, Receiver::This)),
            Expr::Var(name) => self.env.get(name).copied(),
            Expr::Nav(base, class_name, assoc_name) => {
                let class = self.domain.class_id(class_name).ok()?;
                let recv = match self.infer(base) {
                    Some((_, Receiver::This)) => self
                        .domain
                        .assoc_id(assoc_name)
                        .map(Receiver::Via)
                        .unwrap_or(Receiver::Other),
                    _ => Receiver::Other,
                };
                Some((class, recv))
            }
            Expr::Unary(UnOp::Any, inner) => self.infer(inner),
            Expr::Selected => self.selected.map(|c| (c, Receiver::Other)),
            _ => None,
        }
    }

    /// Records an attribute access through `base`.
    fn access(&mut self, base: &Expr, attr_name: &str, write: bool, pos: Pos) {
        match self.infer(base) {
            Some((class, receiver)) => {
                if let Some(attr) = self.domain.class(class).attr_id(attr_name) {
                    self.eff.accesses.push(AttrAccess {
                        class,
                        attr,
                        receiver,
                        write,
                        pos,
                    });
                } else {
                    self.eff.unknown.push((pos, write));
                }
            }
            None => self.eff.unknown.push((pos, write)),
        }
    }

    /// Records attribute reads in an expression (recursively).
    fn reads(&mut self, expr: &Expr, pos: Pos) {
        match expr {
            Expr::Attr(base, name) => {
                self.access(base, name, false, pos);
                self.reads(base, pos);
            }
            Expr::Nav(base, _, _) => self.reads(base, pos),
            Expr::Unary(_, e) => self.reads(e, pos),
            Expr::Binary(_, a, b) => {
                self.reads(a, pos);
                self.reads(b, pos);
            }
            Expr::BridgeCall(_, _, args) => {
                for a in args {
                    self.reads(a, pos);
                }
            }
            Expr::Lit(_) | Expr::Var(_) | Expr::SelfRef | Expr::Selected | Expr::Param(_) => {}
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        let pos = stmt.pos();
        match stmt {
            Stmt::Assign { lhs, expr, .. } => {
                self.reads(expr, pos);
                match lhs {
                    LValue::Var(name) => match self.infer(expr) {
                        Some(binding) => {
                            self.env.insert(name.clone(), binding);
                        }
                        // A scalar assignment kills any previous
                        // instance binding of the name.
                        None => {
                            self.env.remove(name);
                        }
                    },
                    LValue::Attr(base, attr) => {
                        self.reads(base, pos);
                        self.access(base, attr, true, pos);
                    }
                }
            }
            Stmt::Create { var, class, .. } => {
                if let Ok(id) = self.domain.class_id(class) {
                    self.eff.creates.push((id, pos));
                    self.env.insert(var.clone(), (id, Receiver::Created));
                }
            }
            Stmt::Delete { expr, .. } => {
                self.eff.deletes.push(pos);
                self.reads(expr, pos);
            }
            Stmt::SelectAny {
                var, class, filter, ..
            }
            | Stmt::SelectMany {
                var, class, filter, ..
            } => {
                if let Ok(id) = self.domain.class_id(class) {
                    self.eff.selects.push((id, pos));
                    if let Some(f) = filter {
                        let saved = self.selected.replace(id);
                        self.reads(f, pos);
                        self.selected = saved;
                    }
                    self.env.insert(var.clone(), (id, Receiver::Other));
                } else if let Some(f) = filter {
                    self.reads(f, pos);
                }
            }
            Stmt::Relate { a, b, .. } => {
                self.eff.relates.push(pos);
                self.reads(a, pos);
                self.reads(b, pos);
            }
            Stmt::Unrelate { a, b, .. } => {
                self.eff.unrelates.push(pos);
                self.reads(a, pos);
                self.reads(b, pos);
            }
            Stmt::Generate {
                args,
                target,
                delay,
                ..
            } => {
                for a in args {
                    self.reads(a, pos);
                }
                if let Some(d) = delay {
                    self.reads(d, pos);
                    self.eff.timers_set += 1;
                }
                match target {
                    GenTarget::Inst(texpr) => {
                        // A bare unbound variable resolves to an actor at
                        // run time (observable send).
                        let is_actor_fallback = matches!(texpr, Expr::Var(name)
                            if !self.env.contains_key(name)
                                && self.domain.actor_id(name).is_ok());
                        if is_actor_fallback {
                            self.eff.actor_sends += 1;
                        } else {
                            self.reads(texpr, pos);
                            self.eff.sends += 1;
                        }
                    }
                    GenTarget::Actor(_) => self.eff.actor_sends += 1,
                }
            }
            Stmt::Cancel { .. } => self.eff.timers_cancelled += 1,
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (cond, body) in arms {
                    self.reads(cond, pos);
                    self.block(body);
                }
                if let Some(body) = otherwise {
                    self.block(body);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.reads(cond, pos);
                self.block(body);
            }
            Stmt::ForEach { var, set, body, .. } => {
                self.reads(set, pos);
                match self.infer(set) {
                    Some(binding) => {
                        self.env.insert(var.clone(), binding);
                    }
                    None => {
                        self.env.remove(var);
                    }
                }
                self.block(body);
            }
            Stmt::ExprStmt { expr, .. } => {
                if matches!(expr, Expr::BridgeCall(..)) {
                    self.eff.bridge_calls += 1;
                }
                self.reads(expr, pos);
            }
            Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Return { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Offenses (shared with the lint layer and the sharded executor)
// ---------------------------------------------------------------------------

/// Why a state action blocks sharded execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShardReason {
    /// The action creates an instance of a class that is selected over
    /// somewhere (creation is not confined).
    Creates,
    /// The action deletes an instance.
    Deletes,
    /// The action relates instances.
    Relates,
    /// The action unrelates instances.
    Unrelates,
    /// The action writes a non-self attribute no admission rule covers.
    NonSelfWrite,
    /// The action reads a non-self attribute no admission rule covers.
    NonSelfRead,
}

impl ShardReason {
    /// Human phrasing, e.g. `"creates an instance"`.
    pub fn describe(self) -> &'static str {
        match self {
            ShardReason::Creates => "creates an instance",
            ShardReason::Deletes => "deletes an instance",
            ShardReason::Relates => "relates instances",
            ShardReason::Unrelates => "unrelates instances",
            ShardReason::NonSelfWrite => "writes a non-self attribute",
            ShardReason::NonSelfRead => "reads a non-self attribute",
        }
    }

    /// Stable machine key, e.g. `"create"` (metric and JSONL column).
    pub fn key(self) -> &'static str {
        match self {
            ShardReason::Creates => "create",
            ShardReason::Deletes => "delete",
            ShardReason::Relates => "relate",
            ShardReason::Unrelates => "unrelate",
            ShardReason::NonSelfWrite => "non_self_write",
            ShardReason::NonSelfRead => "non_self_read",
        }
    }
}

/// One construct that blocks sharded execution, at statement granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOffense {
    /// Class whose state machine holds the offending action.
    pub class: String,
    /// State whose entry action offends.
    pub state: String,
    /// What the action does.
    pub reason: ShardReason,
    /// Position of the offending statement.
    pub pos: Pos,
}

impl ShardOffense {
    /// The historical one-line rendering, `Class.State: reason`.
    pub fn describe(&self) -> String {
        format!("{}.{}: {}", self.class, self.state, self.reason.describe())
    }
}

// ---------------------------------------------------------------------------
// Whole-model admission
// ---------------------------------------------------------------------------

/// One access site of a conflicting attribute (race witness leg).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Acting class (whose action contains the access).
    pub class: ClassId,
    /// Acting state.
    pub state: StateId,
    /// Receiver shape of the access.
    pub receiver: Receiver,
    /// True for a write.
    pub write: bool,
    /// Statement position.
    pub pos: Pos,
}

/// A genuine cross-shard write race: two access sites on the same
/// written attribute that no admission rule reconciles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// Class owning the raced attribute.
    pub class: ClassId,
    /// The raced attribute.
    pub attr: AttrId,
    /// The writing site.
    pub a: Site,
    /// The conflicting site (read or write, preferably in another action).
    pub b: Site,
}

/// The admission verdict for one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every action touches only `self` attributes and communicates by
    /// signals: shards freely, no admission rule consulted.
    Local,
    /// Shard-safe because the listed admission rules apply.
    Safe(Vec<String>),
    /// Blocks sharding; the string is the first witness.
    Unsafe(String),
}

/// The whole-model admission result: effect summaries, offenses, race
/// witnesses, per-class verdicts and the runtime preconditions the
/// sharded engine must check.
#[derive(Debug, Clone, Default)]
pub struct ShardPlan {
    /// Per-action effect summaries.
    pub effects: ModelEffects,
    /// Everything that blocks sharding, at statement granularity, in
    /// model order (sorted by position within each action).
    pub offenses: Vec<ShardOffense>,
    /// Two-site witnesses for raced attributes (`X0017`).
    pub races: Vec<Race>,
    /// Per-class verdicts, in class order (one per domain class).
    pub verdicts: Vec<(ClassId, Verdict)>,
    /// Associations whose links must be shard-colocated at run time for
    /// the admission to hold (rule 2).
    pub coloc_assocs: BTreeSet<AssocId>,
    /// Classes admitted for runtime creation (creation-confined).
    pub creatable: BTreeSet<ClassId>,
    /// Attributes written nowhere in the model (rule 1, and the
    /// bytecode lowering's const-attr fact source).
    pub const_attrs: BTreeSet<(ClassId, AttrId)>,
}

impl ShardPlan {
    /// True when nothing blocks sharded execution.
    pub fn admitted(&self) -> bool {
        self.offenses.is_empty()
    }

    /// True when admission needed more than the trivial self-only rule:
    /// the model has a non-self access or a create the analysis proved
    /// safe. Such models were rejected by the old syntactic gate.
    pub fn uses_admission(&self) -> bool {
        self.admitted()
            && self
                .verdicts
                .iter()
                .any(|(_, v)| matches!(v, Verdict::Safe(_)))
    }
}

/// Attributes written nowhere in the domain — every read of one yields
/// the declared default. This is the `bc` lowering's const-fold fact
/// source; [`analyze`] embeds the same set in its [`ShardPlan`].
pub fn const_attrs(domain: &Domain) -> BTreeSet<(ClassId, AttrId)> {
    const_attrs_from(domain, &ModelEffects::gather(domain))
}

fn const_attrs_from(domain: &Domain, effects: &ModelEffects) -> BTreeSet<(ClassId, AttrId)> {
    let mut written: BTreeSet<(ClassId, AttrId)> = BTreeSet::new();
    let mut any_unknown_write = false;
    for eff in &effects.actions {
        for a in &eff.accesses {
            if a.write {
                written.insert((a.class, a.attr));
            }
        }
        any_unknown_write |= eff.unknown.iter().any(|&(_, w)| w);
    }
    let mut consts = BTreeSet::new();
    // An untypeable write could target anything: claim no constants.
    if any_unknown_write {
        return consts;
    }
    for (ci, class) in domain.classes.iter().enumerate() {
        let class_id = ClassId::new(ci as u32);
        for ai in 0..class.attributes.len() {
            let key = (class_id, AttrId::new(ai as u32));
            if !written.contains(&key) {
                consts.insert(key);
            }
        }
    }
    consts
}

/// How the admission pass resolved one `(class, attr)` access group.
enum GroupFate {
    /// All accesses are `self`/created: nothing to admit.
    SelfOnly,
    /// Admitted: the attribute is written nowhere (rule 1).
    ConstRead,
    /// Admitted: all non-self accesses share this association (rule 2).
    Coloc(AssocId),
    /// Blocked: non-self sites conflict with a write.
    Blocked,
}

/// Runs the whole-model admission analysis.
pub fn analyze(domain: &Domain) -> ShardPlan {
    let effects = ModelEffects::gather(domain);
    let const_set = const_attrs_from(domain, &effects);

    // Group every access by (class, attr), keeping acting-action sites.
    let mut groups: BTreeMap<(ClassId, AttrId), Vec<Site>> = BTreeMap::new();
    let mut selects_over: BTreeSet<ClassId> = BTreeSet::new();
    for eff in &effects.actions {
        for a in &eff.accesses {
            groups.entry((a.class, a.attr)).or_default().push(Site {
                class: eff.class,
                state: eff.state,
                receiver: a.receiver,
                write: a.write,
                pos: a.pos,
            });
        }
        for &(c, _) in &eff.selects {
            selects_over.insert(c);
        }
    }

    // Resolve each group's fate and collect race witnesses.
    let mut fates: BTreeMap<(ClassId, AttrId), GroupFate> = BTreeMap::new();
    let mut races: Vec<Race> = Vec::new();
    let mut coloc_assocs: BTreeSet<AssocId> = BTreeSet::new();
    for (&key, sites) in &groups {
        let nonself: Vec<&Site> = sites
            .iter()
            .filter(|s| matches!(s.receiver, Receiver::Via(_) | Receiver::Other))
            .collect();
        let fate = if nonself.is_empty() {
            GroupFate::SelfOnly
        } else if const_set.contains(&key) {
            GroupFate::ConstRead
        } else {
            let assocs: BTreeSet<AssocId> = nonself
                .iter()
                .filter_map(|s| match s.receiver {
                    Receiver::Via(r) => Some(r),
                    _ => None,
                })
                .collect();
            let all_via = nonself
                .iter()
                .all(|s| matches!(s.receiver, Receiver::Via(_)));
            if all_via && assocs.len() == 1 {
                let r = *assocs.iter().next().expect("one assoc");
                coloc_assocs.insert(r);
                GroupFate::Coloc(r)
            } else {
                // The attribute is written somewhere and non-self sites
                // disagree on how they reach it: a genuine race. Witness
                // with a write site plus a conflicting site, preferring
                // one in a different action.
                if let Some(wr) = sites.iter().find(|s| s.write) {
                    let other = sites
                        .iter()
                        .filter(|s| !std::ptr::eq(*s, wr))
                        .find(|s| (s.class, s.state) != (wr.class, wr.state))
                        .or_else(|| sites.iter().find(|s| !std::ptr::eq(*s, wr)));
                    if let Some(b) = other {
                        races.push(Race {
                            class: key.0,
                            attr: key.1,
                            a: *wr,
                            b: *b,
                        });
                    }
                }
                GroupFate::Blocked
            }
        };
        fates.insert(key, fate);
    }

    // Creation confinement: a created class must never be selected over.
    let mut creatable: BTreeSet<ClassId> = BTreeSet::new();
    for eff in &effects.actions {
        for &(c, _) in &eff.creates {
            if !selects_over.contains(&c) {
                creatable.insert(c);
            }
        }
    }

    // Second pass: per-action offenses (statement-granular) and
    // per-class admission reasons.
    let mut offenses: Vec<ShardOffense> = Vec::new();
    let mut reasons: BTreeMap<ClassId, BTreeSet<String>> = BTreeMap::new();
    let mut first_witness: BTreeMap<ClassId, (Pos, String)> = BTreeMap::new();
    let witness =
        |map: &mut BTreeMap<ClassId, (Pos, String)>, class: ClassId, pos: Pos, what: String| {
            let entry = map.entry(class).or_insert((pos, what.clone()));
            if pos < entry.0 {
                *entry = (pos, what);
            }
        };
    for eff in &effects.actions {
        let class_name = &domain.class(eff.class).name;
        let machine = domain.class(eff.class).state_machine.as_ref();
        let state_name = machine
            .map(|m| m.states[eff.state.index()].name.as_str())
            .unwrap_or("?");
        let mut local: Vec<(Pos, ShardReason)> = Vec::new();
        for &pos in &eff.deletes {
            local.push((pos, ShardReason::Deletes));
        }
        for &pos in &eff.relates {
            local.push((pos, ShardReason::Relates));
        }
        for &pos in &eff.unrelates {
            local.push((pos, ShardReason::Unrelates));
        }
        for &(c, pos) in &eff.creates {
            if creatable.contains(&c) {
                reasons.entry(eff.class).or_default().insert(format!(
                    "creates `{}` (creation-confined, shard-local ids)",
                    domain.class(c).name
                ));
            } else {
                local.push((pos, ShardReason::Creates));
            }
        }
        for a in &eff.accesses {
            if !matches!(a.receiver, Receiver::Via(_) | Receiver::Other) {
                continue;
            }
            let attr_name = format!(
                "{}.{}",
                domain.class(a.class).name,
                domain.class(a.class).attributes[a.attr.index()].name
            );
            match fates.get(&(a.class, a.attr)) {
                Some(GroupFate::ConstRead) => {
                    reasons.entry(eff.class).or_default().insert(format!(
                        "reads `{attr_name}` (written nowhere: replicas hold the default)"
                    ));
                }
                Some(GroupFate::Coloc(r)) => {
                    reasons.entry(eff.class).or_default().insert(format!(
                        "accesses `{attr_name}` only via `{}` (colocated partition)",
                        domain.association(*r).name
                    ));
                }
                _ => {
                    let reason = if a.write {
                        ShardReason::NonSelfWrite
                    } else {
                        ShardReason::NonSelfRead
                    };
                    local.push((a.pos, reason));
                }
            }
        }
        for &(pos, write) in &eff.unknown {
            let reason = if write {
                ShardReason::NonSelfWrite
            } else {
                ShardReason::NonSelfRead
            };
            local.push((pos, reason));
        }
        local.sort_unstable();
        local.dedup();
        for (pos, reason) in local {
            witness(
                &mut first_witness,
                eff.class,
                pos,
                format!("state {state_name}: {} at {pos}", reason.describe()),
            );
            offenses.push(ShardOffense {
                class: class_name.clone(),
                state: state_name.to_owned(),
                reason,
                pos,
            });
        }
    }

    // Per-class verdicts, one per domain class.
    let mut verdicts = Vec::new();
    for ci in 0..domain.classes.len() {
        let class_id = ClassId::new(ci as u32);
        let verdict = if let Some((_, what)) = first_witness.get(&class_id) {
            Verdict::Unsafe(what.clone())
        } else if let Some(rs) = reasons.get(&class_id) {
            Verdict::Safe(rs.iter().cloned().collect())
        } else {
            Verdict::Local
        };
        verdicts.push((class_id, verdict));
    }

    ShardPlan {
        effects,
        offenses,
        races,
        verdicts,
        coloc_assocs,
        creatable,
        const_attrs: const_set,
    }
}

// ---------------------------------------------------------------------------
// Renders (the `xtuml analyze` surfaces)
// ---------------------------------------------------------------------------

fn attr_name(domain: &Domain, class: ClassId, attr: AttrId) -> String {
    format!(
        "{}.{}",
        domain.class(class).name,
        domain.class(class).attributes[attr.index()].name
    )
}

fn action_name(domain: &Domain, class: ClassId, state: StateId) -> String {
    let c = domain.class(class);
    let s = c
        .state_machine
        .as_ref()
        .map(|m| m.states[state.index()].name.as_str())
        .unwrap_or("?");
    format!("{}.{}", c.name, s)
}

impl ShardPlan {
    /// The human render: per-action effect summary table, per-class
    /// partition coloring, race witnesses and the admission verdict.
    /// Deterministic for a given model.
    pub fn render_human(&self, domain: &Domain) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "effect analysis for domain `{}`", domain.name);
        let _ = writeln!(out, "action summaries:");
        for eff in &self.effects.actions {
            let mut parts: Vec<String> = Vec::new();
            let mut reads: Vec<String> = Vec::new();
            let mut writes: Vec<String> = Vec::new();
            for a in &eff.accesses {
                let s = format!(
                    "{} [{}]",
                    attr_name(domain, a.class, a.attr),
                    a.receiver.describe(domain)
                );
                let list = if a.write { &mut writes } else { &mut reads };
                if !list.contains(&s) {
                    list.push(s);
                }
            }
            if !reads.is_empty() {
                parts.push(format!("reads {}", reads.join(", ")));
            }
            if !writes.is_empty() {
                parts.push(format!("writes {}", writes.join(", ")));
            }
            if !eff.creates.is_empty() {
                let names: Vec<&str> = eff
                    .creates
                    .iter()
                    .map(|&(c, _)| domain.class(c).name.as_str())
                    .collect();
                parts.push(format!("creates {}", names.join(", ")));
            }
            for (n, label) in [
                (eff.deletes.len(), "delete"),
                (eff.relates.len(), "relate"),
                (eff.unrelates.len(), "unrelate"),
                (eff.selects.len(), "select"),
            ] {
                if n > 0 {
                    parts.push(format!("{label} x{n}"));
                }
            }
            if eff.sends > 0 {
                parts.push(format!("sends {}", eff.sends));
            }
            if eff.actor_sends > 0 {
                parts.push(format!("actor-sends {}", eff.actor_sends));
            }
            if eff.timers_set > 0 {
                parts.push(format!("timers {}", eff.timers_set));
            }
            if eff.timers_cancelled > 0 {
                parts.push(format!("cancels {}", eff.timers_cancelled));
            }
            if eff.bridge_calls > 0 {
                parts.push(format!("bridge-calls {}", eff.bridge_calls));
            }
            let summary = if parts.is_empty() {
                "(pure)".to_owned()
            } else {
                parts.join("; ")
            };
            let _ = writeln!(
                out,
                "  {:<24} {}",
                action_name(domain, eff.class, eff.state),
                summary
            );
        }
        let _ = writeln!(out, "class partition:");
        for (class, verdict) in &self.verdicts {
            let name = &domain.class(*class).name;
            match verdict {
                Verdict::Local => {
                    let _ = writeln!(out, "  {name:<16} shard-local");
                }
                Verdict::Safe(reasons) => {
                    let _ = writeln!(out, "  {name:<16} shard-safe");
                    for r in reasons {
                        let _ = writeln!(out, "    - {r}");
                    }
                }
                Verdict::Unsafe(witness) => {
                    let _ = writeln!(out, "  {name:<16} unsafe ({witness})");
                }
            }
        }
        if !self.coloc_assocs.is_empty() {
            let names: Vec<&str> = self
                .coloc_assocs
                .iter()
                .map(|&r| domain.association(r).name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "runtime precondition: links of {} must be shard-colocated",
                names.join(", ")
            );
        }
        for race in &self.races {
            let _ = writeln!(
                out,
                "race on `{}`: {} {} at {} vs {} {} at {}",
                attr_name(domain, race.class, race.attr),
                action_name(domain, race.a.class, race.a.state),
                if race.a.write { "writes" } else { "reads" },
                race.a.pos,
                action_name(domain, race.b.class, race.b.state),
                if race.b.write { "writes" } else { "reads" },
                race.b.pos,
            );
        }
        let verdict = if self.admitted() {
            if self.uses_admission() {
                "admitted to sharding (non-trivial: admission rules applied)"
            } else {
                "admitted to sharding (self-only)"
            }
        } else {
            "falls back to sequential execution"
        };
        let _ = writeln!(out, "verdict: {verdict}");
        if !self.admitted() {
            for o in &self.offenses {
                let _ = writeln!(out, "  X0015 {} at {}", o.describe(), o.pos);
            }
        }
        out
    }

    /// The `--json` render: one deterministic document with the summary
    /// table, partition coloring, races and runtime preconditions.
    pub fn render_json(&self, domain: &Domain) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"domain\": \"{}\",", esc(&domain.name));
        let _ = writeln!(out, "  \"admitted\": {},", self.admitted());
        let _ = writeln!(out, "  \"uses_admission\": {},", self.uses_admission());
        out.push_str("  \"actions\": [\n");
        for (i, eff) in self.effects.actions.iter().enumerate() {
            let accesses: Vec<String> = eff
                .accesses
                .iter()
                .map(|a| {
                    format!(
                        "{{\"attr\": \"{}\", \"receiver\": \"{}\", \"write\": {}, \
                         \"line\": {}, \"col\": {}}}",
                        esc(&attr_name(domain, a.class, a.attr)),
                        esc(&a.receiver.describe(domain)),
                        a.write,
                        a.pos.line,
                        a.pos.col
                    )
                })
                .collect();
            let _ = write!(
                out,
                "    {{\"action\": \"{}\", \"accesses\": [{}], \"creates\": {}, \
                 \"deletes\": {}, \"relates\": {}, \"unrelates\": {}, \"selects\": {}, \
                 \"sends\": {}, \"actor_sends\": {}, \"timers_set\": {}, \
                 \"timers_cancelled\": {}, \"bridge_calls\": {}}}",
                esc(&action_name(domain, eff.class, eff.state)),
                accesses.join(", "),
                eff.creates.len(),
                eff.deletes.len(),
                eff.relates.len(),
                eff.unrelates.len(),
                eff.selects.len(),
                eff.sends,
                eff.actor_sends,
                eff.timers_set,
                eff.timers_cancelled,
                eff.bridge_calls,
            );
            out.push_str(if i + 1 < self.effects.actions.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"classes\": [\n");
        for (i, (class, verdict)) in self.verdicts.iter().enumerate() {
            let (kind, detail) = match verdict {
                Verdict::Local => ("shard-local", Vec::new()),
                Verdict::Safe(rs) => ("shard-safe", rs.clone()),
                Verdict::Unsafe(w) => ("unsafe", vec![w.clone()]),
            };
            let details: Vec<String> = detail.iter().map(|d| format!("\"{}\"", esc(d))).collect();
            let _ = write!(
                out,
                "    {{\"class\": \"{}\", \"verdict\": \"{}\", \"detail\": [{}]}}",
                esc(&domain.class(*class).name),
                kind,
                details.join(", ")
            );
            out.push_str(if i + 1 < self.verdicts.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let coloc: Vec<String> = self
            .coloc_assocs
            .iter()
            .map(|&r| format!("\"{}\"", esc(&domain.association(r).name)))
            .collect();
        let _ = writeln!(out, "  \"coloc_assocs\": [{}],", coloc.join(", "));
        out.push_str("  \"races\": [\n");
        for (i, race) in self.races.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"attr\": \"{}\", \
                 \"a\": {{\"action\": \"{}\", \"write\": {}, \"line\": {}, \"col\": {}}}, \
                 \"b\": {{\"action\": \"{}\", \"write\": {}, \"line\": {}, \"col\": {}}}}}",
                esc(&attr_name(domain, race.class, race.attr)),
                esc(&action_name(domain, race.a.class, race.a.state)),
                race.a.write,
                race.a.pos.line,
                race.a.pos.col,
                esc(&action_name(domain, race.b.class, race.b.state)),
                race.b.write,
                race.b.pos.line,
                race.b.pos.col,
            );
            out.push_str(if i + 1 < self.races.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"offenses\": [\n");
        for (i, o) in self.offenses.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"class\": \"{}\", \"state\": \"{}\", \"reason\": \"{}\", \
                 \"line\": {}, \"col\": {}}}",
                esc(&o.class),
                esc(&o.state),
                o.reason.key(),
                o.pos.line,
                o.pos.col
            );
            out.push_str(if i + 1 < self.offenses.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DomainBuilder;
    use crate::model::Multiplicity;
    use crate::value::DataType;

    /// Parent reads a child attribute nobody writes: const-replica rule.
    fn const_read_domain() -> Domain {
        let mut b = DomainBuilder::new("d");
        b.class("P")
            .attr("acc", DataType::Int)
            .event("Go", &[])
            .state("I", "")
            .state("W", "self.acc = any(self -> C[R1]).k;")
            .initial("I")
            .transition("I", "Go", "W");
        b.class("C")
            .attr("k", DataType::Int)
            .event("Nudge", &[])
            .state("S", "")
            .initial("S")
            .transition("S", "Nudge", "S");
        b.association("R1", "P", Multiplicity::One, "C", Multiplicity::One);
        b.build().unwrap()
    }

    #[test]
    fn const_nonself_read_is_admitted() {
        let plan = analyze(&const_read_domain());
        assert!(plan.admitted(), "{:?}", plan.offenses);
        assert!(plan.uses_admission());
        assert!(plan.races.is_empty());
        assert!(plan.coloc_assocs.is_empty(), "const reads need no coloc");
        let d = const_read_domain();
        let c = d.class_id("C").unwrap();
        let k = d.class(c).attr_id("k").unwrap();
        assert!(plan.const_attrs.contains(&(c, k)));
        // P is safe-with-reason, C is local.
        assert!(matches!(plan.verdicts[0].1, Verdict::Safe(_)));
        assert!(matches!(plan.verdicts[1].1, Verdict::Local));
    }

    /// Writes confined to one navigated association: coloc rule, with
    /// the association recorded as a runtime precondition.
    #[test]
    fn single_assoc_nav_write_is_admitted_with_coloc() {
        let mut b = DomainBuilder::new("d");
        b.class("P")
            .event("Go", &[])
            .state("I", "")
            .state("W", "any(self -> C[R1]).w = 7;")
            .initial("I")
            .transition("I", "Go", "W");
        b.class("C")
            .attr("w", DataType::Int)
            .event("Nudge", &[])
            .state("S", "x = self.w;")
            .initial("S")
            .transition("S", "Nudge", "S");
        b.association("R1", "P", Multiplicity::One, "C", Multiplicity::One);
        let d = b.build().unwrap();
        let plan = analyze(&d);
        assert!(plan.admitted(), "{:?}", plan.offenses);
        assert_eq!(plan.coloc_assocs.len(), 1);
        assert!(plan.races.is_empty());
    }

    /// The same written attribute reached via two different
    /// associations: a genuine race with a two-site witness.
    #[test]
    fn two_assoc_write_paths_race() {
        let mut b = DomainBuilder::new("d");
        b.class("P")
            .event("Go", &[])
            .event("Again", &[])
            .state("I", "")
            .state("W1", "any(self -> C[R1]).w = 1;")
            .state("W2", "any(self -> C[R2]).w = 2;")
            .initial("I")
            .transition("I", "Go", "W1")
            .transition("W1", "Again", "W2");
        b.class("C")
            .attr("w", DataType::Int)
            .event("Nudge", &[])
            .state("S", "")
            .initial("S")
            .transition("S", "Nudge", "S");
        b.association("R1", "P", Multiplicity::One, "C", Multiplicity::One);
        b.association("R2", "P", Multiplicity::One, "C", Multiplicity::One);
        let d = b.build().unwrap();
        let plan = analyze(&d);
        assert!(!plan.admitted());
        assert_eq!(plan.races.len(), 1, "{:?}", plan.races);
        let race = &plan.races[0];
        assert!(race.a.write);
        // The witness spans two different actions.
        assert_ne!((race.a.class, race.a.state), (race.b.class, race.b.state));
        // Offenses are statement-granular, one per conflicting site
        // (positions are per-action, so the states distinguish them).
        assert_eq!(plan.offenses.len(), 2);
        assert_ne!(plan.offenses[0].state, plan.offenses[1].state);
    }

    /// A write through a `select` binding conflicts with the owner's
    /// self-read: race witness pairing the write with the distant read.
    #[test]
    fn select_write_vs_self_read_races() {
        let mut b = DomainBuilder::new("d");
        b.class("P")
            .event("Go", &[])
            .state("I", "")
            .state("W", "select any v from C; v.w = 1;")
            .initial("I")
            .transition("I", "Go", "W");
        b.class("C")
            .attr("w", DataType::Int)
            .event("Nudge", &[])
            .state("S", "x = self.w;")
            .initial("S")
            .transition("S", "Nudge", "S");
        let d = b.build().unwrap();
        let plan = analyze(&d);
        assert!(!plan.admitted());
        assert_eq!(plan.races.len(), 1);
        assert!(matches!(plan.verdicts[0].1, Verdict::Unsafe(_)));
    }

    /// Creation confinement: admitted when nothing selects the created
    /// class, blocked (at the create statement) when something does.
    #[test]
    fn create_admitted_iff_confined() {
        let build = |selects: bool| {
            let mut b = DomainBuilder::new("d");
            let probe = if selects { "select any v from K;" } else { "" };
            b.class("P")
                .event("Go", &[])
                .event("More", &[])
                .state("I", "")
                .state("W", "k = create K;")
                .state("Probe", probe)
                .initial("I")
                .transition("I", "Go", "W")
                .transition("W", "More", "Probe");
            b.class("K").attr("x", DataType::Int);
            b.build().unwrap()
        };
        let confined = analyze(&build(false));
        assert!(confined.admitted(), "{:?}", confined.offenses);
        assert!(confined.uses_admission());
        assert_eq!(confined.creatable.len(), 1);
        let leaky = analyze(&build(true));
        assert!(!leaky.admitted());
        assert_eq!(leaky.offenses.len(), 1);
        assert_eq!(leaky.offenses[0].reason, ShardReason::Creates);
    }

    /// Writes to a created instance ride on the create admission.
    #[test]
    fn created_instance_writes_are_admitted() {
        let mut b = DomainBuilder::new("d");
        b.class("P")
            .event("Go", &[])
            .state("I", "")
            .state("W", "k = create K; k.x = 5;")
            .initial("I")
            .transition("I", "Go", "W");
        b.class("K").attr("x", DataType::Int);
        let d = b.build().unwrap();
        let plan = analyze(&d);
        assert!(plan.admitted(), "{:?}", plan.offenses);
        assert!(plan.uses_admission());
    }

    /// Structure mutation stays rejected, with statement positions.
    #[test]
    fn delete_relate_unrelate_stay_offenses() {
        let mut b = DomainBuilder::new("d");
        b.class("P")
            .event("Go", &[])
            .state("I", "")
            .state(
                "W",
                "x = any(self -> C[R1]); unrelate self from x across R1; delete x;",
            )
            .initial("I")
            .transition("I", "Go", "W");
        b.class("C").attr("w", DataType::Int);
        b.association("R1", "P", Multiplicity::One, "C", Multiplicity::One);
        let d = b.build().unwrap();
        let plan = analyze(&d);
        assert!(!plan.admitted());
        let reasons: Vec<ShardReason> = plan.offenses.iter().map(|o| o.reason).collect();
        assert!(reasons.contains(&ShardReason::Unrelates));
        assert!(reasons.contains(&ShardReason::Deletes));
        assert!(plan.offenses.iter().all(|o| o.pos != Pos::UNKNOWN));
    }

    /// Pure self-attr models stay trivially admitted (regression guard:
    /// the analysis must not be stricter than the old gate).
    #[test]
    fn self_only_model_is_local() {
        let mut b = DomainBuilder::new("d");
        b.class("C")
            .attr("n", DataType::Int)
            .event("Tick", &[])
            .state("S", "self.n = self.n + 1; gen Tick() to self;")
            .initial("S")
            .transition("S", "Tick", "S");
        let d = b.build().unwrap();
        let plan = analyze(&d);
        assert!(plan.admitted());
        assert!(!plan.uses_admission());
        assert!(matches!(plan.verdicts[0].1, Verdict::Local));
    }

    /// `foreach` over a self navigation keeps the `Via` shape.
    #[test]
    fn foreach_nav_binding_keeps_via_shape() {
        let mut b = DomainBuilder::new("d");
        b.class("P")
            .attr("acc", DataType::Int)
            .event("Go", &[])
            .state("I", "")
            .state(
                "W",
                "foreach c in self -> C[R1] { self.acc = self.acc + c.k; }",
            )
            .initial("I")
            .transition("I", "Go", "W");
        b.class("C").attr("k", DataType::Int);
        b.association("R1", "P", Multiplicity::One, "C", Multiplicity::Many);
        let d = b.build().unwrap();
        let effects = ModelEffects::gather(&d);
        let w = &effects.actions[1];
        let c = d.class_id("C").unwrap();
        let k = d.class(c).attr_id("k").unwrap();
        assert!(w
            .accesses
            .iter()
            .any(|a| a.class == c && a.attr == k && matches!(a.receiver, Receiver::Via(_))));
        // And it is admitted: `k` is const.
        assert!(analyze(&d).admitted());
    }

    /// Renders are deterministic and name the key facts.
    #[test]
    fn renders_are_deterministic() {
        let d = const_read_domain();
        let plan = analyze(&d);
        let h1 = plan.render_human(&d);
        let h2 = analyze(&d).render_human(&d);
        assert_eq!(h1, h2);
        assert!(h1.contains("shard-safe"), "{h1}");
        assert!(h1.contains("admitted to sharding"), "{h1}");
        let j = plan.render_json(&d);
        assert!(j.contains("\"admitted\": true"), "{j}");
        assert!(j.contains("\"uses_admission\": true"), "{j}");
    }

    /// `const_attrs` is exactly the never-written set.
    #[test]
    fn const_attrs_excludes_written() {
        let mut b = DomainBuilder::new("d");
        b.class("C")
            .attr("w", DataType::Int)
            .attr("k", DataType::Int)
            .event("Tick", &[])
            .state("S", "self.w = self.k;")
            .initial("S")
            .transition("S", "Tick", "S");
        let d = b.build().unwrap();
        let consts = const_attrs(&d);
        let c = d.class_id("C").unwrap();
        assert!(!consts.contains(&(c, d.class(c).attr_id("w").unwrap())));
        assert!(consts.contains(&(c, d.class(c).attr_id("k").unwrap())));
    }
}
