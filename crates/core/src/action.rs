//! Abstract syntax of the action language.
//!
//! The paper (§2) requires that "on receipt of a signal, a state machine
//! executes a set of actions that runs to completion before the next signal
//! is processed". This module defines those actions: a small, OAL-inspired
//! statement language over the [`crate::value::Value`] system —
//! assignment, instance creation/deletion, instance selection, association
//! navigation, relating/unrelating, **signal generation** (including
//! delayed/timer signals), and structured control flow.
//!
//! The AST is name-based; resolution against a [`Domain`](crate::model::Domain)
//! happens in the type checker ([`crate::typeck`]) and at interpretation
//! time ([`crate::interp`]). Every node pretty-prints via [`std::fmt::Display`]
//! to concrete syntax that the parser ([`crate::parse`]) accepts again —
//! property tests rely on that round trip.

use crate::error::Pos;
use crate::value::{BinOp, UnOp, Value};
use std::fmt;

/// An expression of the action language.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A local variable reference.
    Var(String),
    /// The instance executing the action (`self`).
    SelfRef,
    /// The placeholder for the candidate instance in a `where` clause
    /// (`selected`).
    Selected,
    /// A parameter of the received event (`rcvd.<name>`).
    Param(String),
    /// Attribute read: `<base>.<attr>`.
    Attr(Box<Expr>, String),
    /// Association navigation: `<base> -> Class[Rk]`; yields a `Set`.
    Nav(Box<Expr>, String, String),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Bridge (external-entity) function call: `ACTOR::func(args)`.
    BridgeCall(String, String, Vec<Expr>),
}

impl Expr {
    /// Integer literal shortcut.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Boolean literal shortcut.
    pub fn bool(v: bool) -> Expr {
        Expr::Lit(Value::Bool(v))
    }

    /// String literal shortcut.
    pub fn str(v: &str) -> Expr {
        Expr::Lit(Value::from(v))
    }

    /// Variable reference shortcut.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    /// `self.<attr>` shortcut.
    pub fn self_attr(name: &str) -> Expr {
        Expr::Attr(Box::new(Expr::SelfRef), name.to_owned())
    }

    /// Binary operation shortcut.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }
}

/// The left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local variable (created on first assignment, function-scoped).
    Var(String),
    /// An attribute of an instance-valued expression: `<base>.<attr>`.
    Attr(Expr, String),
}

/// The destination of a `generate` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum GenTarget {
    /// An instance-valued expression (including `self`).
    Inst(Expr),
    /// An external actor, by name: the signal leaves the domain and is
    /// *observable* — these signals form the trace compared by the
    /// verification layer.
    Actor(String),
}

/// A statement of the action language.
///
/// Equality is **position-insensitive**: two statements compare equal if
/// they are the same code, regardless of where they were parsed from. The
/// parser/printer round-trip property and model-equality checks depend on
/// this.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `lhs = expr;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Right-hand side.
        expr: Expr,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `v = create Class;` — creates an instance (its state machine starts
    /// in the initial state) and binds the reference.
    Create {
        /// Variable bound to the new instance.
        var: String,
        /// Class name.
        class: String,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `delete expr;` — deletes the referenced instance.
    Delete {
        /// Instance-valued expression.
        expr: Expr,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `select any v from Class [where <cond>];` — binds an arbitrary (but
    /// deterministic: lowest instance id) matching instance or the empty
    /// reference.
    SelectAny {
        /// Variable to bind.
        var: String,
        /// Class name.
        class: String,
        /// Optional filter; `selected` refers to the candidate.
        filter: Option<Expr>,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `select many v from Class [where <cond>];` — binds the matching set.
    SelectMany {
        /// Variable to bind.
        var: String,
        /// Class name.
        class: String,
        /// Optional filter; `selected` refers to the candidate.
        filter: Option<Expr>,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `relate a to b across Rk;`
    Relate {
        /// One end (instance-valued).
        a: Expr,
        /// Other end (instance-valued).
        b: Expr,
        /// Association name, e.g. `R1`.
        assoc: String,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `unrelate a from b across Rk;`
    Unrelate {
        /// One end (instance-valued).
        a: Expr,
        /// Other end (instance-valued).
        b: Expr,
        /// Association name, e.g. `R1`.
        assoc: String,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `gen Ev(args) to <target> [after <delay>];`
    ///
    /// With `after`, the signal is scheduled `delay` time units in the
    /// future (the timer idiom); the target must then be an instance.
    Generate {
        /// Event name.
        event: String,
        /// Event arguments, positional.
        args: Vec<Expr>,
        /// Destination.
        target: GenTarget,
        /// Optional delay expression (integer time units).
        delay: Option<Expr>,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `cancel Ev;` — cancels any pending delayed `Ev` signal to `self`.
    Cancel {
        /// Event name.
        event: String,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `if (cond) { .. } [elif (cond) { .. }]* [else { .. }]`
    If {
        /// `(condition, block)` pairs: the `if` arm followed by `elif` arms.
        arms: Vec<(Expr, Block)>,
        /// The `else` block, if present.
        otherwise: Option<Block>,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `foreach v in <set-expr> { .. }`
    ForEach {
        /// Loop variable (bound to an instance reference).
        var: String,
        /// Set-valued expression, snapshot before iteration.
        set: Expr,
        /// Loop body.
        body: Block,
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `break;`
    Break {
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `continue;`
    Continue {
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// `return;` — leaves the action block early.
    Return {
        /// Source position for diagnostics.
        pos: Pos,
    },
    /// An expression evaluated for its side effect (a bridge call):
    /// `ACTOR::func(args);`
    ExprStmt {
        /// The call expression.
        expr: Expr,
        /// Source position for diagnostics.
        pos: Pos,
    },
}

impl Stmt {
    /// The source position of this statement.
    pub fn pos(&self) -> Pos {
        match self {
            Stmt::Assign { pos, .. }
            | Stmt::Create { pos, .. }
            | Stmt::Delete { pos, .. }
            | Stmt::SelectAny { pos, .. }
            | Stmt::SelectMany { pos, .. }
            | Stmt::Relate { pos, .. }
            | Stmt::Unrelate { pos, .. }
            | Stmt::Generate { pos, .. }
            | Stmt::Cancel { pos, .. }
            | Stmt::If { pos, .. }
            | Stmt::While { pos, .. }
            | Stmt::ForEach { pos, .. }
            | Stmt::Break { pos }
            | Stmt::Continue { pos }
            | Stmt::Return { pos }
            | Stmt::ExprStmt { pos, .. } => *pos,
        }
    }
}

impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        use Stmt::*;
        match (self, other) {
            (
                Assign {
                    lhs: a, expr: b, ..
                },
                Assign {
                    lhs: a2, expr: b2, ..
                },
            ) => a == a2 && b == b2,
            (
                Create {
                    var: a, class: b, ..
                },
                Create {
                    var: a2, class: b2, ..
                },
            ) => a == a2 && b == b2,
            (Delete { expr: a, .. }, Delete { expr: a2, .. }) => a == a2,
            (
                SelectAny {
                    var: a,
                    class: b,
                    filter: c,
                    ..
                },
                SelectAny {
                    var: a2,
                    class: b2,
                    filter: c2,
                    ..
                },
            ) => a == a2 && b == b2 && c == c2,
            (
                SelectMany {
                    var: a,
                    class: b,
                    filter: c,
                    ..
                },
                SelectMany {
                    var: a2,
                    class: b2,
                    filter: c2,
                    ..
                },
            ) => a == a2 && b == b2 && c == c2,
            (
                Relate { a, b, assoc: r, .. },
                Relate {
                    a: a2,
                    b: b2,
                    assoc: r2,
                    ..
                },
            ) => a == a2 && b == b2 && r == r2,
            (
                Unrelate { a, b, assoc: r, .. },
                Unrelate {
                    a: a2,
                    b: b2,
                    assoc: r2,
                    ..
                },
            ) => a == a2 && b == b2 && r == r2,
            (
                Generate {
                    event: e,
                    args: a,
                    target: t,
                    delay: d,
                    ..
                },
                Generate {
                    event: e2,
                    args: a2,
                    target: t2,
                    delay: d2,
                    ..
                },
            ) => e == e2 && a == a2 && t == t2 && d == d2,
            (Cancel { event: e, .. }, Cancel { event: e2, .. }) => e == e2,
            (
                If {
                    arms: a,
                    otherwise: o,
                    ..
                },
                If {
                    arms: a2,
                    otherwise: o2,
                    ..
                },
            ) => a == a2 && o == o2,
            (
                While {
                    cond: c, body: b, ..
                },
                While {
                    cond: c2, body: b2, ..
                },
            ) => c == c2 && b == b2,
            (
                ForEach {
                    var: v,
                    set: s,
                    body: b,
                    ..
                },
                ForEach {
                    var: v2,
                    set: s2,
                    body: b2,
                    ..
                },
            ) => v == v2 && s == s2 && b == b2,
            (Break { .. }, Break { .. }) => true,
            (Continue { .. }, Continue { .. }) => true,
            (Return { .. }, Return { .. }) => true,
            (ExprStmt { expr: e, .. }, ExprStmt { expr: e2, .. }) => e == e2,
            _ => false,
        }
    }
}

/// A sequence of statements — the body of a state's entry action.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in execution order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// Total number of statements, counting nested blocks — used by the
    /// substrates' cycle-cost models and by codegen size metrics.
    pub fn weight(&self) -> usize {
        fn block_weight(b: &Block) -> usize {
            b.stmts.iter().map(stmt_weight).sum()
        }
        fn stmt_weight(s: &Stmt) -> usize {
            match s {
                Stmt::If {
                    arms, otherwise, ..
                } => {
                    1 + arms.iter().map(|(_, b)| block_weight(b)).sum::<usize>()
                        + otherwise.as_ref().map_or(0, block_weight)
                }
                Stmt::While { body, .. } | Stmt::ForEach { body, .. } => 1 + block_weight(body),
                _ => 1,
            }
        }
        block_weight(self)
    }
}

// ---------------------------------------------------------------------------
// Pretty printing (concrete syntax accepted by `crate::parse`)
// ---------------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "{s:?}"),
                Value::Real(r) if r.fract() == 0.0 && r.is_finite() => write!(f, "{r:.1}"),
                other => write!(f, "{other}"),
            },
            Expr::Var(n) => write!(f, "{n}"),
            Expr::SelfRef => write!(f, "self"),
            Expr::Selected => write!(f, "selected"),
            Expr::Param(n) => write!(f, "rcvd.{n}"),
            Expr::Attr(b, n) => write!(f, "{}.{n}", paren(b)),
            Expr::Nav(b, class, assoc) => write!(f, "{} -> {class}[{assoc}]", paren(b)),
            Expr::Unary(op, e) => match op {
                UnOp::Neg => write!(f, "-{}", paren(e)),
                UnOp::Not => write!(f, "not {}", paren(e)),
                _ => write!(f, "{op}({e})"),
            },
            Expr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::BridgeCall(actor, func, args) => {
                write!(f, "{actor}::{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parenthesises compound sub-expressions so precedence survives printing.
fn paren(e: &Expr) -> String {
    match e {
        Expr::Binary(..) | Expr::Unary(..) | Expr::Nav(..) => format!("({e})"),
        _ => e.to_string(),
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Var(n) => write!(f, "{n}"),
            LValue::Attr(b, n) => write!(f, "{}.{n}", paren(b)),
        }
    }
}

impl Block {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for s in &self.stmts {
            s.fmt_indented(f, indent)?;
        }
        Ok(())
    }
}

impl Stmt {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "    ".repeat(indent);
        match self {
            Stmt::Assign { lhs, expr, .. } => writeln!(f, "{pad}{lhs} = {expr};"),
            Stmt::Create { var, class, .. } => writeln!(f, "{pad}{var} = create {class};"),
            Stmt::Delete { expr, .. } => writeln!(f, "{pad}delete {expr};"),
            Stmt::SelectAny {
                var, class, filter, ..
            } => match filter {
                Some(c) => writeln!(f, "{pad}select any {var} from {class} where {c};"),
                None => writeln!(f, "{pad}select any {var} from {class};"),
            },
            Stmt::SelectMany {
                var, class, filter, ..
            } => match filter {
                Some(c) => writeln!(f, "{pad}select many {var} from {class} where {c};"),
                None => writeln!(f, "{pad}select many {var} from {class};"),
            },
            Stmt::Relate { a, b, assoc, .. } => {
                writeln!(f, "{pad}relate {a} to {b} across {assoc};")
            }
            Stmt::Unrelate { a, b, assoc, .. } => {
                writeln!(f, "{pad}unrelate {a} from {b} across {assoc};")
            }
            Stmt::Generate {
                event,
                args,
                target,
                delay,
                ..
            } => {
                write!(f, "{pad}gen {event}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") to ")?;
                match target {
                    GenTarget::Inst(e) => write!(f, "{e}")?,
                    GenTarget::Actor(n) => write!(f, "{n}")?,
                }
                if let Some(d) = delay {
                    write!(f, " after {d}")?;
                }
                writeln!(f, ";")
            }
            Stmt::Cancel { event, .. } => writeln!(f, "{pad}cancel {event};"),
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (i, (cond, block)) in arms.iter().enumerate() {
                    let kw = if i == 0 { "if" } else { "elif" };
                    writeln!(f, "{pad}{kw} ({cond}) {{")?;
                    block.fmt_indented(f, indent + 1)?;
                    write!(f, "{pad}}}")?;
                    writeln!(f)?;
                }
                if let Some(b) = otherwise {
                    writeln!(f, "{pad}else {{")?;
                    b.fmt_indented(f, indent + 1)?;
                    writeln!(f, "{pad}}}")?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                writeln!(f, "{pad}while ({cond}) {{")?;
                body.fmt_indented(f, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::ForEach { var, set, body, .. } => {
                writeln!(f, "{pad}foreach {var} in {set} {{")?;
                body.fmt_indented(f, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
            Stmt::Break { .. } => writeln!(f, "{pad}break;"),
            Stmt::Continue { .. } => writeln!(f, "{pad}continue;"),
            Stmt::Return { .. } => writeln!(f, "{pad}return;"),
            Stmt::ExprStmt { expr, .. } => writeln!(f, "{pad}{expr};"),
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::BinOp;

    #[test]
    fn expr_display() {
        let e = Expr::bin(BinOp::Add, Expr::self_attr("count"), Expr::int(1));
        assert_eq!(e.to_string(), "(self.count + 1)");
    }

    #[test]
    fn nav_display() {
        let e = Expr::Nav(Box::new(Expr::SelfRef), "Lamp".into(), "R1".into());
        assert_eq!(e.to_string(), "self -> Lamp[R1]");
    }

    #[test]
    fn stmt_display() {
        let s = Stmt::Generate {
            event: "Tick".into(),
            args: vec![Expr::int(3)],
            target: GenTarget::Inst(Expr::SelfRef),
            delay: Some(Expr::int(10)),
            pos: Pos::UNKNOWN,
        };
        assert_eq!(s.to_string(), "gen Tick(3) to self after 10;\n");
    }

    #[test]
    fn block_weight_counts_nested_statements() {
        let inner = Block {
            stmts: vec![
                Stmt::Break { pos: Pos::UNKNOWN },
                Stmt::Continue { pos: Pos::UNKNOWN },
            ],
        };
        let b = Block {
            stmts: vec![
                Stmt::While {
                    cond: Expr::bool(true),
                    body: inner,
                    pos: Pos::UNKNOWN,
                },
                Stmt::Return { pos: Pos::UNKNOWN },
            ],
        };
        assert_eq!(b.weight(), 4);
    }

    #[test]
    fn if_display_has_elif_and_else() {
        let s = Stmt::If {
            arms: vec![
                (Expr::bool(true), Block::new()),
                (Expr::bool(false), Block::new()),
            ],
            otherwise: Some(Block::new()),
            pos: Pos::UNKNOWN,
        };
        let text = s.to_string();
        assert!(text.contains("if (true)"));
        assert!(text.contains("elif (false)"));
        assert!(text.contains("else {"));
    }

    #[test]
    fn real_literal_prints_with_decimal_point() {
        // `2.0` must not print as `2` or it would reparse as an int.
        let e = Expr::Lit(Value::Real(2.0));
        assert_eq!(e.to_string(), "2.0");
    }
}
