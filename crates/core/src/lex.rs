//! Lexer shared by the action-language parser ([`crate::parse`]) and the
//! model-file parser in `xtuml-lang`.
//!
//! The token set is deliberately small: identifiers (keywords are
//! recognised by the parsers, not the lexer), integer/real/string literals,
//! and punctuation. `//` starts a line comment.

use crate::error::{CoreError, Pos, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (contains a `.`).
    Real(f64),
    /// String literal (supports `\"`, `\\`, `\n`, `\t` escapes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `->`
    Arrow,
    /// `--`
    DashDash,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Real(v) => write!(f, "`{v}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::ColonColon => write!(f, "`::`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::DashDash => write!(f, "`--`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Eq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// Tokenises `src`, appending an [`Tok::Eof`] sentinel.
///
/// # Errors
///
/// Returns [`CoreError::Lex`] on unknown characters, malformed numbers,
/// or unterminated strings.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $pos:expr) => {
            out.push(Spanned {
                tok: $tok,
                pos: $pos,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos::new(line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                    col += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                match word.as_str() {
                    "true" => push!(Tok::Ident("true".into()), pos),
                    "false" => push!(Tok::Ident("false".into()), pos),
                    _ => push!(Tok::Ident(word), pos),
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_real = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                // A `.` followed by a digit makes this a real literal; a
                // bare `.` is attribute access on an int (not allowed, but
                // the parser will say so with a better message).
                if i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    is_real = true;
                    i += 1;
                    col += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_real {
                    let v = text.parse::<f64>().map_err(|e| CoreError::Lex {
                        pos,
                        msg: format!("bad real literal `{text}`: {e}"),
                    })?;
                    push!(Tok::Real(v), pos);
                } else {
                    let v = text.parse::<i64>().map_err(|e| CoreError::Lex {
                        pos,
                        msg: format!("bad int literal `{text}`: {e}"),
                    })?;
                    push!(Tok::Int(v), pos);
                }
            }
            '"' => {
                i += 1;
                col += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some('\n') => {
                            return Err(CoreError::Lex {
                                pos,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some('"') => {
                            i += 1;
                            col += 1;
                            break;
                        }
                        Some('\\') => {
                            let esc = bytes.get(i + 1).copied();
                            let ch = match esc {
                                Some('n') => '\n',
                                Some('t') => '\t',
                                Some('\\') => '\\',
                                Some('"') => '"',
                                other => {
                                    return Err(CoreError::Lex {
                                        pos,
                                        msg: format!("unknown escape `\\{}`", other.unwrap_or(' ')),
                                    })
                                }
                            };
                            s.push(ch);
                            i += 2;
                            col += 2;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                            col += 1;
                        }
                    }
                }
                push!(Tok::Str(s), pos);
            }
            _ => {
                // Punctuation, longest match first.
                let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
                let (tok, len) = match two.as_str() {
                    "::" => (Tok::ColonColon, 2),
                    "->" => (Tok::Arrow, 2),
                    "--" => (Tok::DashDash, 2),
                    "==" => (Tok::Eq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        '[' => (Tok::LBracket, 1),
                        ']' => (Tok::RBracket, 1),
                        ';' => (Tok::Semi, 1),
                        ',' => (Tok::Comma, 1),
                        '.' => (Tok::Dot, 1),
                        ':' => (Tok::Colon, 1),
                        '=' => (Tok::Assign, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        other => {
                            return Err(CoreError::Lex {
                                pos,
                                msg: format!("unexpected character `{other}`"),
                            })
                        }
                    },
                };
                push!(tok, pos);
                i += len;
                col += len as u32;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: Pos::new(line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            toks("x = y + 1;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("y".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("a == b != c <= d >= e -> f :: g --"),
            vec![
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Ge,
                Tok::Ident("e".into()),
                Tok::Arrow,
                Tok::Ident("f".into()),
                Tok::ColonColon,
                Tok::Ident("g".into()),
                Tok::DashDash,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("3.5"), vec![Tok::Real(3.5), Tok::Eof]);
        // `1.x` lexes as int, dot, ident — attribute access, not a real.
        assert_eq!(
            toks("1.x"),
            vec![Tok::Int(1), Tok::Dot, Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""hi\n\"there\"""#),
            vec![Tok::Str("hi\n\"there\"".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos::new(1, 1));
        assert_eq!(ts[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn unknown_char_is_an_error() {
        assert!(lex("a ? b").is_err());
        assert!(lex("a #").is_err());
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(toks(""), vec![Tok::Eof]);
    }
}
