//! Error types shared across the xtUML toolchain core.

use std::fmt;

/// Convenience alias used throughout `xtuml-core`.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// A source position (1-based line and column) attached to diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
    /// 1-based column number; 0 means "unknown".
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    pub const fn new(line: u32, col: u32) -> Self {
        Self { line, col }
    }

    /// The "unknown position" sentinel, used for programmatically built
    /// models that never came from source text.
    pub const UNKNOWN: Pos = Pos { line: 0, col: 0 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<builtin>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// Errors produced while building, validating, type-checking or executing
/// an Executable UML model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A lexical error in action or model source text.
    Lex {
        /// Where the bad input was found.
        pos: Pos,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// A syntax error in action or model source text.
    Parse {
        /// Where the parser gave up.
        pos: Pos,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// A name (class, event, state, attribute, association, actor or
    /// variable) could not be resolved.
    Unresolved {
        /// Element kind, e.g. `"class"`.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A name was declared twice in the same scope.
    Duplicate {
        /// Element kind, e.g. `"state"`.
        kind: &'static str,
        /// The offending name.
        name: String,
    },
    /// A static type error in an action block.
    Type {
        /// Where the error occurred, if known.
        pos: Pos,
        /// Human-readable description of the mismatch.
        msg: String,
    },
    /// A structural model-validation failure (bad transition, missing
    /// initial state, arity mismatch, ...).
    Validate {
        /// Human-readable description.
        msg: String,
    },
    /// A runtime error while interpreting actions (dangling instance
    /// reference, division by zero, empty-set navigation, ...).
    Runtime {
        /// Human-readable description.
        msg: String,
    },
    /// An event arrived in a state with no transition declared for it.
    ///
    /// In Executable UML an unexpected event is a specification error
    /// ("can't happen"), not something to silently drop.
    CantHappen {
        /// The class in which the violation occurred.
        class: String,
        /// The state the instance was in.
        state: String,
        /// The offending event.
        event: String,
    },
}

impl CoreError {
    /// Shorthand constructor for runtime errors.
    pub fn runtime(msg: impl Into<String>) -> Self {
        CoreError::Runtime { msg: msg.into() }
    }

    /// Shorthand constructor for validation errors.
    pub fn validate(msg: impl Into<String>) -> Self {
        CoreError::Validate { msg: msg.into() }
    }

    /// Shorthand constructor for unresolved-name errors.
    pub fn unresolved(kind: &'static str, name: impl Into<String>) -> Self {
        CoreError::Unresolved {
            kind,
            name: name.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            CoreError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            CoreError::Unresolved { kind, name } => write!(f, "unknown {kind} `{name}`"),
            CoreError::Duplicate { kind, name } => write!(f, "duplicate {kind} `{name}`"),
            CoreError::Type { pos, msg } => write!(f, "type error at {pos}: {msg}"),
            CoreError::Validate { msg } => write!(f, "invalid model: {msg}"),
            CoreError::Runtime { msg } => write!(f, "runtime error: {msg}"),
            CoreError::CantHappen {
                class,
                state,
                event,
            } => write!(
                f,
                "can't-happen: event `{event}` received by `{class}` in state `{state}`"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CoreError::Lex {
            pos: Pos::new(3, 14),
            msg: "bad char".into(),
        };
        assert_eq!(e.to_string(), "lex error at 3:14: bad char");

        let e = CoreError::unresolved("class", "Oven");
        assert_eq!(e.to_string(), "unknown class `Oven`");

        let e = CoreError::CantHappen {
            class: "Oven".into(),
            state: "Idle".into(),
            event: "Tick".into(),
        };
        assert!(e.to_string().contains("can't-happen"));
    }

    #[test]
    fn unknown_pos_displays_builtin() {
        assert_eq!(Pos::UNKNOWN.to_string(), "<builtin>");
        assert_eq!(Pos::new(2, 5).to_string(), "2:5");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
