//! Marks — "sticky notes" on the model (paper §3).
//!
//! > *"Marks describe models but they are not a part of them... A mark is a
//! > lightweight, non-intrusive extension to models that captures
//! > information required for mappings without polluting those models."*
//!
//! A [`MarkSet`] maps model-element references to key/value pairs. The
//! model object graph is **never** modified by marking — this module holds
//! no reference to a [`Domain`](crate::model::Domain); it only names
//! elements by path. Mapping rules (in `xtuml-mda`) consult marks to decide
//! which rule to apply, e.g. [`MarkSet::is_hardware`] checks the canonical
//! `isHardware` mark. Retargeting a model to a different implementation
//! technology is a matter of changing the marks, not the model.

use std::collections::BTreeMap;
use std::fmt;

/// The kind of model element a mark is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ElemKind {
    /// The domain itself (platform-wide marks: clock rates, bus latency).
    Domain,
    /// A class (the partitioning grain: `isHardware`).
    Class,
    /// An actor on the domain boundary.
    Actor,
    /// An association.
    Assoc,
}

impl fmt::Display for ElemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElemKind::Domain => "domain",
            ElemKind::Class => "class",
            ElemKind::Actor => "actor",
            ElemKind::Assoc => "assoc",
        };
        write!(f, "{s}")
    }
}

/// A reference to a markable model element, by kind and name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElemRef {
    /// Element kind.
    pub kind: ElemKind,
    /// Element name (empty for [`ElemKind::Domain`]).
    pub name: String,
}

impl ElemRef {
    /// Refers to the domain itself.
    pub fn domain() -> ElemRef {
        ElemRef {
            kind: ElemKind::Domain,
            name: String::new(),
        }
    }

    /// Refers to the named class.
    pub fn class(name: impl Into<String>) -> ElemRef {
        ElemRef {
            kind: ElemKind::Class,
            name: name.into(),
        }
    }

    /// Refers to the named actor.
    pub fn actor(name: impl Into<String>) -> ElemRef {
        ElemRef {
            kind: ElemKind::Actor,
            name: name.into(),
        }
    }

    /// Refers to the named association.
    pub fn assoc(name: impl Into<String>) -> ElemRef {
        ElemRef {
            kind: ElemKind::Assoc,
            name: name.into(),
        }
    }
}

impl fmt::Display for ElemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == ElemKind::Domain {
            write!(f, "domain")
        } else {
            write!(f, "{} {}", self.kind, self.name)
        }
    }
}

/// A mark value.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkValue {
    /// Boolean mark, e.g. `isHardware = true`.
    Bool(bool),
    /// Integer mark, e.g. `queueDepth = 8`.
    Int(i64),
    /// String mark, e.g. `clockDomain = "fast"`.
    Str(String),
}

impl MarkValue {
    /// The boolean payload, if this is a boolean mark.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            MarkValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer mark.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            MarkValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a string mark.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            MarkValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for MarkValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkValue::Bool(b) => write!(f, "{b}"),
            MarkValue::Int(i) => write!(f, "{i}"),
            MarkValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<bool> for MarkValue {
    fn from(v: bool) -> Self {
        MarkValue::Bool(v)
    }
}
impl From<i64> for MarkValue {
    fn from(v: i64) -> Self {
        MarkValue::Int(v)
    }
}
impl From<&str> for MarkValue {
    fn from(v: &str) -> Self {
        MarkValue::Str(v.to_owned())
    }
}

/// Well-known mark keys understood by the stock mapping rules.
pub mod keys {
    /// Class mark: implement this class in hardware (paper §3's example).
    pub const IS_HARDWARE: &str = "isHardware";
    /// Class mark: event-queue depth in the generated implementation.
    pub const QUEUE_DEPTH: &str = "queueDepth";
    /// Class mark: scheduling priority of the generated software task.
    pub const PRIORITY: &str = "priority";
    /// Domain mark: CPU clock in kHz for the software platform model.
    pub const CPU_KHZ: &str = "cpuKhz";
    /// Domain mark: hardware clock in kHz.
    pub const HW_KHZ: &str = "hwKhz";
    /// Domain mark: HW↔SW bus round-trip latency in bus cycles.
    pub const BUS_LATENCY: &str = "busLatency";
}

/// A set of marks over one model — the unit the paper says you change to
/// change the partition.
///
/// ```
/// use xtuml_core::marks::{ElemRef, MarkSet, keys};
///
/// let mut marks = MarkSet::new();
/// marks.set(ElemRef::class("PacketFilter"), keys::IS_HARDWARE, true);
/// assert!(marks.is_hardware("PacketFilter"));
/// assert!(!marks.is_hardware("PolicyManager"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MarkSet {
    marks: BTreeMap<ElemRef, BTreeMap<String, MarkValue>>,
}

impl MarkSet {
    /// Creates an empty mark set (every element gets platform defaults).
    pub fn new() -> MarkSet {
        MarkSet::default()
    }

    /// Sets a mark, replacing any previous value for the same key.
    pub fn set(
        &mut self,
        elem: ElemRef,
        key: impl Into<String>,
        value: impl Into<MarkValue>,
    ) -> &mut Self {
        self.marks
            .entry(elem)
            .or_default()
            .insert(key.into(), value.into());
        self
    }

    /// Removes a mark; returns the previous value if present.
    pub fn unset(&mut self, elem: &ElemRef, key: &str) -> Option<MarkValue> {
        let vals = self.marks.get_mut(elem)?;
        let old = vals.remove(key);
        if vals.is_empty() {
            self.marks.remove(elem);
        }
        old
    }

    /// Reads a mark.
    pub fn get(&self, elem: &ElemRef, key: &str) -> Option<&MarkValue> {
        self.marks.get(elem)?.get(key)
    }

    /// Reads a boolean mark, defaulting to `false` when absent.
    pub fn get_bool(&self, elem: &ElemRef, key: &str) -> bool {
        self.get(elem, key)
            .and_then(MarkValue::as_bool)
            .unwrap_or(false)
    }

    /// Reads an integer mark with a default.
    pub fn get_int_or(&self, elem: &ElemRef, key: &str, default: i64) -> i64 {
        self.get(elem, key)
            .and_then(MarkValue::as_int)
            .unwrap_or(default)
    }

    /// True if the named class carries `isHardware = true`.
    pub fn is_hardware(&self, class: &str) -> bool {
        self.get_bool(&ElemRef::class(class), keys::IS_HARDWARE)
    }

    /// Marks the named class for hardware implementation (convenience for
    /// the canonical `isHardware` mark).
    pub fn mark_hardware(&mut self, class: &str) -> &mut Self {
        self.set(ElemRef::class(class), keys::IS_HARDWARE, true)
    }

    /// Moves a class between partitions by flipping `isHardware` —
    /// the paper's "changing the partition is a matter of changing the
    /// placement of the marks". Returns the new placement.
    pub fn toggle_hardware(&mut self, class: &str) -> bool {
        let now = !self.is_hardware(class);
        self.set(ElemRef::class(class), keys::IS_HARDWARE, now);
        now
    }

    /// Iterates over all `(element, key, value)` marks in deterministic
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&ElemRef, &str, &MarkValue)> {
        self.marks
            .iter()
            .flat_map(|(e, kv)| kv.iter().map(move |(k, v)| (e, k.as_str(), v)))
    }

    /// Number of individual marks.
    pub fn len(&self) -> usize {
        self.marks.values().map(BTreeMap::len).sum()
    }

    /// True if no marks are set.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Counts the marks that differ between two mark sets — the "edit
    /// distance" reported by the repartitioning experiment (E2).
    pub fn diff_count(&self, other: &MarkSet) -> usize {
        let mut count = 0;
        for (e, k, v) in self.iter() {
            if other.get(e, k) != Some(v) {
                count += 1;
            }
        }
        for (e, k, _) in other.iter() {
            if self.get(e, k).is_none() {
                count += 1;
            }
        }
        count
    }
}

impl fmt::Display for MarkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (elem, key, value) in self.iter() {
            writeln!(f, "mark {elem} {key} = {value};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut m = MarkSet::new();
        m.set(ElemRef::class("A"), keys::IS_HARDWARE, true);
        m.set(ElemRef::class("A"), keys::QUEUE_DEPTH, 8i64);
        assert_eq!(m.len(), 2);
        assert!(m.is_hardware("A"));
        assert_eq!(m.get_int_or(&ElemRef::class("A"), keys::QUEUE_DEPTH, 4), 8);
        assert_eq!(m.get_int_or(&ElemRef::class("B"), keys::QUEUE_DEPTH, 4), 4);
        let old = m.unset(&ElemRef::class("A"), keys::IS_HARDWARE);
        assert_eq!(old, Some(MarkValue::Bool(true)));
        assert!(!m.is_hardware("A"));
    }

    #[test]
    fn toggle_moves_partition() {
        let mut m = MarkSet::new();
        assert!(m.toggle_hardware("X"));
        assert!(m.is_hardware("X"));
        assert!(!m.toggle_hardware("X"));
        assert!(!m.is_hardware("X"));
    }

    #[test]
    fn marks_do_not_touch_other_elements() {
        let mut m = MarkSet::new();
        m.mark_hardware("A");
        assert!(!m.is_hardware("B"));
        assert!(m.get(&ElemRef::actor("A"), keys::IS_HARDWARE).is_none());
    }

    #[test]
    fn diff_count_is_symmetric_edit_distance() {
        let mut a = MarkSet::new();
        a.mark_hardware("X");
        a.set(ElemRef::domain(), keys::CPU_KHZ, 100_000i64);
        let mut b = a.clone();
        assert_eq!(a.diff_count(&b), 0);
        b.toggle_hardware("X"); // change
        b.mark_hardware("Y"); // addition
        assert_eq!(a.diff_count(&b), 2);
        assert_eq!(b.diff_count(&a), 2);
    }

    #[test]
    fn display_lists_marks_deterministically() {
        let mut m = MarkSet::new();
        m.set(ElemRef::class("B"), "k", 1i64);
        m.set(ElemRef::class("A"), "k", "v");
        let text = m.to_string();
        let a_pos = text.find("class A").unwrap();
        let b_pos = text.find("class B").unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn empty_set_reports_empty() {
        let m = MarkSet::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.iter().count(), 0);
    }
}
