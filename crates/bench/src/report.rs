//! Plain-text table rendering for experiment reports.

/// A rendered table: header + rows of equal arity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }
}
