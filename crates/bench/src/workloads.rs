//! Workload generators for the experiments.
//!
//! Three model families, scalable by a size parameter:
//!
//! * **pipeline** — `n` stages forwarding a token (the paper-motivating
//!   dataflow SoC shape; re-exported from `xtuml_core::builder`);
//! * **fan-out** — one dispatcher broadcasting to `n` workers that each
//!   report to a collector (stress for signal fan-out and the scheduler);
//! * **ring** — `n` nodes passing a decrementing token around a ring
//!   (long causal chains; every hop is a potential boundary crossing);
//! * **many-core** — `n` independent cores each crunching a self-ticked
//!   countdown (shard-safe by construction; the scaling workload for the
//!   parallel engine, where every core can run on a different worker).

pub use xtuml_core::builder::pipeline_domain;
use xtuml_core::builder::DomainBuilder;
use xtuml_core::model::{Domain, Multiplicity};
use xtuml_core::value::{DataType, Value};
use xtuml_verify::TestCase;

/// Builds the fan-out domain: `Dispatcher` → `Worker{0..n}` → `Collector`.
///
/// # Panics
///
/// Panics if `workers` is zero (the builder output is validated, so any
/// failure is a bug in this generator).
pub fn fanout_domain(workers: usize) -> Domain {
    assert!(workers >= 1);
    let mut b = DomainBuilder::new("fanout");
    b.actor("SINK").event("out", &[("v", DataType::Int)]);
    let mut body = String::from("n = rcvd.v;\n");
    for k in 0..workers {
        body.push_str(&format!(
            "w{k} = any(self -> Worker{k}[RW{k}]);\ngen Work(n + {k}) to w{k};\n"
        ));
    }
    b.class("Dispatcher")
        .event("Burst", &[("v", DataType::Int)])
        .state("Idle", "")
        .state("Bursting", &body)
        .initial("Idle")
        .transition("Idle", "Burst", "Bursting")
        .transition("Bursting", "Burst", "Bursting");
    for k in 0..workers {
        b.class(&format!("Worker{k}"))
            .attr("acc", DataType::Int)
            .event("Work", &[("v", DataType::Int)])
            .state("Wait", "")
            .state(
                "Working",
                &format!(
                    "self.acc = self.acc + rcvd.v;\n\
                     c = any(self -> Collector[RC{k}]);\n\
                     gen Done(rcvd.v * 2) to c;"
                ),
            )
            .initial("Wait")
            .transition("Wait", "Work", "Working")
            .transition("Working", "Work", "Working");
        b.association(
            &format!("RW{k}"),
            "Dispatcher",
            Multiplicity::One,
            &format!("Worker{k}"),
            Multiplicity::One,
        );
        b.association(
            &format!("RC{k}"),
            &format!("Worker{k}"),
            Multiplicity::One,
            "Collector",
            Multiplicity::Many,
        );
    }
    // The collector batches one `out` per complete burst so the
    // observable value is order-independent — workers legitimately race
    // (and race differently on different partitions).
    b.class("Collector")
        .attr("subtotal", DataType::Int)
        .attr("seen", DataType::Int)
        .event("Done", &[("v", DataType::Int)])
        .state("Open", "")
        .state(
            "Counting",
            &format!(
                "self.subtotal = self.subtotal + rcvd.v;\n\
                 self.seen = self.seen + 1;\n\
                 if (self.seen == {workers}) {{\n\
                     gen out(self.subtotal) to SINK;\n\
                     self.seen = 0;\n\
                     self.subtotal = 0;\n\
                 }}"
            ),
        )
        .initial("Open")
        .transition("Open", "Done", "Counting")
        .transition("Counting", "Done", "Counting");
    b.build().expect("fan-out generator emits valid models")
}

/// A test case for the fan-out domain: `bursts` bursts into the
/// dispatcher.
pub fn fanout_case(workers: usize, bursts: usize) -> TestCase {
    let mut tc = TestCase::new(&format!("fanout-{workers}x{bursts}"));
    let d = tc.create("Dispatcher");
    let mut w = Vec::new();
    for k in 0..workers {
        w.push(tc.create(&format!("Worker{k}")));
    }
    let c = tc.create("Collector");
    for (k, wk) in w.iter().enumerate() {
        tc.relate(d, *wk, &format!("RW{k}"));
        tc.relate(*wk, c, &format!("RC{k}"));
    }
    for i in 0..bursts {
        tc.inject(i as u64, d, "Burst", vec![Value::Int(i as i64 * 10)]);
    }
    tc
}

/// Builds the ring domain: `Node{0..n}` passing a decrementing token.
///
/// # Panics
///
/// Panics if `nodes < 2`.
pub fn ring_domain(nodes: usize) -> Domain {
    assert!(nodes >= 2);
    let mut b = DomainBuilder::new("ring");
    b.actor("SINK").event("stopped", &[("at", DataType::Int)]);
    for k in 0..nodes {
        let next = (k + 1) % nodes;
        let body = format!(
            "if (rcvd.v > 0) {{\n\
                 nx = any(self -> Node{next}[RN{k}]);\n\
                 gen Token(rcvd.v - 1) to nx;\n\
             }}\n\
             else {{\n\
                 gen stopped({k}) to SINK;\n\
             }}"
        );
        b.class(&format!("Node{k}"))
            .attr("hops", DataType::Int)
            .event("Token", &[("v", DataType::Int)])
            .state("Idle", "")
            .state("Passing", &body)
            .initial("Idle")
            .transition("Idle", "Token", "Passing")
            .transition("Passing", "Token", "Passing");
    }
    for k in 0..nodes {
        let next = (k + 1) % nodes;
        b.association(
            &format!("RN{k}"),
            &format!("Node{k}"),
            Multiplicity::One,
            &format!("Node{next}"),
            Multiplicity::One,
        );
    }
    b.build().expect("ring generator emits valid models")
}

/// Builds the many-core domain: `cores` unconnected `Core{k}` machines.
/// Each `Tick(v)` folds `v` into a per-core accumulator and self-sends
/// `Tick(v - 1)` until the countdown hits zero, then reports the
/// accumulator to `SINK`. No core touches another's state, so the model
/// passes the shard-safety analysis and scales embarrassingly.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn manycore_domain(cores: usize) -> Domain {
    assert!(cores >= 1);
    let mut b = DomainBuilder::new("manycore");
    b.actor("SINK").event("out", &[("v", DataType::Int)]);
    for k in 0..cores {
        let body = format!(
            "self.acc = self.acc + rcvd.v * rcvd.v + {k};\n\
             if (rcvd.v > 0) {{\n\
                 gen Tick(rcvd.v - 1) to self;\n\
             }}\n\
             else {{\n\
                 gen out(self.acc) to SINK;\n\
             }}"
        );
        b.class(&format!("Core{k}"))
            .attr("acc", DataType::Int)
            .event("Tick", &[("v", DataType::Int)])
            .state("Idle", "")
            .state("Crunching", &body)
            .initial("Idle")
            .transition("Idle", "Tick", "Crunching")
            .transition("Crunching", "Tick", "Crunching");
    }
    b.build().expect("many-core generator emits valid models")
}

/// A test case for the many-core domain: every core starts a countdown
/// of `work` ticks at time 0.
pub fn manycore_case(cores: usize, work: i64) -> TestCase {
    let mut tc = TestCase::new(&format!("manycore-{cores}x{work}"));
    for k in 0..cores {
        tc.create(&format!("Core{k}"));
    }
    for k in 0..cores {
        tc.inject(0, k, "Tick", vec![Value::Int(work)]);
    }
    tc
}

/// Builds the null-action domain: a single `Nil` class whose `Ping`
/// transitions carry **empty** action bodies. Every dispatched signal
/// does no model work at all, so a run's wall time is pure engine
/// overhead — scheduler pick, dispatch-slot lookup, trace recording —
/// which is exactly what the dispatch microbench wants to isolate.
pub fn null_domain() -> Domain {
    let mut b = DomainBuilder::new("nulldisp");
    b.class("Nil")
        .event("Ping", &[])
        .state("Idle", "")
        .state("Spin", "")
        .initial("Idle")
        .transition("Idle", "Ping", "Spin")
        .transition("Spin", "Ping", "Spin");
    b.build().expect("null-action generator emits valid models")
}

/// A test case for the ring: one token with `hops` hops left.
pub fn ring_case(nodes: usize, hops: i64) -> TestCase {
    let mut tc = TestCase::new(&format!("ring-{nodes}x{hops}"));
    for k in 0..nodes {
        tc.create(&format!("Node{k}"));
    }
    for k in 0..nodes {
        tc.relate(k, (k + 1) % nodes, &format!("RN{k}"));
    }
    tc.inject(0, 0, "Token", vec![Value::Int(hops)]);
    tc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::marks::MarkSet;
    use xtuml_exec::SchedPolicy;
    use xtuml_verify::{run_model, verify_partition};

    #[test]
    fn fanout_runs_and_counts() {
        let d = fanout_domain(4);
        let tc = fanout_case(4, 2);
        let obs = run_model(&d, SchedPolicy::default(), &tc).unwrap();
        // One batched report per batch of 4 dones. Bursts may interleave
        // (a legal concurrency outcome), so only the grand total is a
        // stable assertion: 2 * sum of (10i + k) over both bursts = 104.
        assert_eq!(obs.len(), 2);
        let total: i64 = obs.iter().map(|o| o.args[0].as_int().unwrap()).sum();
        assert_eq!(total, 104);
    }

    #[test]
    fn ring_terminates_at_expected_node() {
        let d = ring_domain(3);
        let tc = ring_case(3, 7);
        let obs = run_model(&d, SchedPolicy::default(), &tc).unwrap();
        assert_eq!(obs.len(), 1);
        // 7 hops from node 0 → token dies at node (0+7) mod 3 = 1.
        assert_eq!(obs[0].args, vec![Value::Int(1)]);
    }

    #[test]
    fn manycore_is_shard_safe_and_sums_each_countdown() {
        let d = manycore_domain(6);
        xtuml_exec::shard_safety(&d).expect("many-core workload must stay shard-safe");
        let tc = manycore_case(6, 4);
        let obs = run_model(&d, SchedPolicy::default(), &tc).unwrap();
        assert_eq!(obs.len(), 6);
        // Core k reports sum of v^2 for v=4..0 plus k per tick: 30 + 5k.
        let mut totals: Vec<i64> = obs.iter().map(|o| o.args[0].as_int().unwrap()).collect();
        totals.sort_unstable();
        assert_eq!(totals, vec![30, 35, 40, 45, 50, 55]);
    }

    #[test]
    fn null_domain_dispatches_without_doing_anything() {
        use xtuml_exec::{Engine, Simulation};
        let d = null_domain();
        let run = |engine| {
            let mut sim = Simulation::new(&d);
            let nil = sim.create("Nil").unwrap();
            for _ in 0..16 {
                sim.inject(0, nil, "Ping", vec![]).unwrap();
            }
            sim.set_engine(engine);
            sim.run_to_quiescence().unwrap();
            let fired = sim
                .trace()
                .iter()
                .filter(|e| matches!(e, xtuml_exec::TraceEvent::Dispatch { .. }))
                .count();
            assert_eq!(fired, 16);
            sim.trace().clone()
        };
        assert_eq!(run(Engine::Bc), run(Engine::Frames));
    }

    #[test]
    fn ring_partition_equivalence_holds() {
        let d = ring_domain(3);
        let tc = ring_case(3, 5);
        let mut marks = MarkSet::new();
        marks.mark_hardware("Node1");
        let report = verify_partition(&d, &marks, &tc).unwrap();
        assert!(report.is_equivalent(), "{:?}", report.divergences);
    }

    #[test]
    fn fanout_partition_equivalence_holds() {
        let d = fanout_domain(3);
        // One burst: the batched total is interleaving-independent.
        let tc = fanout_case(3, 1);
        let mut marks = MarkSet::new();
        marks.mark_hardware("Worker0");
        marks.mark_hardware("Worker2");
        let report = verify_partition(&d, &marks, &tc).unwrap();
        assert!(report.is_equivalent(), "{:?}", report.divergences);
    }
}
