//! Append-only benchmark history, shared by the self-timed binaries.
//!
//! Every harness run appends exactly one line of JSON to
//! `BENCH_history.jsonl` — `{bench, unix_secs, aggregate_signals_per_sec}`
//! — so regressions can be bisected across commits without diffing the
//! per-run report files (which each run overwrites).

use std::io::Write as _;

/// Appends one history line for `bench` with the given aggregate rate.
/// Creates the file on first use; never truncates.
///
/// # Errors
///
/// Propagates filesystem errors from opening or writing the file.
pub fn append(path: &str, bench: &str, aggregate_signals_per_sec: f64) -> std::io::Result<()> {
    append_with(path, bench, aggregate_signals_per_sec, &[])
}

/// Like [`append`], but with extra key/value columns on the same row
/// (values are emitted raw, so pass pre-rendered JSON — numbers as-is,
/// strings pre-quoted). Telemetry-aware harnesses use this to record
/// per-epoch imbalance and cross-shard routing volume next to the rate.
///
/// # Errors
///
/// Propagates filesystem errors from opening or writing the file.
pub fn append_with(
    path: &str,
    bench: &str,
    aggregate_signals_per_sec: f64,
    extras: &[(&str, String)],
) -> std::io::Result<()> {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut row = format!(
        "{{\"bench\": \"{bench}\", \"unix_secs\": {unix_secs}, \"aggregate_signals_per_sec\": {aggregate_signals_per_sec:.0}"
    );
    for (k, v) in extras {
        row.push_str(&format!(", \"{k}\": {v}"));
    }
    row.push('}');
    writeln!(f, "{row}")
}

/// Extracts `"aggregate_signals_per_sec": <number>` from a report JSON
/// previously written by one of the harnesses (enough of a parser for our
/// own output).
#[must_use]
pub fn aggregate_rate(json: &str) -> Option<f64> {
    let key = "\"aggregate_signals_per_sec\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_rate_parses_our_own_output() {
        let json = "{\n  \"rows\": [],\n  \"aggregate_signals_per_sec\": 123456\n}\n";
        assert_eq!(aggregate_rate(json), Some(123456.0));
        assert_eq!(aggregate_rate("{}"), None);
    }

    #[test]
    fn append_is_append_only() {
        let dir = std::env::temp_dir().join("xtuml-bench-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.jsonl");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        append(path, "a", 10.0).unwrap();
        append(path, "b", 20.0).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bench\": \"a\""));
        assert!(lines[1].contains("\"aggregate_signals_per_sec\": 20"));
        let _ = std::fs::remove_file(path);
    }
}
