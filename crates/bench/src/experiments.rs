//! Experiment runners E1–E6 (see DESIGN.md §6).
//!
//! Each runner is deterministic given its parameters and returns a
//! [`Table`]; the `experiments` binary prints every table, and
//! EXPERIMENTS.md records a captured run alongside the paper-claim each
//! experiment operationalises.

use crate::report::Table;
use crate::workloads;
use std::time::Instant;
use xtuml_core::marks::{keys, ElemRef, MarkSet};
use xtuml_core::value::Value;
use xtuml_exec::{SchedPolicy, Simulation};
use xtuml_mda::ModelCompiler;
use xtuml_verify::drift::{simulate_generated_flow, simulate_manual_flow, DriftConfig};
use xtuml_verify::{check_equivalence, run_compiled, run_model, TestCase};

/// E1 — interface drift: manual dual-maintenance vs generated interface
/// (paper §1 motivation, §4 resolution).
pub fn e1_interface_drift(steps: usize, probs: &[f64], seeds: u64) -> Table {
    let mut t = Table::new(
        "E1 — interface drift: hand-maintained halves vs generated interface",
        &[
            "flow",
            "miss prob",
            "steps",
            "mean final mismatches",
            "runs diverged",
        ],
    );
    for &p in probs {
        let mut total = 0usize;
        let mut diverged = 0usize;
        for seed in 0..seeds {
            let r = simulate_manual_flow(&DriftConfig {
                steps,
                miss_probability: p,
                seed,
            });
            total += r.final_mismatches();
            diverged += usize::from(r.first_divergence().is_some());
        }
        t.row(vec![
            "manual".into(),
            format!("{p:.2}"),
            steps.to_string(),
            format!("{:.1}", total as f64 / seeds as f64),
            format!("{diverged}/{seeds}"),
        ]);
    }
    for &p in probs {
        let mut total = 0usize;
        let mut diverged = 0usize;
        for seed in 0..seeds {
            let r = simulate_generated_flow(&DriftConfig {
                steps,
                miss_probability: p,
                seed,
            });
            total += r.final_mismatches();
            diverged += usize::from(r.first_divergence().is_some());
        }
        t.row(vec![
            "generated".into(),
            format!("{p:.2}"),
            steps.to_string(),
            format!("{:.1}", total as f64 / seeds as f64),
            format!("{diverged}/{seeds}"),
        ]);
    }
    t
}

/// E2 — repartitioning: every 2^k mark placement of a k-stage pipeline
/// must preserve behaviour, and the only edited artefact is the mark set
/// (paper §4).
pub fn e2_repartition(stages: usize, feeds: usize) -> Table {
    let mut t = Table::new(
        "E2 — exhaustive repartition of the pipeline: behaviour preserved, only marks change",
        &[
            "partition (1=hw)",
            "marks changed vs all-sw",
            "channels",
            "C lines",
            "VHDL lines",
            "equivalent",
        ],
    );
    let domain = workloads::pipeline_domain(stages).expect("valid pipeline");
    let tc = TestCase::pipeline(stages, feeds);
    let model_trace = run_model(&domain, SchedPolicy::default(), &tc).expect("model runs");
    let baseline = MarkSet::new();
    for mask in 0..(1u32 << stages) {
        let mut marks = MarkSet::new();
        for k in 0..stages {
            if mask & (1 << k) != 0 {
                marks.mark_hardware(&format!("Stage{k}"));
            }
        }
        let design = ModelCompiler::new()
            .compile(&domain, &marks)
            .expect("pipeline compiles under every partition");
        let impl_trace = run_compiled(&design, &tc).expect("cosim runs");
        let report = check_equivalence(&model_trace, &impl_trace);
        t.row(vec![
            format!("{mask:0width$b}", width = stages),
            marks.diff_count(&baseline).to_string(),
            design.interface.channels.len().to_string(),
            design.c_lines().to_string(),
            design.vhdl_lines().to_string(),
            if report.is_equivalent() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// E3 — model-interpreter throughput vs model size (paper §2: executing
/// models with no implementation detail must be practical).
pub fn e3_interpreter(sizes: &[usize], feeds: usize) -> Table {
    let mut t = Table::new(
        "E3 — abstract-model interpreter throughput",
        &["stages", "events dispatched", "elapsed ms", "events/s"],
    );
    for &n in sizes {
        let domain = workloads::pipeline_domain(n).expect("valid pipeline");
        let mut sim = Simulation::new(&domain);
        let insts: Vec<_> = (0..n)
            .map(|k| sim.create(&format!("Stage{k}")).expect("create"))
            .collect();
        for k in 0..n - 1 {
            sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                .expect("relate");
        }
        for i in 0..feeds {
            sim.inject(i as u64, insts[0], "Feed", vec![Value::Int(0)])
                .expect("inject");
        }
        let start = Instant::now();
        let steps = sim.run_to_quiescence().expect("run");
        let dt = start.elapsed();
        let eps = steps as f64 / dt.as_secs_f64();
        t.row(vec![
            n.to_string(),
            steps.to_string(),
            format!("{:.2}", dt.as_secs_f64() * 1e3),
            format!("{eps:.0}"),
        ]);
    }
    t
}

/// E3b — interpreter throughput across model families (fan-out and ring
/// stress different scheduler paths than the pipeline).
pub fn e3_families(scale: usize, work: usize) -> Table {
    let mut t = Table::new(
        "E3b — interpreter throughput by model family",
        &[
            "family",
            "size",
            "events dispatched",
            "elapsed ms",
            "events/s",
        ],
    );
    let mut run = |family: &str, domain: &xtuml_core::model::Domain, tc: &TestCase| {
        let start = Instant::now();
        let mut sim = Simulation::new(domain);
        let mut insts = Vec::new();
        for class in &tc.creates {
            insts.push(sim.create(class).expect("create"));
        }
        for (a, b, assoc) in &tc.relates {
            sim.relate(insts[*a], insts[*b], assoc).expect("relate");
        }
        for st in &tc.stimuli {
            sim.inject(st.time, insts[st.inst], &st.event, st.args.clone())
                .expect("inject");
        }
        let steps = sim.run_to_quiescence().expect("run");
        let dt = start.elapsed();
        t.row(vec![
            family.to_owned(),
            scale.to_string(),
            steps.to_string(),
            format!("{:.2}", dt.as_secs_f64() * 1e3),
            format!("{:.0}", steps as f64 / dt.as_secs_f64()),
        ]);
    };
    let d = workloads::pipeline_domain(scale).expect("pipeline");
    run("pipeline", &d, &TestCase::pipeline(scale, work));
    let d = workloads::fanout_domain(scale);
    run("fan-out", &d, &workloads::fanout_case(scale, work));
    let d = workloads::ring_domain(scale.max(2));
    run(
        "ring",
        &d,
        &workloads::ring_case(scale.max(2), (work * scale) as i64),
    );
    t
}

/// E4 — co-simulation cost vs partition ratio and bus latency (substrate
/// scaling; also shows why one models *above* the implementation).
pub fn e4_cosim(stages: usize, feeds: usize, latencies: &[u64]) -> Table {
    let mut t = Table::new(
        "E4 — co-simulation cost vs hardware fraction and bus latency",
        &[
            "hw stages",
            "bus latency",
            "hw cycles",
            "cpu cycles",
            "bus msgs",
            "elapsed ms",
        ],
    );
    let domain = workloads::pipeline_domain(stages).expect("valid pipeline");
    let tc = TestCase::pipeline(stages, feeds);
    for hw_count in 0..=stages {
        for &lat in latencies {
            let mut marks = MarkSet::new();
            marks.set(ElemRef::domain(), keys::BUS_LATENCY, lat as i64);
            for k in 0..hw_count {
                marks.mark_hardware(&format!("Stage{k}"));
            }
            let design = ModelCompiler::new()
                .compile(&domain, &marks)
                .expect("compiles");
            let start = Instant::now();
            let mut sys = design.instantiate();
            let mut insts = Vec::new();
            for class in &tc.creates {
                insts.push(sys.create(class).expect("create"));
            }
            for (a, b, assoc) in &tc.relates {
                sys.relate(insts[*a], insts[*b], assoc).expect("relate");
            }
            for s in &tc.stimuli {
                sys.inject(s.time, insts[s.inst], &s.event, s.args.clone())
                    .expect("inject");
            }
            let stats = sys.run_to_quiescence().expect("cosim runs");
            let dt = start.elapsed();
            t.row(vec![
                format!("{hw_count}/{stages}"),
                lat.to_string(),
                stats.hw_cycles.to_string(),
                stats.cpu_cycles.to_string(),
                (stats.msgs_sw_to_hw + stats.msgs_hw_to_sw).to_string(),
                format!("{:.2}", dt.as_secs_f64() * 1e3),
            ]);
        }
    }
    t
}

/// E5 — causality under interleaving seeds and event-rule ablations
/// (paper §2: cause precedes effect).
pub fn e5_causality(seeds: u64, burst: usize) -> Table {
    let mut t = Table::new(
        "E5 — causality violations: event rules on vs ablated",
        &[
            "configuration",
            "seeds",
            "runs with violations",
            "total violations",
        ],
    );
    let domain = burst_domain(burst);
    let configs: [(&str, bool, bool); 3] = [
        ("rules on (production)", true, true),
        ("self-priority ablated", false, true),
        ("pair-order ablated", true, false),
    ];
    for (name, self_priority, pair_order) in configs {
        let mut runs_with = 0u64;
        let mut total = 0usize;
        for seed in 0..seeds {
            let policy = SchedPolicy {
                seed,
                self_priority,
                pair_order,
                ..SchedPolicy::default()
            };
            let mut sim = Simulation::with_policy(&domain, policy);
            let _recv = sim.create("Recv").expect("create");
            let send = sim.create("Send").expect("create");
            sim.inject(0, send, "Go", vec![]).expect("inject");
            sim.run_to_quiescence().expect("run");
            let v = sim.trace().causality_violations();
            total += v;
            runs_with += u64::from(v > 0);
        }
        t.row(vec![
            name.to_owned(),
            seeds.to_string(),
            runs_with.to_string(),
            total.to_string(),
        ]);
    }
    t
}

/// The sender/receiver burst model used by E5.
fn burst_domain(burst: usize) -> xtuml_core::model::Domain {
    use xtuml_core::builder::DomainBuilder;
    use xtuml_core::value::DataType;
    let mut b = DomainBuilder::new("burst");
    b.class("Recv")
        .attr("last", DataType::Int)
        .event("Msg", &[("k", DataType::Int)])
        .state("Idle", "")
        .state("Got", "self.last = rcvd.k;")
        .initial("Idle")
        .transition("Idle", "Msg", "Got")
        .transition("Got", "Msg", "Got");
    b.class("Send")
        .event("Go", &[])
        .state("Idle", "")
        .state(
            "Burst",
            &format!(
                "select any r from Recv;\n\
                 k = 0;\n\
                 while (k < {burst}) {{ gen Msg(k) to r; k = k + 1; }}"
            ),
        )
        .initial("Idle")
        .transition("Idle", "Go", "Burst");
    b.build().expect("burst model is valid")
}

/// E6 — generated-code size vs model size (paper §4: mapping rules
/// produce compilable text of two types).
pub fn e6_codegen(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E6 — generated artefact sizes (half of each pipeline marked hardware)",
        &[
            "stages",
            "model stmts",
            "channels",
            "interface words",
            "C lines",
            "VHDL lines",
        ],
    );
    for &n in sizes {
        let domain = workloads::pipeline_domain(n).expect("valid pipeline");
        let mut marks = MarkSet::new();
        for k in 0..n / 2 {
            marks.mark_hardware(&format!("Stage{}", 2 * k + 1));
        }
        let design = ModelCompiler::new()
            .compile(&domain, &marks)
            .expect("compiles");
        t.row(vec![
            n.to_string(),
            domain.action_weight().to_string(),
            design.interface.channels.len().to_string(),
            design.interface.total_words().to_string(),
            design.c_lines().to_string(),
            design.vhdl_lines().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_generated_flow_never_diverges_manual_does() {
        let t = e1_interface_drift(60, &[0.05, 0.2], 4);
        assert_eq!(t.rows.len(), 4);
        // Generated rows report zero mismatches, zero diverged runs.
        for row in &t.rows[2..] {
            assert_eq!(row[3], "0.0");
            assert_eq!(row[4], "0/4");
        }
        // Higher miss probability drifts at least as much.
        let m_low: f64 = t.rows[0][3].parse().unwrap();
        let m_high: f64 = t.rows[1][3].parse().unwrap();
        assert!(m_high >= m_low);
    }

    #[test]
    fn e2_all_partitions_equivalent_marks_only_edit() {
        let t = e2_repartition(3, 3);
        assert_eq!(t.rows.len(), 8);
        for row in &t.rows {
            assert_eq!(row[5], "yes", "partition {} diverged", row[0]);
        }
        // All-software row changed zero marks; others changed ≥1.
        assert_eq!(t.rows[0][1], "0");
        assert!(t.rows[1..].iter().all(|r| r[1] != "0"));
    }

    #[test]
    fn e3_reports_positive_throughput() {
        let t = e3_interpreter(&[2, 4], 50);
        for row in &t.rows {
            let eps: f64 = row[3].parse().unwrap();
            assert!(eps > 0.0);
        }
    }

    #[test]
    fn e3b_covers_three_families() {
        let t = e3_families(3, 4);
        let fams: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(fams, vec!["pipeline", "fan-out", "ring"]);
        for row in &t.rows {
            let steps: u64 = row[2].parse().unwrap();
            assert!(steps > 0);
        }
    }

    #[test]
    fn e4_bus_messages_scale_with_boundary() {
        let t = e4_cosim(3, 4, &[2]);
        // Row 0: all-sw (0 hw stages) → zero bus messages.
        assert_eq!(t.rows[0][4], "0");
        // Some split row must move messages.
        assert!(t.rows.iter().any(|r| r[4] != "0"));
    }

    #[test]
    fn e5_rules_on_is_clean_ablations_violate() {
        let t = e5_causality(8, 40);
        assert_eq!(t.rows[0][2], "0", "production rules must be causal");
        let pair_violations: usize = t.rows[2][3].parse().unwrap();
        assert!(pair_violations > 0, "pair-order ablation must reorder");
    }

    #[test]
    fn e6_sizes_grow_with_model() {
        let t = e6_codegen(&[2, 6]);
        let c2: usize = t.rows[0][4].parse().unwrap();
        let c6: usize = t.rows[1][4].parse().unwrap();
        assert!(c6 > c2);
        let v2: usize = t.rows[0][5].parse().unwrap();
        let v6: usize = t.rows[1][5].parse().unwrap();
        assert!(v6 > v2);
    }
}
