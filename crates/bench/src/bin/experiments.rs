//! Regenerates every experiment table recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p xtuml-bench --release --bin experiments
//! ```

use xtuml_bench::experiments;

fn main() {
    println!("# xtuml experiment tables (E1–E6)\n");
    println!(
        "{}",
        experiments::e1_interface_drift(100, &[0.02, 0.05, 0.10, 0.25], 16)
    );
    println!("{}", experiments::e2_repartition(4, 4));
    println!("{}", experiments::e3_interpreter(&[2, 4, 8, 16, 32], 200));
    println!("{}", experiments::e3_families(8, 50));
    println!("{}", experiments::e4_cosim(4, 6, &[1, 4, 16]));
    println!("{}", experiments::e5_causality(32, 50));
    println!("{}", experiments::e6_codegen(&[2, 4, 8, 16, 32]));
}
