//! Self-timed load harness for the `xtuml serve` daemon (E12).
//!
//! Starts an in-process server on an ephemeral loopback port, then
//! drives it with concurrent connections, each cycling the golden
//! per-session transcript: create → stimulate → step → trace → close.
//! Worker connections run closed-loop individually but overlap each
//! other, approximating an open-loop arrival process at the single
//! manager thread that serializes every session table operation.
//!
//! Two lanes are measured:
//!
//! * **sessions** — raw session churn: latency per request and
//!   sessions per second across the worker pool.
//! * **eviction** — the same transcript against a server with
//!   `idle_evict = 1` and one noisy neighbour, so every touch of the
//!   measured session first revives it from a spooled snapshot on
//!   disk; the latency delta prices the eviction round-trip.
//!
//! Results go to `BENCH_serve.json` (headline
//! `aggregate_sessions_per_sec` last, for the CI gate) and one row of
//! `BENCH_history.jsonl`. A `BENCH_serve.baseline.json` alongside adds
//! a speedup-vs-baseline figure.
//!
//! Usage: `cargo run --release -p xtuml-bench --bin serve_load`
//!
//! `BENCH_SERVE_SESSIONS=<n>` overrides sessions per worker (default
//! 200); `BENCH_SERVE_WORKERS=<n>` the worker count (default 4);
//! `BENCH_ITERS=<n>` the best-of iteration count for the session lane
//! (default 3) — short walls are scheduling-noisy, and the workload is
//! deterministic, so the minimum-wall sample is the least-noise one.

use std::time::Instant;

use xtuml_bench::history;
use xtuml_serve::{Client, ServeConfig, Server, SessionCfg};

const MODEL: &str = "domain Tiny;\n\
    actor OUT { signal out(v: int); }\n\
    class C {\n\
        attr n: int = 0;\n\
        event E(v: int);\n\
        initial S;\n\
        state S { }\n\
        state T { self.n = self.n + rcvd.v; gen out(self.n) to OUT; }\n\
        on S: E -> T;\n\
        on T: E -> T;\n\
    }\n";

fn create_req() -> String {
    let escaped = MODEL.replace('\n', "\\n");
    format!(
        r#"{{"verb": "create", "model": "{escaped}", "setup": "create c C\nat 0 c E 1\n", "seed": 1}}"#
    )
}

struct Lane {
    name: &'static str,
    sessions: u64,
    requests: u64,
    wall_secs: f64,
    p50_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One session's golden transcript over an existing connection; returns
/// per-request latencies in microseconds.
fn drive_session(client: &mut Client, create: &str, lat: &mut Vec<u64>) {
    let mut send = |req: &str| {
        let t = Instant::now();
        let reply = client.request(req).expect("request");
        lat.push(t.elapsed().as_micros() as u64);
        reply
    };
    let created = send(create);
    assert!(created.contains("\"ok\": true"), "create failed: {created}");
    // Session ids are server-global; pull ours out of the reply.
    let id: u64 = xtuml_obs::json::parse(&created)
        .ok()
        .and_then(|d| d.get("session").and_then(|s| s.as_num()))
        .expect("session id") as u64;
    send(&format!(
        r#"{{"verb": "stimulate", "session": {id}, "inst": 0, "event": "E", "args": [2], "time": 5}}"#
    ));
    let stepped = send(&format!(r#"{{"verb": "step", "session": {id}}}"#));
    assert!(stepped.contains("\"quiescent\": true"), "{stepped}");
    send(&format!(r#"{{"verb": "trace", "session": {id}}}"#));
    send(&format!(r#"{{"verb": "close", "session": {id}}}"#));
}

fn session_lane(workers: usize, per_worker: u64) -> Lane {
    let server = Server::start(ServeConfig {
        port: 0,
        session: SessionCfg::default(),
    })
    .expect("bind loopback");
    let addr = server.addr();
    let create = create_req();
    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let create = create.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(per_worker as usize * 5);
                for _ in 0..per_worker {
                    drive_session(&mut client, &create, &mut lat);
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        lat.extend(h.join().expect("worker"));
    }
    let wall_secs = start.elapsed().as_secs_f64();
    server.shutdown();
    lat.sort_unstable();
    Lane {
        name: "sessions",
        sessions: workers as u64 * per_worker,
        requests: lat.len() as u64,
        wall_secs,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    }
}

fn eviction_lane(touches: u64) -> Lane {
    let spool = std::env::temp_dir().join(format!("xtuml-serve-bench-{}", std::process::id()));
    let server = Server::start(ServeConfig {
        port: 0,
        session: SessionCfg {
            idle_evict: 1,
            spool: spool.clone(),
            ..SessionCfg::default()
        },
    })
    .expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let created = client.request(&create_req()).expect("create");
    assert!(created.contains("\"ok\": true"), "{created}");
    // Every ping makes session 1 idle for >= 1 tick, so each stats call
    // below revives it from its spooled snapshot first.
    let mut lat = Vec::with_capacity(touches as usize);
    let start = Instant::now();
    for _ in 0..touches {
        client.request(r#"{"verb": "ping"}"#).expect("ping");
        let t = Instant::now();
        let reply = client
            .request(r#"{"verb": "stats", "session": 1}"#)
            .expect("stats");
        lat.push(t.elapsed().as_micros() as u64);
        assert!(reply.contains("\"ok\": true"), "{reply}");
    }
    let wall_secs = start.elapsed().as_secs_f64();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
    lat.sort_unstable();
    Lane {
        name: "eviction",
        sessions: 1,
        requests: touches * 2,
        wall_secs,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    }
}

fn main() {
    let per_worker: u64 = std::env::var("BENCH_SERVE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let workers: usize = std::env::var("BENCH_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let iters: u32 = std::env::var("BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let mut best = session_lane(workers, per_worker);
    for _ in 1..iters {
        let next = session_lane(workers, per_worker);
        if next.wall_secs < best.wall_secs {
            best = next;
        }
    }
    let lanes = [best, eviction_lane(400)];
    let sessions = &lanes[0];
    let aggregate = sessions.sessions as f64 / sessions.wall_secs;

    let mut json = String::new();
    json.push_str("{\n  \"workload\": \"serve_golden_transcript\",\n");
    json.push_str(&format!(
        "  \"workers\": {workers},\n  \"sessions_per_worker\": {per_worker},\n  \"lanes\": [\n"
    ));
    for (i, l) in lanes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"lane\": \"{}\", \"sessions\": {}, \"requests\": {}, \"wall_secs\": {:.4}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            l.name,
            l.sessions,
            l.requests,
            l.wall_secs,
            l.p50_us,
            l.p99_us,
            if i + 1 < lanes.len() { "," } else { "" }
        ));
        println!(
            "lane={:<9} sessions={:<6} requests={:<6} wall={:.3}s  p50={}us p99={}us",
            l.name, l.sessions, l.requests, l.wall_secs, l.p50_us, l.p99_us
        );
    }
    json.push_str("  ],\n");
    // Keep the headline key *after* every other key: the CI awk takes
    // the last line matching "aggregate_sessions_per_sec".
    json.push_str(&format!(
        "  \"requests_per_sec\": {:.0},\n",
        sessions.requests as f64 / sessions.wall_secs
    ));
    json.push_str(&format!("  \"aggregate_sessions_per_sec\": {aggregate:.0}"));
    println!("aggregate: {aggregate:.0} sessions/s");

    if let Ok(base) = std::fs::read_to_string("BENCH_serve.baseline.json") {
        if let Some(at) = base.find("\"aggregate_sessions_per_sec\":") {
            let rest = base[at + "\"aggregate_sessions_per_sec\":".len()..].trim_start();
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                .unwrap_or(rest.len());
            if let Ok(rate) = rest[..end].parse::<f64>() {
                let speedup = aggregate / rate;
                json.push_str(&format!(
                    ",\n  \"baseline_sessions_per_sec\": {rate:.0},\n  \"speedup_vs_baseline\": {speedup:.2}"
                ));
                println!("baseline: {rate:.0} sessions/s ({speedup:.2}x)");
            }
        }
    } else {
        println!("(no baseline file)");
    }
    json.push_str("\n}\n");

    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    history::append_with(
        "BENCH_history.jsonl",
        "serve_load",
        aggregate,
        &[
            ("p99_us", lanes[0].p99_us.to_string()),
            ("eviction_p99_us", lanes[1].p99_us.to_string()),
        ],
    )
    .expect("append BENCH_history.jsonl");
}
