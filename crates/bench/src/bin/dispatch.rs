//! Null-action dispatch microbench (ISSUE 10, satellite e).
//!
//! Every `Ping` the null workload dispatches runs an **empty** action
//! body, so wall time is pure per-signal engine overhead: the scheduler
//! pick, the dispatch-slot lookup, and the trace-ring record. That is
//! precisely the surface the dispatch superloop optimizes, and this
//! harness pins it down without the pipeline workload's action-execution
//! noise.
//!
//! Before any timing is trusted, the VM's and the frame interpreter's
//! full traces are byte-compared per configuration — a throughput number
//! for a diverging engine would be meaningless. Timed columns:
//!
//! * `signals_per_sec` — bc engine, trace ring on (the shipped default;
//!   this is the headline);
//! * `trace_off_signals_per_sec` — bc engine, `--trace off`, isolating
//!   what the ring itself costs per dispatch;
//! * `frames_signals_per_sec` — the frame interpreter, ring on.
//!
//! Results go to `BENCH_dispatch.json` in the current directory; with a
//! `BENCH_dispatch.baseline.json` present (a prior blessed run of this
//! harness on the same host) the report also carries the speedup against
//! it. CI gates on ≥0.9x of the blessed baseline — cross-host numbers
//! are NOT comparable, so the baseline must be re-blessed when the CI
//! host changes.
//!
//! Usage: `cargo run --release -p xtuml-bench --bin dispatch`
//!
//! `BENCH_ITERS=<n>` overrides the per-config iteration count (default 5).

use std::time::Instant;
use xtuml_bench::history;
use xtuml_bench::workloads::null_domain;
use xtuml_exec::{Engine, Simulation, TraceMode};

/// One measured configuration: `insts` instances of `Nil`, `pings`
/// signals queued on each. `insts == 1` keeps the scheduler's ready set
/// at a single instance throughout — the superloop's best case — while
/// larger counts force re-picks between batches.
struct Config {
    insts: usize,
    pings: u64,
    iters: u32,
}

struct Row {
    insts: usize,
    pings: u64,
    signals: u64,
    best_secs: f64,
    signals_per_sec: f64,
    off_signals_per_sec: f64,
    frames_signals_per_sec: f64,
}

fn build_sim(domain: &xtuml_core::model::Domain, insts: usize, pings: u64) -> Simulation<'_> {
    let mut sim = Simulation::new(domain);
    let handles: Vec<_> = (0..insts)
        .map(|_| sim.create("Nil").expect("create nil instance"))
        .collect();
    for &h in &handles {
        for _ in 0..pings {
            sim.inject(0, h, "Ping", vec![]).expect("inject ping");
        }
    }
    sim
}

fn run_once(
    domain: &xtuml_core::model::Domain,
    insts: usize,
    pings: u64,
    engine: Engine,
    mode: TraceMode,
) -> f64 {
    let mut sim = build_sim(domain, insts, pings);
    sim.set_engine(engine);
    sim.set_trace_mode(mode);
    let start = Instant::now();
    sim.run_to_quiescence().expect("run to quiescence");
    start.elapsed().as_secs_f64()
}

/// Conformance check before timing: byte-identical traces or bust.
///
/// Runs a *scaled-down* stimulus count: divergence is a per-dispatch
/// property, so a few thousand signals exercise every slot — and a
/// full-size run here would clone and compare two multi-megabyte
/// traces, leaving the allocator in a churned state that measurably
/// (and unevenly, as the heap recovers over seconds) depresses the
/// timed runs that follow.
fn assert_engines_agree(domain: &xtuml_core::model::Domain, insts: usize, pings: u64) {
    let pings = pings.min(4_096);
    let trace = |engine| {
        let mut sim = build_sim(domain, insts, pings);
        sim.set_engine(engine);
        sim.run_to_quiescence().expect("run to quiescence");
        sim.trace().clone()
    };
    assert_eq!(
        trace(Engine::Bc),
        trace(Engine::Frames),
        "insts={insts}: engines diverged — timing would be meaningless"
    );
}

fn measure(domain: &xtuml_core::model::Domain, cfg: &Config) -> Row {
    assert_engines_agree(domain, cfg.insts, cfg.pings);
    let signals = cfg.pings * cfg.insts as u64;
    // Interleave the three columns round-robin and keep each column's
    // best: allocator and frequency state drift over the measurement
    // window, and a column measured only at the start (or only at the
    // end) of it picks up that drift as a phantom engine difference.
    let columns = [
        (Engine::Bc, TraceMode::Full),
        (Engine::Bc, TraceMode::Off),
        (Engine::Frames, TraceMode::Full),
    ];
    let mut bests = [f64::INFINITY; 3];
    for (engine, mode) in columns {
        // Untimed warmup per column; the workload is deterministic, so
        // the later minimum is the least-noise sample.
        let _ = run_once(domain, cfg.insts, cfg.pings, engine, mode);
    }
    for _ in 0..cfg.iters {
        for (i, (engine, mode)) in columns.into_iter().enumerate() {
            let secs = run_once(domain, cfg.insts, cfg.pings, engine, mode);
            if secs < bests[i] {
                bests[i] = secs;
            }
        }
    }
    let [best, off_best, frames_best] = bests;
    Row {
        insts: cfg.insts,
        pings: cfg.pings,
        signals,
        best_secs: best,
        signals_per_sec: signals as f64 / best,
        off_signals_per_sec: signals as f64 / off_best,
        frames_signals_per_sec: signals as f64 / frames_best,
    }
}

fn main() {
    let iters: u32 = std::env::var("BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let domain = null_domain();
    let configs = [
        Config {
            insts: 1,
            pings: 262_144,
            iters,
        },
        Config {
            insts: 16,
            pings: 16_384,
            iters,
        },
        Config {
            insts: 256,
            pings: 1_024,
            iters,
        },
    ];

    let rows: Vec<Row> = configs.iter().map(|c| measure(&domain, c)).collect();
    let total_signals: u64 = rows.iter().map(|r| r.signals).sum();
    let total_secs: f64 = rows.iter().map(|r| r.best_secs).sum();
    let off_secs: f64 = rows
        .iter()
        .map(|r| r.signals as f64 / r.off_signals_per_sec)
        .sum();
    let frames_secs: f64 = rows
        .iter()
        .map(|r| r.signals as f64 / r.frames_signals_per_sec)
        .sum();
    let aggregate = total_signals as f64 / total_secs;
    let off_aggregate = total_signals as f64 / off_secs;
    let frames_aggregate = total_signals as f64 / frames_secs;

    let mut json = String::new();
    json.push_str("{\n  \"workload\": \"null_dispatch\",\n  \"engine\": \"bc\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"insts\": {}, \"pings\": {}, \"signals\": {}, \"best_secs\": {:.6}, \"signals_per_sec\": {:.0}, \"trace_off_signals_per_sec\": {:.0}, \"frames_signals_per_sec\": {:.0}}}{}\n",
            r.insts,
            r.pings,
            r.signals,
            r.best_secs,
            r.signals_per_sec,
            r.off_signals_per_sec,
            r.frames_signals_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
        println!(
            "insts={:<4} pings={:<7} signals={:<7} best={:.3}ms  {:>12.0} signals/s  (off {:.0}, frames {:.0})",
            r.insts,
            r.pings,
            r.signals,
            r.best_secs * 1e3,
            r.signals_per_sec,
            r.off_signals_per_sec,
            r.frames_signals_per_sec
        );
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"trace_off_aggregate_signals_per_sec\": {off_aggregate:.0},\n"
    ));
    json.push_str(&format!(
        "  \"frames_aggregate_signals_per_sec\": {frames_aggregate:.0},\n"
    ));
    // Keep the headline key *after* the other aggregate keys: the CI awk
    // takes the last line matching "aggregate_signals_per_sec" per file.
    json.push_str(&format!("  \"aggregate_signals_per_sec\": {aggregate:.0}"));
    println!(
        "aggregate: {aggregate:.0} signals/s (trace off {off_aggregate:.0}, frames {frames_aggregate:.0})"
    );

    if let Ok(base) = std::fs::read_to_string("BENCH_dispatch.baseline.json") {
        if let Some(rate) = history::aggregate_rate(&base) {
            let speedup = aggregate / rate;
            json.push_str(&format!(
                ",\n  \"baseline_signals_per_sec\": {rate:.0},\n  \"speedup_vs_baseline\": {speedup:.2}"
            ));
            println!("baseline: {rate:.0} signals/s ({speedup:.2}x)");
        }
    } else {
        println!("(no baseline file)");
    }
    json.push_str("\n}\n");

    std::fs::write("BENCH_dispatch.json", json).expect("write BENCH_dispatch.json");
    history::append_with(
        "BENCH_history.jsonl",
        "dispatch_null",
        aggregate,
        &[
            (
                "trace_off_aggregate_signals_per_sec",
                format!("{off_aggregate:.0}"),
            ),
            (
                "frames_aggregate_signals_per_sec",
                format!("{frames_aggregate:.0}"),
            ),
        ],
    )
    .expect("append BENCH_history.jsonl");
}
