//! Self-timed interpreter throughput harness (no criterion needed).
//!
//! Runs the E3 pipeline workload — `stages` chained state machines each
//! forwarding a counted token, `feeds` tokens injected at stage 0 — on
//! **both** action executors: the register bytecode VM (the default hot
//! path) and the compiled-frame interpreter it replaced. Before any
//! timing is trusted, the two engines' full execution traces are
//! byte-compared per configuration — a throughput number for an engine
//! that diverges observably would be meaningless.
//!
//! Results are written to `BENCH_interp.json` in the current directory;
//! the headline `aggregate_signals_per_sec` is the VM's (what `run`
//! ships), with the frame interpreter's rate and the per-row speedup
//! alongside. If a `BENCH_interp.baseline.json` (a prior run of this
//! same harness) is present there, the report also includes the speedup
//! against it.
//!
//! Usage: `cargo run --release -p xtuml-bench --bin throughput`
//!
//! `BENCH_ITERS=<n>` overrides the per-config iteration count (default 5);
//! large values give profilers enough samples to be useful.

use std::time::Instant;
use xtuml_bench::history;
use xtuml_bench::workloads::pipeline_domain;
use xtuml_core::value::Value;
use xtuml_exec::{Engine, Simulation};

/// One measured configuration of the pipeline workload.
struct Config {
    stages: usize,
    feeds: u64,
    iters: u32,
}

struct Row {
    stages: usize,
    feeds: u64,
    signals: u64,
    best_secs: f64,
    signals_per_sec: f64,
    frames_best_secs: f64,
    frames_signals_per_sec: f64,
}

fn build_sim(domain: &xtuml_core::model::Domain, stages: usize, feeds: u64) -> Simulation<'_> {
    let mut sim = Simulation::new(domain);
    let insts: Vec<_> = (0..stages)
        .map(|k| sim.create(&format!("Stage{k}")).expect("create stage"))
        .collect();
    for k in 0..stages.saturating_sub(1) {
        sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
            .expect("relate stages");
    }
    for i in 0..feeds {
        sim.inject(i, insts[0], "Feed", vec![Value::Int(0)])
            .expect("inject feed");
    }
    sim
}

fn run_once(stages: usize, feeds: u64, engine: Engine) -> (u64, f64) {
    let domain = pipeline_domain(stages).expect("pipeline domain builds");
    let mut sim = build_sim(&domain, stages, feeds);
    sim.set_engine(engine);
    let start = Instant::now();
    sim.run_to_quiescence().expect("run to quiescence");
    let elapsed = start.elapsed().as_secs_f64();
    // Every feed token is consumed exactly once per stage.
    (feeds * stages as u64, elapsed)
}

/// Conformance check before timing: the engines must produce the same
/// execution trace, event for event, or the comparison is vacuous.
fn assert_engines_agree(stages: usize, feeds: u64) {
    let domain = pipeline_domain(stages).expect("pipeline domain builds");
    let trace = |engine| {
        let mut sim = build_sim(&domain, stages, feeds);
        sim.set_engine(engine);
        sim.run_to_quiescence().expect("run to quiescence");
        sim.trace().clone()
    };
    assert_eq!(
        trace(Engine::Bc),
        trace(Engine::Frames),
        "stages={stages}: engines diverged — timing would be meaningless"
    );
}

fn best_of(iters: u32, stages: usize, feeds: u64, engine: Engine, signals: u64) -> f64 {
    // One untimed warmup, then keep the best of `iters` timed runs: the
    // workload is deterministic, so the minimum is the least-noise sample.
    let _ = run_once(stages, feeds, engine);
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let (s, secs) = run_once(stages, feeds, engine);
        assert_eq!(s, signals, "workload must be deterministic");
        if secs < best {
            best = secs;
        }
    }
    best
}

fn measure(cfg: &Config) -> Row {
    assert_engines_agree(cfg.stages, cfg.feeds);
    let signals = cfg.feeds * cfg.stages as u64;
    let best = best_of(cfg.iters, cfg.stages, cfg.feeds, Engine::Bc, signals);
    let frames_best = best_of(cfg.iters, cfg.stages, cfg.feeds, Engine::Frames, signals);
    Row {
        stages: cfg.stages,
        feeds: cfg.feeds,
        signals,
        best_secs: best,
        signals_per_sec: signals as f64 / best,
        frames_best_secs: frames_best,
        frames_signals_per_sec: signals as f64 / frames_best,
    }
}

fn main() {
    let iters: u32 = std::env::var("BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let configs = [
        Config {
            stages: 2,
            feeds: 2048,
            iters,
        },
        Config {
            stages: 8,
            feeds: 1024,
            iters,
        },
        Config {
            stages: 32,
            feeds: 512,
            iters,
        },
    ];

    let rows: Vec<Row> = configs.iter().map(measure).collect();
    let total_signals: u64 = rows.iter().map(|r| r.signals).sum();
    let total_secs: f64 = rows.iter().map(|r| r.best_secs).sum();
    let frames_secs: f64 = rows.iter().map(|r| r.frames_best_secs).sum();
    let aggregate = total_signals as f64 / total_secs;
    let frames_aggregate = total_signals as f64 / frames_secs;
    let speedup_vs_frames = aggregate / frames_aggregate;

    let mut json = String::new();
    json.push_str("{\n  \"workload\": \"e3_pipeline\",\n  \"engine\": \"bc\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"stages\": {}, \"feeds\": {}, \"signals\": {}, \"best_secs\": {:.6}, \"signals_per_sec\": {:.0}, \"frames_signals_per_sec\": {:.0}, \"speedup_vs_frames\": {:.2}}}{}\n",
            r.stages,
            r.feeds,
            r.signals,
            r.best_secs,
            r.signals_per_sec,
            r.frames_signals_per_sec,
            r.signals_per_sec / r.frames_signals_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
        println!(
            "stages={:<3} feeds={:<5} signals={:<6} best={:.3}ms  {:>12.0} signals/s  ({:.2}x vs frames {:.0})",
            r.stages,
            r.feeds,
            r.signals,
            r.best_secs * 1e3,
            r.signals_per_sec,
            r.signals_per_sec / r.frames_signals_per_sec,
            r.frames_signals_per_sec
        );
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"frames_aggregate_signals_per_sec\": {frames_aggregate:.0},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_vs_frames\": {speedup_vs_frames:.2},\n"
    ));
    // Keep the headline key *after* the frames key: the CI awk takes the
    // last line matching "aggregate_signals_per_sec" per file.
    json.push_str(&format!("  \"aggregate_signals_per_sec\": {aggregate:.0}"));
    println!("aggregate: {aggregate:.0} signals/s ({speedup_vs_frames:.2}x vs frames {frames_aggregate:.0})");

    if let Ok(base) = std::fs::read_to_string("BENCH_interp.baseline.json") {
        if let Some(rate) = history::aggregate_rate(&base) {
            let speedup = aggregate / rate;
            json.push_str(&format!(
                ",\n  \"baseline_signals_per_sec\": {rate:.0},\n  \"speedup_vs_baseline\": {speedup:.2}"
            ));
            println!("baseline: {rate:.0} signals/s ({speedup:.2}x)");
        }
    } else {
        println!("(no baseline file)");
    }
    json.push_str("\n}\n");

    std::fs::write("BENCH_interp.json", json).expect("write BENCH_interp.json");
    history::append_with(
        "BENCH_history.jsonl",
        "interp_throughput",
        aggregate,
        &[
            (
                "frames_aggregate_signals_per_sec",
                format!("{frames_aggregate:.0}"),
            ),
            ("speedup_vs_frames", format!("{speedup_vs_frames:.2}")),
        ],
    )
    .expect("append BENCH_history.jsonl");
}
