//! Self-timed parallel-scaling harness (no criterion needed).
//!
//! Runs the E8 many-core workload — `CORES` independent state machines
//! each self-ticking a countdown of `WORK` events — on the sharded
//! engine at a fixed shard count and sweeps the worker count over
//! jobs ∈ {1, 2, 4, 8}. Because the trace is a pure function of
//! `(seed, shards)`, every sweep point must produce byte-identical
//! traces; the harness asserts this before trusting any timing.
//!
//! Results go to `BENCH_parallel.json` in the current directory, and an
//! aggregate line is appended to `BENCH_history.jsonl`. If a
//! `BENCH_parallel.baseline.json` (a prior run of this harness) is
//! present, the report also includes the speedup against it.
//!
//! Usage: `cargo run --release -p xtuml-bench --bin scaling`
//!
//! `BENCH_ITERS=<n>` overrides the per-point iteration count (default 3);
//! `BENCH_JOBS=<j1,j2,...>` overrides the sweep points.

use std::time::Instant;
use xtuml_bench::history;
use xtuml_bench::workloads::manycore_domain;
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_exec::{SchedPolicy, ShardedSimulation};

/// Shard count is pinned so the schedule (and thus the trace) is the
/// same at every sweep point; only the worker count varies.
const SHARDS: usize = 8;
const CORES: usize = 64;
const WORK: i64 = 512;

struct Row {
    jobs: usize,
    signals: u64,
    best_secs: f64,
    signals_per_sec: f64,
    speedup: f64,
    efficiency: f64,
}

/// One run at `jobs` workers: returns (dispatches, wall secs, trace).
fn run_once(domain: &Domain, jobs: usize) -> (u64, f64, String) {
    let policy = SchedPolicy::seeded(0).with_shards(SHARDS);
    let mut sim = ShardedSimulation::with_policy(domain, policy);
    let insts: Vec<_> = (0..CORES)
        .map(|k| sim.create(&format!("Core{k}")).expect("create core"))
        .collect();
    for (k, inst) in insts.iter().enumerate() {
        sim.inject(0, *inst, "Tick", vec![Value::Int(WORK + (k % 7) as i64)])
            .expect("inject tick");
    }
    let start = Instant::now();
    sim.run_to_quiescence(jobs).expect("run to quiescence");
    let elapsed = start.elapsed().as_secs_f64();
    (
        sim.trace().dispatch_count() as u64,
        elapsed,
        sim.trace().render(domain),
    )
}

/// One instrumented run (untimed): the deterministic telemetry snapshot
/// of the workload. Counters are a pure function of `(seed, shards)`,
/// so one run at `jobs = 1` describes every sweep point.
fn snapshot(domain: &Domain) -> xtuml_obs::Metrics {
    let policy = SchedPolicy::seeded(0).with_shards(SHARDS);
    let mut sim = ShardedSimulation::with_policy(domain, policy);
    let insts: Vec<_> = (0..CORES)
        .map(|k| sim.create(&format!("Core{k}")).expect("create core"))
        .collect();
    for (k, inst) in insts.iter().enumerate() {
        sim.inject(0, *inst, "Tick", vec![Value::Int(WORK + (k % 7) as i64)])
            .expect("inject tick");
    }
    sim.attach_recorder(xtuml_obs::Recorder::new());
    sim.run_to_quiescence(1).expect("run to quiescence");
    sim.take_recorder().expect("recorder attached").metrics
}

fn main() {
    let iters: u32 = std::env::var("BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let sweep: Vec<usize> = std::env::var("BENCH_JOBS")
        .ok()
        .map(|v| {
            v.split(',')
                .map(|j| j.trim().parse().expect("BENCH_JOBS takes integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let hw_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // A sweep point asking for more workers than the host can actually run
    // in parallel measures oversubscription, not scaling; the report says so.
    let degraded = sweep.iter().any(|&jobs| jobs > hw_threads);

    let domain = manycore_domain(CORES);

    // Deterministic telemetry for the workload itself (jobs-invariant).
    let metrics = snapshot(&domain);
    let epoch_imbalance = metrics.epoch_imbalance().unwrap_or(0.0);
    let cross_shard_frac = metrics.cross_shard_frac().unwrap_or(0.0);

    // Warmup + reference trace from the guaranteed-sequential point.
    let (signals, _, reference) = run_once(&domain, 1);

    let mut rows: Vec<Row> = Vec::new();
    for &jobs in &sweep {
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let (s, secs, trace) = run_once(&domain, jobs);
            assert_eq!(s, signals, "dispatch count must not depend on jobs");
            assert_eq!(
                trace, reference,
                "jobs={jobs} produced a different trace than jobs=1"
            );
            if secs < best {
                best = secs;
            }
        }
        let rate = signals as f64 / best;
        let speedup = if let Some(base) = rows.first() {
            rate / base.signals_per_sec
        } else {
            1.0
        };
        rows.push(Row {
            jobs,
            signals,
            best_secs: best,
            signals_per_sec: rate,
            speedup,
            efficiency: speedup / jobs as f64,
        });
    }

    let aggregate = rows
        .iter()
        .map(|r| r.signals_per_sec)
        .fold(f64::MIN, f64::max);

    let mut json = String::new();
    json.push_str("{\n  \"workload\": \"e8_manycore\",\n");
    json.push_str(&format!(
        "  \"shards\": {SHARDS},\n  \"cores\": {CORES},\n  \"work\": {WORK},\n"
    ));
    json.push_str(&format!("  \"available_parallelism\": {hw_threads},\n"));
    json.push_str(&format!("  \"degraded\": {degraded},\n"));
    json.push_str(&format!(
        "  \"epoch_imbalance\": {epoch_imbalance:.4},\n  \"cross_shard_frac\": {cross_shard_frac:.4},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"jobs\": {}, \"signals\": {}, \"best_secs\": {:.6}, \"signals_per_sec\": {:.0}, \"speedup\": {:.3}, \"efficiency\": {:.3}}}{}\n",
            r.jobs,
            r.signals,
            r.best_secs,
            r.signals_per_sec,
            r.speedup,
            r.efficiency,
            if i + 1 < rows.len() { "," } else { "" }
        ));
        println!(
            "jobs={:<2} signals={:<6} best={:.3}ms  {:>12.0} signals/s  speedup {:.2}x  eff {:.0}%",
            r.jobs,
            r.signals,
            r.best_secs * 1e3,
            r.signals_per_sec,
            r.speedup,
            r.efficiency * 100.0
        );
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"aggregate_signals_per_sec\": {aggregate:.0}"));

    if let Ok(base) = std::fs::read_to_string("BENCH_parallel.baseline.json") {
        if let Some(rate) = history::aggregate_rate(&base) {
            let speedup = aggregate / rate;
            json.push_str(&format!(
                ",\n  \"baseline_signals_per_sec\": {rate:.0},\n  \"speedup_vs_baseline\": {speedup:.2}"
            ));
            println!("aggregate: {aggregate:.0} signals/s ({speedup:.2}x vs baseline {rate:.0})");
        }
    } else {
        println!("aggregate: {aggregate:.0} signals/s (no baseline file)");
    }
    json.push_str("\n}\n");

    if degraded {
        println!(
            "warning: sweep exceeds available_parallelism ({hw_threads}); report marked degraded"
        );
    }

    std::fs::write("BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    history::append_with(
        "BENCH_history.jsonl",
        "parallel_scaling",
        aggregate,
        &[
            ("epoch_imbalance", format!("{epoch_imbalance:.4}")),
            ("cross_shard_frac", format!("{cross_shard_frac:.4}")),
            ("degraded", degraded.to_string()),
        ],
    )
    .expect("append BENCH_history.jsonl");
}
