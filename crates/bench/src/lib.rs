//! # xtuml-bench — the experiment harness
//!
//! The paper has **no tables or figures** (it is a two-page position
//! paper), so this crate operationalises its *claims* as experiments
//! E1–E6 (see DESIGN.md §6 and EXPERIMENTS.md for the index and recorded
//! results). Each experiment is a pure function returning structured
//! rows; the `experiments` binary prints them as the tables recorded in
//! EXPERIMENTS.md, and the Criterion benches in `benches/` measure the
//! hot paths behind the same runners.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod experiments;
pub mod history;
pub mod report;
pub mod workloads;

pub use experiments::*;
