//! E1 bench: cost of the drift simulation (manual vs generated flows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtuml_verify::drift::{simulate_generated_flow, simulate_manual_flow, DriftConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_interface_drift");
    for steps in [50usize, 200, 800] {
        let cfg = DriftConfig {
            steps,
            miss_probability: 0.1,
            seed: 7,
        };
        g.bench_with_input(BenchmarkId::new("manual", steps), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_manual_flow(cfg)))
        });
        g.bench_with_input(BenchmarkId::new("generated", steps), &cfg, |b, cfg| {
            b.iter(|| black_box(simulate_generated_flow(cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
