//! E2 bench: full repartition cycle — re-mark, recompile, re-verify.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtuml_bench::workloads::pipeline_domain;
use xtuml_core::marks::MarkSet;
use xtuml_verify::{verify_partition, TestCase};

fn bench(c: &mut Criterion) {
    let domain = pipeline_domain(4).unwrap();
    let tc = TestCase::pipeline(4, 3);
    let mut g = c.benchmark_group("e2_repartition");
    g.sample_size(20);
    g.bench_function("remark_recompile_verify", |b| {
        let mut mask = 0u32;
        b.iter(|| {
            mask = (mask + 1) % 16;
            let mut marks = MarkSet::new();
            for k in 0..4 {
                if mask & (1 << k) != 0 {
                    marks.mark_hardware(&format!("Stage{k}"));
                }
            }
            let report = verify_partition(&domain, &marks, &tc).unwrap();
            assert!(report.is_equivalent());
            black_box(report)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
