//! E6 bench: model-compilation (partition + interface + C + VHDL) cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtuml_bench::workloads::pipeline_domain;
use xtuml_core::marks::MarkSet;
use xtuml_mda::ModelCompiler;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_codegen");
    for stages in [4usize, 16, 64] {
        let domain = pipeline_domain(stages).unwrap();
        let mut marks = MarkSet::new();
        for k in 0..stages / 2 {
            marks.mark_hardware(&format!("Stage{}", 2 * k + 1));
        }
        g.bench_with_input(
            BenchmarkId::new("compile", stages),
            &(domain, marks),
            |b, (d, m)| b.iter(|| black_box(ModelCompiler::new().compile(d, m).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
