//! E3 bench: abstract-model interpreter event throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xtuml_bench::workloads::pipeline_domain;
use xtuml_core::value::Value;
use xtuml_exec::Simulation;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_interpreter");
    for stages in [2usize, 8, 32] {
        let feeds = 64u64;
        let domain = pipeline_domain(stages).unwrap();
        // Dispatches = feeds * stages.
        g.throughput(Throughput::Elements(feeds * stages as u64));
        g.bench_with_input(BenchmarkId::new("pipeline", stages), &domain, |b, d| {
            b.iter(|| {
                let mut sim = Simulation::new(d);
                let insts: Vec<_> = (0..stages)
                    .map(|k| sim.create(&format!("Stage{k}")).unwrap())
                    .collect();
                for k in 0..stages - 1 {
                    sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                        .unwrap();
                }
                for i in 0..feeds {
                    sim.inject(i, insts[0], "Feed", vec![Value::Int(0)])
                        .unwrap();
                }
                black_box(sim.run_to_quiescence().unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
