//! E5 bench: interleaving sweep with causality checking.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xtuml_bench::experiments::e5_causality;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_causality");
    g.sample_size(10);
    g.bench_function("sweep_8_seeds_burst_40", |b| {
        b.iter(|| black_box(e5_causality(8, 40)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
