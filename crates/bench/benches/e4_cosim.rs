//! E4 bench: co-simulation cost vs hardware fraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xtuml_bench::workloads::pipeline_domain;
use xtuml_core::marks::MarkSet;
use xtuml_mda::ModelCompiler;
use xtuml_verify::{run_compiled, TestCase};

fn bench(c: &mut Criterion) {
    let stages = 4usize;
    let domain = pipeline_domain(stages).unwrap();
    let tc = TestCase::pipeline(stages, 4);
    let mut g = c.benchmark_group("e4_cosim");
    g.sample_size(20);
    for hw in [0usize, 2, 4] {
        let mut marks = MarkSet::new();
        for k in 0..hw {
            marks.mark_hardware(&format!("Stage{k}"));
        }
        let design = ModelCompiler::new().compile(&domain, &marks).unwrap();
        g.bench_with_input(BenchmarkId::new("hw_stages", hw), &design, |b, design| {
            b.iter(|| black_box(run_compiled(design, &tc).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
