//! The register-file view of the bridge — what the generated C driver
//! sees.
//!
//! The model compiler emits a C driver that talks to the hardware
//! partition through memory-mapped registers; this module is the
//! behavioural model of that register file, layered over the message
//! transport. The layout is *computed from the channel table*, never
//! hand-written, so the software and hardware sides cannot disagree:
//!
//! ```text
//! word address                    register
//! ch*8 + 0 .. ch*8 + 5            TX data words (sw→hw channel `ch`)
//! ch*8 + 7                        TX doorbell: write = send
//! 0x100                           RX status: pending message count
//! 0x101                           RX channel id of the front message
//! 0x102 .. 0x107                  RX data words of the front message
//! 0x10F                           RX pop: write = consume front message
//! ```

use crate::bridge::{Bridge, BridgeConfig};
use crate::msg::{BusMessage, Direction};
use xtuml_swrt::Mmio;

/// Base word address of the RX register block.
pub const RX_BASE: u32 = 0x100;
/// RX status register (pending count).
pub const RX_STATUS: u32 = RX_BASE;
/// RX front-message channel id.
pub const RX_CHANNEL: u32 = RX_BASE + 1;
/// First RX data word.
pub const RX_DATA0: u32 = RX_BASE + 2;
/// RX pop register.
pub const RX_POP: u32 = RX_BASE + 0xF;
/// Words reserved per TX channel block.
pub const TX_STRIDE: u32 = 8;
/// Doorbell offset within a TX channel block.
pub const TX_DOORBELL: u32 = 7;
/// Maximum payload words a channel block can carry.
pub const MAX_PAYLOAD_WORDS: usize = 6;

/// Software-side register file state (TX staging buffers).
#[derive(Debug, Clone)]
pub struct RegisterFile {
    config: BridgeConfig,
    tx_staging: Vec<Vec<u32>>, // per channel id
    /// Doorbell writes whose send was rejected (bad channel etc.).
    pub errors: u64,
}

impl RegisterFile {
    /// Builds the register file for a generated bridge configuration.
    ///
    /// # Panics
    ///
    /// Panics if any channel payload exceeds [`MAX_PAYLOAD_WORDS`] — the
    /// model compiler splits larger events before this point.
    pub fn new(config: &BridgeConfig) -> RegisterFile {
        let max_id = config.channels.iter().map(|c| c.id).max().unwrap_or(0);
        for c in &config.channels {
            assert!(
                c.payload_words <= MAX_PAYLOAD_WORDS,
                "channel {} payload too wide",
                c.id
            );
        }
        RegisterFile {
            config: config.clone(),
            tx_staging: vec![vec![0; MAX_PAYLOAD_WORDS]; max_id as usize + 1],
            errors: 0,
        }
    }

    /// The word address of a TX data register.
    pub fn tx_data_addr(channel: u32, word: usize) -> u32 {
        channel * TX_STRIDE + word as u32
    }

    /// The word address of a TX doorbell.
    pub fn tx_doorbell_addr(channel: u32) -> u32 {
        channel * TX_STRIDE + TX_DOORBELL
    }

    /// Borrows the register file together with the bridge as an [`Mmio`]
    /// device for one software time slice at hardware time `now`.
    pub fn view<'a>(&'a mut self, bridge: &'a mut Bridge, now: u64) -> RegView<'a> {
        RegView {
            rf: self,
            bridge,
            now,
        }
    }
}

/// A borrowed MMIO window onto the bridge at a fixed hardware time.
pub struct RegView<'a> {
    rf: &'a mut RegisterFile,
    bridge: &'a mut Bridge,
    now: u64,
}

impl Mmio for RegView<'_> {
    fn read(&mut self, addr: u32) -> u32 {
        match addr {
            RX_STATUS => self.bridge.sw_pending() as u32,
            RX_CHANNEL => self.bridge.sw_front().map_or(u32::MAX, |m| m.channel),
            a if (RX_DATA0..RX_DATA0 + MAX_PAYLOAD_WORDS as u32).contains(&a) => {
                let idx = (a - RX_DATA0) as usize;
                self.bridge
                    .sw_front()
                    .and_then(|m| m.words.get(idx).copied())
                    .unwrap_or(0)
            }
            a if a < RX_BASE => {
                // TX staging reads back what was written.
                let ch = a / TX_STRIDE;
                let word = (a % TX_STRIDE) as usize;
                self.rf
                    .tx_staging
                    .get(ch as usize)
                    .and_then(|w| w.get(word).copied())
                    .unwrap_or(0)
            }
            _ => 0,
        }
    }

    fn write(&mut self, addr: u32, value: u32) {
        match addr {
            RX_POP => {
                self.bridge.sw_recv();
            }
            a if a < RX_BASE => {
                let ch = a / TX_STRIDE;
                let word = (a % TX_STRIDE) as usize;
                if word == TX_DOORBELL as usize {
                    // Doorbell: package staged words per the channel spec
                    // and send.
                    let Some(spec) = self
                        .rf
                        .config
                        .channels
                        .iter()
                        .find(|c| c.id == ch && c.dir == Direction::SwToHw)
                    else {
                        self.rf.errors += 1;
                        return;
                    };
                    let words = self.rf.tx_staging[ch as usize][..spec.payload_words].to_vec();
                    if self
                        .bridge
                        .sw_send(BusMessage { channel: ch, words }, self.now)
                        .is_err()
                    {
                        self.rf.errors += 1;
                    }
                } else if let Some(slot) = self
                    .rf
                    .tx_staging
                    .get_mut(ch as usize)
                    .and_then(|w| w.get_mut(word))
                {
                    *slot = value;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::ChannelSpec;

    fn setup() -> (RegisterFile, Bridge) {
        let cfg = BridgeConfig {
            channels: vec![
                ChannelSpec {
                    id: 0,
                    payload_words: 2,
                    dir: Direction::SwToHw,
                },
                ChannelSpec {
                    id: 1,
                    payload_words: 1,
                    dir: Direction::HwToSw,
                },
            ],
            fifo_depth: 4,
            bus_latency: 0,
        };
        (RegisterFile::new(&cfg), Bridge::new(&cfg))
    }

    #[test]
    fn doorbell_sends_staged_words() {
        let (mut rf, mut bridge) = setup();
        {
            let mut v = rf.view(&mut bridge, 5);
            v.write(RegisterFile::tx_data_addr(0, 0), 0xAA);
            v.write(RegisterFile::tx_data_addr(0, 1), 0xBB);
            v.write(RegisterFile::tx_doorbell_addr(0), 1);
        }
        bridge.advance(5);
        let m = bridge.hw_recv().unwrap();
        assert_eq!(m.channel, 0);
        assert_eq!(m.words, vec![0xAA, 0xBB]);
        assert_eq!(rf.errors, 0);
    }

    #[test]
    fn rx_registers_expose_front_message() {
        let (mut rf, mut bridge) = setup();
        bridge
            .hw_send(
                BusMessage {
                    channel: 1,
                    words: vec![42],
                },
                0,
            )
            .unwrap();
        bridge.advance(0);
        let mut v = rf.view(&mut bridge, 0);
        assert_eq!(v.read(RX_STATUS), 1);
        assert_eq!(v.read(RX_CHANNEL), 1);
        assert_eq!(v.read(RX_DATA0), 42);
        v.write(RX_POP, 1);
        assert_eq!(v.read(RX_STATUS), 0);
        assert_eq!(v.read(RX_CHANNEL), u32::MAX);
    }

    #[test]
    fn doorbell_on_rx_channel_counts_error() {
        let (mut rf, mut bridge) = setup();
        {
            let mut v = rf.view(&mut bridge, 0);
            v.write(RegisterFile::tx_doorbell_addr(1), 1); // ch1 is hw→sw
        }
        assert_eq!(rf.errors, 1);
    }

    #[test]
    fn staging_reads_back() {
        let (mut rf, mut bridge) = setup();
        let mut v = rf.view(&mut bridge, 0);
        v.write(RegisterFile::tx_data_addr(0, 1), 7);
        assert_eq!(v.read(RegisterFile::tx_data_addr(0, 1)), 7);
    }

    #[test]
    fn address_map_is_disjoint() {
        // TX blocks for plausible channel counts stay below RX_BASE.
        for ch in 0..32u32 {
            assert!(RegisterFile::tx_doorbell_addr(ch) < RX_BASE);
        }
    }
}
