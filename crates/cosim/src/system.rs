//! The lockstep co-simulation loop.
//!
//! One iteration = one hardware clock cycle: the bridge delivers due
//! messages, the hardware model runs its cycle, the software model runs
//! with the CPU budget earned at the configured clock ratio. The loop ends
//! at joint quiescence (both models idle, bridge empty) or a cycle cap.

use crate::bridge::Bridge;
use crate::clock::CoClock;
use std::fmt;

/// Co-simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosimError {
    /// Human-readable description.
    pub msg: String,
}

impl CosimError {
    /// Creates an error.
    pub fn new(msg: impl Into<String>) -> CosimError {
        CosimError { msg: msg.into() }
    }
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cosim error: {}", self.msg)
    }
}

impl std::error::Error for CosimError {}

/// The hardware partition as seen by the co-simulation loop.
pub trait HwModel {
    /// Runs one hardware clock cycle at time `now`.
    ///
    /// # Errors
    ///
    /// Implementation-defined (action failures, RTL oscillation, ...).
    fn cycle(&mut self, bridge: &mut Bridge, now: u64) -> Result<(), CosimError>;
    /// True when no internal work is pending.
    fn idle(&self) -> bool;
}

/// The software partition as seen by the co-simulation loop.
pub trait SwModel {
    /// Runs for at most `budget` CPU cycles at hardware time `now`;
    /// returns the CPU cycles actually consumed.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn run_slice(&mut self, bridge: &mut Bridge, now: u64, budget: u64) -> Result<u64, CosimError>;
    /// True when no internal work is pending.
    fn idle(&self) -> bool;
}

/// Aggregate statistics of a co-simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CosimStats {
    /// Hardware cycles simulated.
    pub hw_cycles: u64,
    /// CPU cycles consumed by the software partition.
    pub cpu_cycles: u64,
    /// Messages delivered sw→hw.
    pub msgs_sw_to_hw: u64,
    /// Messages delivered hw→sw.
    pub msgs_hw_to_sw: u64,
    /// Total bus beats moved.
    pub bus_beats: u64,
}

/// The co-simulation executive.
pub struct CoSystem<H, S> {
    hw: H,
    sw: S,
    bridge: Bridge,
    clock: CoClock,
    cpu_cycles: u64,
    max_cycles: u64,
}

impl<H: HwModel, S: SwModel> CoSystem<H, S> {
    /// Assembles a co-simulation from the two partition models, the
    /// generated bridge and the clock ratio.
    pub fn new(hw: H, sw: S, bridge: Bridge, clock: CoClock) -> CoSystem<H, S> {
        CoSystem {
            hw,
            sw,
            bridge,
            clock,
            cpu_cycles: 0,
            max_cycles: 50_000_000,
        }
    }

    /// Caps the number of hardware cycles per run.
    pub fn set_max_cycles(&mut self, max: u64) {
        self.max_cycles = max;
    }

    /// The hardware partition model.
    pub fn hw(&self) -> &H {
        &self.hw
    }

    /// The software partition model.
    pub fn sw(&self) -> &S {
        &self.sw
    }

    /// Mutable access to the software partition (stimulus injection).
    pub fn sw_mut(&mut self) -> &mut S {
        &mut self.sw
    }

    /// Mutable access to the hardware partition (stimulus injection).
    pub fn hw_mut(&mut self) -> &mut H {
        &mut self.hw
    }

    /// Elapsed hardware cycles.
    pub fn now(&self) -> u64 {
        self.clock.hw_cycles()
    }

    /// Runs one hardware cycle.
    ///
    /// # Errors
    ///
    /// Propagates partition errors.
    pub fn cycle(&mut self) -> Result<(), CosimError> {
        let now = self.clock.hw_cycles();
        self.bridge.advance(now);
        self.hw.cycle(&mut self.bridge, now)?;
        let budget = self.clock.advance_hw_cycle();
        let used = self.sw.run_slice(&mut self.bridge, now, budget)?;
        self.cpu_cycles += used;
        Ok(())
    }

    /// Runs until joint quiescence; returns the statistics.
    ///
    /// # Errors
    ///
    /// Propagates partition errors; errors out at the cycle cap
    /// (livelock guard).
    pub fn run_to_quiescence(&mut self) -> Result<CosimStats, CosimError> {
        let mut idle_streak = 0u32;
        while idle_streak < 4 {
            if self.clock.hw_cycles() > self.max_cycles {
                return Err(CosimError::new(format!(
                    "exceeded {} hw cycles — livelock?",
                    self.max_cycles
                )));
            }
            self.cycle()?;
            // Quiescence must hold for a few consecutive cycles so that
            // in-flight bus messages and budget droughts don't end the
            // run early.
            if self.hw.idle() && self.sw.idle() && self.bridge.idle() {
                idle_streak += 1;
            } else {
                idle_streak = 0;
            }
        }
        Ok(self.stats())
    }

    /// [`CoSystem::run_to_quiescence`] with telemetry: wraps the run in
    /// a `cosim.run` span on the sink's track and mirrors the final
    /// [`CosimStats`] into the counter catalogue (`cosim_hw_cycles`,
    /// `cosim_cpu_cycles`, `cosim_msgs_sw_to_hw`, `cosim_msgs_hw_to_sw`,
    /// `cosim_bus_beats`). With a disabled sink this is exactly
    /// `run_to_quiescence` plus a handful of no-op calls.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`CoSystem::run_to_quiescence`].
    pub fn run_to_quiescence_obs(
        &mut self,
        sink: &mut dyn xtuml_obs::Sink,
    ) -> Result<CosimStats, CosimError> {
        use xtuml_obs::Counter;
        let span = sink.spans_enabled();
        let track = sink.track();
        if span {
            sink.span_begin(track, "cosim", "cosim.run");
        }
        let out = self.run_to_quiescence();
        if span {
            sink.span_end(track);
        }
        if sink.enabled() {
            if let Ok(stats) = &out {
                sink.count(Counter::CosimHwCycles, stats.hw_cycles);
                sink.count(Counter::CosimCpuCycles, stats.cpu_cycles);
                sink.count(Counter::CosimMsgsSwToHw, stats.msgs_sw_to_hw);
                sink.count(Counter::CosimMsgsHwToSw, stats.msgs_hw_to_sw);
                sink.count(Counter::CosimBusBeats, stats.bus_beats);
            }
        }
        out
    }

    /// Statistics so far.
    pub fn stats(&self) -> CosimStats {
        let b = self.bridge.stats();
        CosimStats {
            hw_cycles: self.clock.hw_cycles(),
            cpu_cycles: self.cpu_cycles,
            msgs_sw_to_hw: b.sw_to_hw,
            msgs_hw_to_sw: b.hw_to_sw,
            bus_beats: b.beats,
        }
    }

    /// Decomposes the system back into its parts (trace extraction).
    pub fn into_parts(self) -> (H, S, Bridge) {
        (self.hw, self.sw, self.bridge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::{BridgeConfig, ChannelSpec};
    use crate::msg::{BusMessage, Direction};

    /// Hardware that echoes every message back, incremented.
    struct EchoHw {
        pending: usize,
    }
    impl HwModel for EchoHw {
        fn cycle(&mut self, bridge: &mut Bridge, now: u64) -> Result<(), CosimError> {
            if let Some(m) = bridge.hw_recv() {
                bridge
                    .hw_send(
                        BusMessage {
                            channel: 1,
                            words: vec![m.words[0] + 1],
                        },
                        now,
                    )
                    .map_err(|e| CosimError::new(e.to_string()))?;
                self.pending = self.pending.saturating_sub(1);
            }
            Ok(())
        }
        fn idle(&self) -> bool {
            true // stateless between messages
        }
    }

    /// Software that sends `count` pings, collects replies. Accumulates
    /// its per-slice budget as credit, the way a real dispatch loop spans
    /// several hardware cycles per action.
    struct PingSw {
        to_send: u64,
        replies: Vec<u32>,
        next: u32,
        credit: u64,
    }
    impl SwModel for PingSw {
        fn run_slice(
            &mut self,
            bridge: &mut Bridge,
            now: u64,
            budget: u64,
        ) -> Result<u64, CosimError> {
            self.credit += budget;
            let mut used = 0;
            if self.credit >= 10 && self.to_send > 0 {
                bridge
                    .sw_send(
                        BusMessage {
                            channel: 0,
                            words: vec![self.next],
                        },
                        now,
                    )
                    .map_err(|e| CosimError::new(e.to_string()))?;
                self.next += 1;
                self.to_send -= 1;
                self.credit -= 10;
                used += 10;
            }
            while let Some(m) = bridge.sw_recv() {
                self.replies.push(m.words[0]);
                used += 5;
            }
            Ok(used)
        }
        fn idle(&self) -> bool {
            self.to_send == 0
        }
    }

    fn bridge() -> Bridge {
        Bridge::new(&BridgeConfig {
            channels: vec![
                ChannelSpec {
                    id: 0,
                    payload_words: 1,
                    dir: Direction::SwToHw,
                },
                ChannelSpec {
                    id: 1,
                    payload_words: 1,
                    dir: Direction::HwToSw,
                },
            ],
            fifo_depth: 16,
            bus_latency: 2,
        })
    }

    #[test]
    fn ping_pong_round_trips() {
        let hw = EchoHw { pending: 0 };
        let sw = PingSw {
            to_send: 5,
            replies: Vec::new(),
            next: 100,
            credit: 0,
        };
        let mut sys = CoSystem::new(hw, sw, bridge(), CoClock::new(50_000, 200_000));
        let stats = sys.run_to_quiescence().unwrap();
        assert_eq!(sys.sw().replies, vec![101, 102, 103, 104, 105]);
        assert_eq!(stats.msgs_sw_to_hw, 5);
        assert_eq!(stats.msgs_hw_to_sw, 5);
        assert!(stats.hw_cycles > 0);
        assert!(stats.cpu_cycles > 0);
    }

    #[test]
    fn obs_run_mirrors_stats_into_counters() {
        let hw = EchoHw { pending: 0 };
        let sw = PingSw {
            to_send: 5,
            replies: Vec::new(),
            next: 100,
            credit: 0,
        };
        let mut sys = CoSystem::new(hw, sw, bridge(), CoClock::new(50_000, 200_000));
        let mut rec = xtuml_obs::Recorder::with_spans(xtuml_obs::Clock::start());
        let stats = sys.run_to_quiescence_obs(&mut rec).unwrap();
        use xtuml_obs::{Counter, Sink as _};
        assert_eq!(rec.metrics.get(Counter::CosimHwCycles), stats.hw_cycles);
        assert_eq!(rec.metrics.get(Counter::CosimMsgsSwToHw), 5);
        assert_eq!(rec.metrics.get(Counter::CosimMsgsHwToSw), 5);
        assert_eq!(rec.spans().unwrap().events().len(), 1);
        assert_eq!(rec.spans().unwrap().events()[0].name, "cosim.run");
        // Disabled path: a NullSink records nothing and changes nothing.
        let null = xtuml_obs::NullSink;
        assert!(!null.enabled());
    }

    #[test]
    fn budget_drought_just_delays_completion() {
        // CPU much slower than hw clock: budgets are often zero, but the
        // run still completes.
        let hw = EchoHw { pending: 0 };
        let sw = PingSw {
            to_send: 3,
            replies: Vec::new(),
            next: 0,
            credit: 0,
        };
        let mut sys = CoSystem::new(hw, sw, bridge(), CoClock::new(100_000, 10_000));
        sys.run_to_quiescence().unwrap();
        assert_eq!(sys.sw().replies.len(), 3);
    }

    #[test]
    fn livelock_guard_fires() {
        struct ChattyHw;
        impl HwModel for ChattyHw {
            fn cycle(&mut self, bridge: &mut Bridge, now: u64) -> Result<(), CosimError> {
                // Sends forever.
                let _ = bridge.hw_send(
                    BusMessage {
                        channel: 1,
                        words: vec![0],
                    },
                    now,
                );
                Ok(())
            }
            fn idle(&self) -> bool {
                false
            }
        }
        struct SinkSw;
        impl SwModel for SinkSw {
            fn run_slice(
                &mut self,
                bridge: &mut Bridge,
                _now: u64,
                _budget: u64,
            ) -> Result<u64, CosimError> {
                while bridge.sw_recv().is_some() {}
                Ok(0)
            }
            fn idle(&self) -> bool {
                true
            }
        }
        let mut sys = CoSystem::new(ChattyHw, SinkSw, bridge(), CoClock::new(1000, 1000));
        sys.set_max_cycles(1000);
        assert!(sys.run_to_quiescence().is_err());
    }
}
