//! # xtuml-cosim — hardware/software co-simulation
//!
//! Joins the RTL substrate (`xtuml-rtl`) and the software runtime
//! (`xtuml-swrt`) through the **generated interface** of paper §4: a set of
//! typed event channels realised as a register file with doorbell
//! semantics and a latency-modelled bus.
//!
//! The crate is model-agnostic: it moves [`BusMessage`]s between two
//! abstract executors ([`HwModel`], [`SwModel`]) in lockstep, one hardware
//! clock cycle at a time, giving the software side a proportional CPU
//! cycle budget ([`CoClock`]). `xtuml-mda` lowers a marked domain onto
//! these traits; the *same channel table* drives both the generated C/VHDL
//! text and this executable bridge — which is exactly how the paper's
//! "the two halves are known to fit together" guarantee is built.
//!
//! ```
//! use xtuml_cosim::{Bridge, BridgeConfig, BusMessage, ChannelSpec, Direction};
//!
//! let cfg = BridgeConfig {
//!     channels: vec![ChannelSpec { id: 0, payload_words: 2, dir: Direction::SwToHw }],
//!     fifo_depth: 8,
//!     bus_latency: 3,
//! };
//! let mut bridge = Bridge::new(&cfg);
//! bridge.sw_send(BusMessage { channel: 0, words: vec![7, 9] }, 0).unwrap();
//! assert!(bridge.hw_recv().is_none());     // still in flight
//! bridge.advance(3);                        // latency elapses
//! assert_eq!(bridge.hw_recv().unwrap().words, vec![7, 9]);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod bridge;
pub mod clock;
pub mod msg;
pub mod regfile;
pub mod system;

pub use bridge::{Bridge, BridgeConfig, ChannelSpec};
pub use clock::CoClock;
pub use msg::{BusMessage, Direction};
pub use regfile::RegisterFile;
pub use system::{CoSystem, CosimError, CosimStats, HwModel, SwModel};
