//! Bus messages: the wire format of the generated interface.

use std::fmt;

/// Which way a channel carries events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Software partition → hardware partition.
    SwToHw,
    /// Hardware partition → software partition.
    HwToSw,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::SwToHw => write!(f, "sw->hw"),
            Direction::HwToSw => write!(f, "hw->sw"),
        }
    }
}

/// One event crossing the partition boundary: a channel id (which encodes
/// target class + event in the generated channel table) and its payload,
/// packed into 32-bit words by the generated marshalling code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMessage {
    /// Channel id from the generated interface spec.
    pub channel: u32,
    /// Marshalled payload words.
    pub words: Vec<u32>,
}

impl BusMessage {
    /// Total bus beats this message occupies (header + payload).
    pub fn beats(&self) -> usize {
        1 + self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_counts_header() {
        let m = BusMessage {
            channel: 3,
            words: vec![1, 2, 3],
        };
        assert_eq!(m.beats(), 4);
        let empty = BusMessage {
            channel: 0,
            words: vec![],
        };
        assert_eq!(empty.beats(), 1);
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::SwToHw.to_string(), "sw->hw");
        assert_eq!(Direction::HwToSw.to_string(), "hw->sw");
    }
}
