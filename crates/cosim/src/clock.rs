//! Clock-domain alignment between the hardware and software partitions.
//!
//! The co-simulation advances in hardware clock cycles; the CPU usually
//! runs at a different (typically higher) rate. [`CoClock`] hands the
//! software executor its proportional cycle budget per hardware cycle,
//! carrying fractional remainders so no cycles are lost over time.

/// Tracks the hw↔cpu clock ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoClock {
    hw_khz: u64,
    cpu_khz: u64,
    hw_cycles: u64,
    /// Fractional CPU cycles carried between hardware cycles (numerator
    /// over `hw_khz`).
    carry: u64,
}

impl CoClock {
    /// Creates a clock pair.
    ///
    /// # Panics
    ///
    /// Panics if either rate is zero.
    pub fn new(hw_khz: u64, cpu_khz: u64) -> CoClock {
        assert!(hw_khz > 0 && cpu_khz > 0, "clock rates must be nonzero");
        CoClock {
            hw_khz,
            cpu_khz,
            hw_cycles: 0,
            carry: 0,
        }
    }

    /// Hardware clock rate (kHz).
    pub fn hw_khz(&self) -> u64 {
        self.hw_khz
    }

    /// CPU clock rate (kHz).
    pub fn cpu_khz(&self) -> u64 {
        self.cpu_khz
    }

    /// Elapsed hardware cycles.
    pub fn hw_cycles(&self) -> u64 {
        self.hw_cycles
    }

    /// Elapsed wall-clock time in nanoseconds.
    pub fn nanos(&self) -> u64 {
        // cycles / khz ms = cycles * 1e6 / khz ns.
        self.hw_cycles * 1_000_000 / self.hw_khz
    }

    /// Advances one hardware cycle; returns the CPU cycle budget the
    /// software side earns for this slice.
    pub fn advance_hw_cycle(&mut self) -> u64 {
        self.hw_cycles += 1;
        let total = self.carry + self.cpu_khz;
        let budget = total / self.hw_khz;
        self.carry = total % self.hw_khz;
        budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_clocks_give_one_cycle_each() {
        let mut c = CoClock::new(1000, 1000);
        for _ in 0..10 {
            assert_eq!(c.advance_hw_cycle(), 1);
        }
        assert_eq!(c.hw_cycles(), 10);
    }

    #[test]
    fn faster_cpu_gets_proportional_budget() {
        let mut c = CoClock::new(50_000, 200_000); // CPU 4× hw
        let total: u64 = (0..100).map(|_| c.advance_hw_cycle()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn fractional_ratio_conserves_cycles() {
        let mut c = CoClock::new(3, 10); // 10/3 cycles per hw cycle
        let total: u64 = (0..300).map(|_| c.advance_hw_cycle()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn slow_cpu_sometimes_gets_zero() {
        let mut c = CoClock::new(10, 3);
        let budgets: Vec<u64> = (0..10).map(|_| c.advance_hw_cycle()).collect();
        assert!(budgets.contains(&0));
        assert_eq!(budgets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn nanos_from_hw_clock() {
        let mut c = CoClock::new(100_000, 100_000); // 100 MHz → 10 ns/cycle
        for _ in 0..7 {
            c.advance_hw_cycle();
        }
        assert_eq!(c.nanos(), 70);
    }
}
