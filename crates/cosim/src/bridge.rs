//! The HW↔SW bridge: latency-modelled transport over generated channels.
//!
//! Messages sent from either side spend `bus_latency` hardware cycles in
//! flight, then land in the receiving side's FIFO (bounded, from the
//! `queueDepth`-style marks). Per-direction ordering is preserved — the
//! transport must not reorder, or the event rules of §2 would be violated
//! across the boundary.

use crate::msg::{BusMessage, Direction};
use std::collections::VecDeque;
use xtuml_rtl::SyncFifo;

/// One generated channel: an event type that crosses the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Channel id (dense, assigned by the model compiler).
    pub id: u32,
    /// Payload size in 32-bit words.
    pub payload_words: usize,
    /// Direction of travel.
    pub dir: Direction,
}

/// Bridge configuration — *derived from the model*, never hand-written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeConfig {
    /// The channel table.
    pub channels: Vec<ChannelSpec>,
    /// Depth of each receive FIFO.
    pub fifo_depth: usize,
    /// One-way latency in hardware cycles.
    pub bus_latency: u64,
}

/// Transport statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Messages delivered sw→hw.
    pub sw_to_hw: u64,
    /// Messages delivered hw→sw.
    pub hw_to_sw: u64,
    /// Total bus beats moved.
    pub beats: u64,
}

/// Errors from the bridge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeError {
    /// The channel id is not in the table or goes the wrong way.
    BadChannel {
        /// Offending channel id.
        channel: u32,
        /// Direction attempted.
        dir: Direction,
    },
    /// Payload word count does not match the channel spec.
    BadPayload {
        /// Offending channel id.
        channel: u32,
        /// Expected word count.
        want: usize,
        /// Actual word count.
        got: usize,
    },
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::BadChannel { channel, dir } => {
                write!(f, "channel {channel} cannot carry {dir} traffic")
            }
            BridgeError::BadPayload { channel, want, got } => {
                write!(f, "channel {channel} payload is {want} word(s), got {got}")
            }
        }
    }
}

impl std::error::Error for BridgeError {}

/// The latency-modelled transport. See the crate-level example.
#[derive(Debug)]
pub struct Bridge {
    config: BridgeConfig,
    /// In-flight (deliver_at, message), FIFO per direction.
    flight_to_hw: VecDeque<(u64, BusMessage)>,
    flight_to_sw: VecDeque<(u64, BusMessage)>,
    rx_hw: SyncFifo<BusMessage>,
    rx_sw: SyncFifo<BusMessage>,
    stats: BridgeStats,
}

impl Bridge {
    /// Builds a bridge from a generated configuration.
    pub fn new(config: &BridgeConfig) -> Bridge {
        Bridge {
            config: config.clone(),
            flight_to_hw: VecDeque::new(),
            flight_to_sw: VecDeque::new(),
            rx_hw: SyncFifo::new(config.fifo_depth.max(1)),
            rx_sw: SyncFifo::new(config.fifo_depth.max(1)),
            stats: BridgeStats::default(),
        }
    }

    /// The channel table.
    pub fn config(&self) -> &BridgeConfig {
        &self.config
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> BridgeStats {
        self.stats
    }

    fn check(&self, msg: &BusMessage, dir: Direction) -> Result<(), BridgeError> {
        let Some(spec) = self.config.channels.iter().find(|c| c.id == msg.channel) else {
            return Err(BridgeError::BadChannel {
                channel: msg.channel,
                dir,
            });
        };
        if spec.dir != dir {
            return Err(BridgeError::BadChannel {
                channel: msg.channel,
                dir,
            });
        }
        if spec.payload_words != msg.words.len() {
            return Err(BridgeError::BadPayload {
                channel: msg.channel,
                want: spec.payload_words,
                got: msg.words.len(),
            });
        }
        Ok(())
    }

    /// Software sends towards hardware at time `now` (hw cycles).
    ///
    /// # Errors
    ///
    /// Returns [`BridgeError`] on unknown/misdirected channels or payload
    /// size mismatches — the static guarantee the generated interface
    /// enforces at runtime for hand-written callers.
    pub fn sw_send(&mut self, msg: BusMessage, now: u64) -> Result<(), BridgeError> {
        self.check(&msg, Direction::SwToHw)?;
        self.stats.beats += msg.beats() as u64;
        self.flight_to_hw
            .push_back((now + self.config.bus_latency, msg));
        Ok(())
    }

    /// Hardware sends towards software at time `now` (hw cycles).
    ///
    /// # Errors
    ///
    /// Same contract as [`Bridge::sw_send`].
    pub fn hw_send(&mut self, msg: BusMessage, now: u64) -> Result<(), BridgeError> {
        self.check(&msg, Direction::HwToSw)?;
        self.stats.beats += msg.beats() as u64;
        self.flight_to_sw
            .push_back((now + self.config.bus_latency, msg));
        Ok(())
    }

    /// Moves messages whose latency has elapsed into the receive FIFOs.
    /// Call once per hardware cycle with the current time.
    pub fn advance(&mut self, now: u64) {
        while let Some((at, _)) = self.flight_to_hw.front() {
            if *at > now || self.rx_hw.is_full() {
                break;
            }
            let (_, msg) = self.flight_to_hw.pop_front().expect("checked front");
            self.stats.sw_to_hw += 1;
            let pushed = self.rx_hw.push(msg);
            debug_assert!(pushed, "fullness checked above");
        }
        while let Some((at, _)) = self.flight_to_sw.front() {
            if *at > now || self.rx_sw.is_full() {
                break;
            }
            let (_, msg) = self.flight_to_sw.pop_front().expect("checked front");
            self.stats.hw_to_sw += 1;
            let pushed = self.rx_sw.push(msg);
            debug_assert!(pushed, "fullness checked above");
        }
    }

    /// Hardware pops its next delivered message.
    pub fn hw_recv(&mut self) -> Option<BusMessage> {
        self.rx_hw.pop()
    }

    /// Software pops its next delivered message.
    pub fn sw_recv(&mut self) -> Option<BusMessage> {
        self.rx_sw.pop()
    }

    /// Number of messages delivered and waiting on the software side.
    pub fn sw_pending(&self) -> usize {
        self.rx_sw.len()
    }

    /// Peeks the next message waiting on the software side.
    pub fn sw_front(&self) -> Option<&BusMessage> {
        self.rx_sw.front()
    }

    /// True when nothing is in flight or queued in either direction.
    pub fn idle(&self) -> bool {
        self.flight_to_hw.is_empty()
            && self.flight_to_sw.is_empty()
            && self.rx_hw.is_empty()
            && self.rx_sw.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BridgeConfig {
        BridgeConfig {
            channels: vec![
                ChannelSpec {
                    id: 0,
                    payload_words: 1,
                    dir: Direction::SwToHw,
                },
                ChannelSpec {
                    id: 1,
                    payload_words: 0,
                    dir: Direction::HwToSw,
                },
            ],
            fifo_depth: 2,
            bus_latency: 4,
        }
    }

    fn msg(ch: u32, words: Vec<u32>) -> BusMessage {
        BusMessage { channel: ch, words }
    }

    #[test]
    fn latency_is_respected_both_ways() {
        let mut b = Bridge::new(&config());
        b.sw_send(msg(0, vec![5]), 10).unwrap();
        b.hw_send(msg(1, vec![]), 10).unwrap();
        for t in 10..14 {
            b.advance(t);
            assert!(b.hw_recv().is_none());
            assert!(b.sw_recv().is_none());
        }
        b.advance(14);
        assert_eq!(b.hw_recv().unwrap().words, vec![5]);
        assert!(b.sw_recv().is_some());
        assert!(b.idle());
    }

    #[test]
    fn ordering_preserved_within_direction() {
        let mut b = Bridge::new(&config());
        b.sw_send(msg(0, vec![1]), 0).unwrap();
        b.sw_send(msg(0, vec![2]), 1).unwrap();
        b.advance(100);
        assert_eq!(b.hw_recv().unwrap().words, vec![1]);
        assert_eq!(b.hw_recv().unwrap().words, vec![2]);
    }

    #[test]
    fn wrong_direction_and_payload_rejected() {
        let mut b = Bridge::new(&config());
        assert!(matches!(
            b.sw_send(msg(1, vec![]), 0),
            Err(BridgeError::BadChannel { .. })
        ));
        assert!(matches!(
            b.sw_send(msg(9, vec![]), 0),
            Err(BridgeError::BadChannel { .. })
        ));
        assert!(matches!(
            b.sw_send(msg(0, vec![1, 2]), 0),
            Err(BridgeError::BadPayload { .. })
        ));
    }

    #[test]
    fn full_fifo_applies_backpressure_without_loss() {
        let mut b = Bridge::new(&config()); // depth 2
        for i in 0..4 {
            b.sw_send(msg(0, vec![i]), 0).unwrap();
        }
        b.advance(100);
        // Only 2 delivered; 2 still in flight behind the full FIFO.
        assert_eq!(b.hw_recv().unwrap().words, vec![0]);
        assert_eq!(b.hw_recv().unwrap().words, vec![1]);
        b.advance(101);
        assert_eq!(b.hw_recv().unwrap().words, vec![2]);
        b.advance(102);
        assert_eq!(b.hw_recv().unwrap().words, vec![3]);
        assert!(b.idle());
    }

    #[test]
    fn stats_count_messages_and_beats() {
        let mut b = Bridge::new(&config());
        b.sw_send(msg(0, vec![9]), 0).unwrap();
        b.hw_send(msg(1, vec![]), 0).unwrap();
        b.advance(50);
        b.hw_recv();
        b.sw_recv();
        let s = b.stats();
        assert_eq!(s.sw_to_hw, 1);
        assert_eq!(s.hw_to_sw, 1);
        assert_eq!(s.beats, 2 + 1);
    }
}
