//! Property tests for the co-simulation substrate: the bridge never
//! reorders or loses messages, the register file round-trips payloads,
//! and the clock conserves CPU cycles exactly.
//!
//! Runs offline on the in-repo `xtuml-prop` harness; reproduce a failure
//! with the `XTUML_PROP_SEED` value printed on panic.

use xtuml_cosim::{Bridge, BridgeConfig, BusMessage, ChannelSpec, CoClock, Direction};
use xtuml_swrt::Mmio;

fn config(fifo_depth: usize, latency: u64) -> BridgeConfig {
    BridgeConfig {
        channels: vec![
            ChannelSpec {
                id: 0,
                payload_words: 1,
                dir: Direction::SwToHw,
            },
            ChannelSpec {
                id: 1,
                payload_words: 1,
                dir: Direction::HwToSw,
            },
        ],
        fifo_depth,
        bus_latency: latency,
    }
}

/// Every message sent is delivered exactly once, in send order, never
/// earlier than the configured latency.
#[test]
fn prop_bridge_delivers_everything_in_order() {
    xtuml_prop::run("bridge_delivers_everything_in_order", |g| {
        let latency = g.below(8);
        let depth = 1 + g.index(5);
        let sends: Vec<(bool, u32)> = (0..g.index(40))
            .map(|_| (g.flip(), g.below(1000) as u32))
            .collect();
        let mut bridge = Bridge::new(&config(depth, latency));
        let mut expect_hw: Vec<u32> = Vec::new();
        let mut expect_sw: Vec<u32> = Vec::new();
        let mut got_hw: Vec<u32> = Vec::new();
        let mut got_sw: Vec<u32> = Vec::new();
        let mut now = 0u64;
        for (to_hw, v) in &sends {
            if *to_hw {
                bridge
                    .sw_send(
                        BusMessage {
                            channel: 0,
                            words: vec![*v],
                        },
                        now,
                    )
                    .unwrap();
                expect_hw.push(*v);
            } else {
                bridge
                    .hw_send(
                        BusMessage {
                            channel: 1,
                            words: vec![*v],
                        },
                        now,
                    )
                    .unwrap();
                expect_sw.push(*v);
            }
            now += 1;
            bridge.advance(now);
            while let Some(m) = bridge.hw_recv() {
                got_hw.push(m.words[0]);
            }
            while let Some(m) = bridge.sw_recv() {
                got_sw.push(m.words[0]);
            }
        }
        // Drain: keep advancing until idle.
        for _ in 0..(latency + sends.len() as u64 + 4) {
            now += 1;
            bridge.advance(now);
            while let Some(m) = bridge.hw_recv() {
                got_hw.push(m.words[0]);
            }
            while let Some(m) = bridge.sw_recv() {
                got_sw.push(m.words[0]);
            }
        }
        assert!(bridge.idle());
        assert_eq!(got_hw, expect_hw);
        assert_eq!(got_sw, expect_sw);
        let stats = bridge.stats();
        assert_eq!(stats.sw_to_hw + stats.hw_to_sw, sends.len() as u64);
    });
}

/// The register-file MMIO view round-trips any staged payload through a
/// doorbell.
#[test]
fn prop_regfile_roundtrip() {
    xtuml_prop::run("regfile_roundtrip", |g| {
        let words: Vec<u32> = (0..1 + g.index(4)).map(|_| g.next_u64() as u32).collect();
        let cfg = BridgeConfig {
            channels: vec![ChannelSpec {
                id: 0,
                payload_words: words.len(),
                dir: Direction::SwToHw,
            }],
            fifo_depth: 4,
            bus_latency: 0,
        };
        let mut rf = xtuml_cosim::RegisterFile::new(&cfg);
        let mut bridge = Bridge::new(&cfg);
        {
            let mut view = rf.view(&mut bridge, 0);
            for (i, w) in words.iter().enumerate() {
                view.write(xtuml_cosim::RegisterFile::tx_data_addr(0, i), *w);
            }
            view.write(xtuml_cosim::RegisterFile::tx_doorbell_addr(0), 1);
        }
        bridge.advance(0);
        let m = bridge.hw_recv().expect("delivered");
        assert_eq!(m.words, words);
        assert_eq!(rf.errors, 0);
    });
}

/// The co-clock hands out exactly `cpu_khz * n / hw_khz` cycles over any
/// horizon, never losing a fractional cycle.
#[test]
fn prop_coclock_conserves_cycles() {
    xtuml_prop::run("coclock_conserves_cycles", |g| {
        let hw = 1 + g.below(499);
        let cpu = 1 + g.below(499);
        let n = 1 + g.below(1999);
        let mut clock = CoClock::new(hw, cpu);
        let total: u64 = (0..n).map(|_| clock.advance_hw_cycle()).sum();
        assert_eq!(total, cpu * n / hw);
        assert_eq!(clock.hw_cycles(), n);
    });
}
