//! # xtuml-prop — a dependency-free property-testing harness
//!
//! The workspace's property tests used to require the external `proptest`
//! crate and were feature-gated off so the tier-1 cycle worked without
//! network access. This crate replaces that arrangement with a small,
//! fully offline harness:
//!
//! * a seeded [`SplitMix64`] PRNG (the same generator the scheduler's
//!   policy engine uses, so test randomness is reproducible bit-for-bit
//!   across platforms),
//! * a [`Gen`] handle with convenience samplers (ranges, ratios,
//!   collection sizes, identifier strings),
//! * an [`Arbitrary`] trait for "give me a random one of these",
//! * a [`run`] driver that executes N cases, each under a seed *derived*
//!   from the base seed and the case index, and on failure prints the
//!   exact seed to re-run just that case.
//!
//! ## Reproducing a failure
//!
//! When a property fails, the driver panics with a message like:
//!
//! ```text
//! property `store_matches_reference` failed at case 17 (seed 0x3A0C...)
//! rerun just this case with: XTUML_PROP_SEED=0x3A0C...
//! ```
//!
//! Environment knobs:
//!
//! * `XTUML_PROP_SEED=<hex-or-dec>` — run exactly one case with this seed;
//! * `XTUML_PROP_CASES=<n>` — override the per-property case count;
//! * `XTUML_PROP_BASE=<hex-or-dec>` — change the base seed of the sweep.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Sebastiano Vigna's SplitMix64: tiny, fast, and statistically solid for
/// test-case derivation. Deterministic across platforms.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`), via Lemire-style rejection-free
    /// widening multiply — unbiased enough for test generation.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Mixes a base seed and a case index into an independent per-case seed.
///
/// Public so failure messages and external drivers can derive the same
/// sequence.
pub fn derive_seed(base: u64, case: u64) -> u64 {
    let mut rng = SplitMix64::new(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
    rng.next_u64()
}

/// The handle passed to every property: a seeded source of structured
/// random data.
#[derive(Debug)]
pub struct Gen {
    rng: SplitMix64,
    size: usize,
}

impl Gen {
    /// Creates a generator for one case. `size` bounds collection lengths
    /// and recursion depth for [`Arbitrary`] impls.
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: SplitMix64::new(seed),
            size: 16,
        }
    }

    /// The size hint (collection-length bound).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Overrides the size hint.
    pub fn set_size(&mut self, size: usize) {
        self.size = size;
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// Uniform `usize` in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform integer in the inclusive range `lo..=hi`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "int_in: empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let off = (u128::from(self.next_u64()) * span) >> 64;
        (lo as i128 + off as i128) as i64
    }

    /// Fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num/den`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly picks a slice element (panics on an empty slice).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// A lowercase ASCII identifier of length `1..=max_len`.
    pub fn ident(&mut self, max_len: usize) -> String {
        let len = 1 + self.index(max_len.max(1));
        (0..len)
            .map(|_| char::from(b'a' + self.below(26) as u8))
            .collect()
    }

    /// A random value of any [`Arbitrary`] type.
    pub fn arbitrary<T: Arbitrary>(&mut self) -> T {
        T::arbitrary(self)
    }

    /// A vector of `n` values produced by `f`.
    pub fn vec_of<T>(&mut self, n: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..n).map(|_| f(self)).collect()
    }
}

/// Types that can produce a random instance of themselves from a [`Gen`].
pub trait Arbitrary: Sized {
    /// Produces one random value.
    fn arbitrary(g: &mut Gen) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> Self {
                g.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> Self {
        g.flip()
    }
}

impl Arbitrary for f64 {
    /// Finite reals only — the action language rejects NaN comparisons,
    /// and property tests over values want total orderings.
    fn arbitrary(g: &mut Gen) -> Self {
        let mantissa = g.int_in(-1_000_000, 1_000_000) as f64;
        let scale = [0.001, 0.01, 0.5, 1.0, 4.0, 1024.0];
        mantissa * scale[g.index(scale.len())]
    }
}

impl Arbitrary for char {
    fn arbitrary(g: &mut Gen) -> Self {
        // Printable ASCII keeps generated text printer/parser-friendly.
        char::from(0x20 + g.below(0x5F) as u8)
    }
}

impl Arbitrary for String {
    fn arbitrary(g: &mut Gen) -> Self {
        let len = g.index(g.size().max(1));
        (0..len).map(|_| char::arbitrary(g)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(g: &mut Gen) -> Self {
        if g.flip() {
            Some(T::arbitrary(g))
        } else {
            None
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(g: &mut Gen) -> Self {
        let len = g.index(g.size().max(1));
        (0..len).map(|_| T::arbitrary(g)).collect()
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(g: &mut Gen) -> Self {
        (A::arbitrary(g), B::arbitrary(g))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(g: &mut Gen) -> Self {
        (A::arbitrary(g), B::arbitrary(g), C::arbitrary(g))
    }
}

/// Default number of cases per property (override with
/// `XTUML_PROP_CASES`). Kept modest so the full workspace test suite
/// stays inside the tier-1 time budget.
pub const DEFAULT_CASES: u64 = 64;

/// Default base seed of a sweep (override with `XTUML_PROP_BASE`).
pub const DEFAULT_BASE: u64 = 0xD1F7_5EED;

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{key}={raw}: not a u64 (decimal or 0x-hex)"),
    }
}

/// Runs `cases` cases of a property with an explicit base seed.
///
/// # Panics
///
/// Re-raises the property's panic after printing the failing case's seed
/// and the `XTUML_PROP_SEED=` line that reproduces it in isolation.
pub fn run_with(name: &str, base: u64, cases: u64, mut prop: impl FnMut(&mut Gen)) {
    if let Some(seed) = env_u64("XTUML_PROP_SEED") {
        let mut g = Gen::new(seed);
        prop(&mut g);
        return;
    }
    let base = env_u64("XTUML_PROP_BASE").unwrap_or(base);
    let cases = env_u64("XTUML_PROP_CASES").unwrap_or(cases);
    for case in 0..cases {
        let seed = derive_seed(base, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::new(seed);
            prop(&mut g);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "property `{name}` failed at case {case} (seed {seed:#018X})\n\
                 rerun just this case with: XTUML_PROP_SEED={seed:#X}"
            );
            resume_unwind(payload);
        }
    }
}

/// Runs [`DEFAULT_CASES`] cases of a property under the default sweep.
pub fn run(name: &str, prop: impl FnMut(&mut Gen)) {
    run_with(name, DEFAULT_BASE, DEFAULT_CASES, prop);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the reference C program.
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        // Determinism across instances.
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(a, r2.next_u64());
        assert_eq!(b, r2.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn int_in_covers_endpoints() {
        let mut g = Gen::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = g.int_in(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn derive_seed_differs_by_case() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_eq!(derive_seed(1, 5), derive_seed(1, 5));
    }

    #[test]
    fn arbitrary_f64_is_finite() {
        let mut g = Gen::new(3);
        for _ in 0..1000 {
            assert!(f64::arbitrary(&mut g).is_finite());
        }
    }

    #[test]
    fn runner_reports_failing_seed() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_with("always_fails", 7, 3, |_g| panic!("boom"));
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn runner_passes_trivial_property() {
        run_with("trivial", 7, 16, |g| {
            let v: u64 = g.arbitrary();
            let _ = v;
        });
    }

    #[test]
    fn ident_is_nonempty_lowercase() {
        let mut g = Gen::new(11);
        for _ in 0..200 {
            let s = g.ident(6);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }
}
