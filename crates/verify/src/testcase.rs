//! Formal test cases: platform-independent scripts of population setup
//! and timed stimuli.
//!
//! A test case names instances by *creation ordinal*, so the same script
//! drives the abstract interpreter and any compiled system — the paper's
//! "formal test cases executed against the model to verify that
//! requirements have been properly met", reused unchanged against every
//! implementation.

use xtuml_core::value::Value;

/// One timed stimulus.
#[derive(Debug, Clone, PartialEq)]
pub struct Stimulus {
    /// Delivery time (abstract ticks on the model; hardware cycles on a
    /// compiled system — only *order* is compared, so the unit mismatch
    /// is deliberate).
    pub time: u64,
    /// Target instance, as an index into the creation list.
    pub inst: usize,
    /// Event name.
    pub event: String,
    /// Event arguments.
    pub args: Vec<Value>,
}

/// An expected observable output (a *requirement* the test case checks).
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// Actor that must observe the signal.
    pub actor: String,
    /// Event (or bridge function) name.
    pub event: String,
    /// Expected arguments; `None` = any arguments accepted.
    pub args: Option<Vec<Value>>,
}

/// A platform-independent test case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TestCase {
    /// Test-case name (reports).
    pub name: String,
    /// Classes to instantiate, in order; the index is the instance handle.
    pub creates: Vec<String>,
    /// Links to establish: `(inst a, inst b, association name)`.
    pub relates: Vec<(usize, usize, String)>,
    /// Stimuli, any order (sorted by time at run time).
    pub stimuli: Vec<Stimulus>,
    /// Requirements: per-actor expected output sequences. When empty, the
    /// test case is a pure stimulus script.
    pub expectations: Vec<Expectation>,
}

impl TestCase {
    /// Starts an empty test case.
    pub fn new(name: &str) -> TestCase {
        TestCase {
            name: name.to_owned(),
            ..TestCase::default()
        }
    }

    /// Adds an instance of `class`; returns its handle.
    pub fn create(&mut self, class: &str) -> usize {
        self.creates.push(class.to_owned());
        self.creates.len() - 1
    }

    /// Links two instances across `assoc`.
    pub fn relate(&mut self, a: usize, b: usize, assoc: &str) -> &mut Self {
        self.relates.push((a, b, assoc.to_owned()));
        self
    }

    /// Schedules a stimulus.
    pub fn inject(&mut self, time: u64, inst: usize, event: &str, args: Vec<Value>) -> &mut Self {
        self.stimuli.push(Stimulus {
            time,
            inst,
            event: event.to_owned(),
            args,
        });
        self
    }

    /// Adds a requirement: the named actor must observe `event` with the
    /// given arguments, in the order expectations are added per actor.
    pub fn expect(&mut self, actor: &str, event: &str, args: Vec<Value>) -> &mut Self {
        self.expectations.push(Expectation {
            actor: actor.to_owned(),
            event: event.to_owned(),
            args: Some(args),
        });
        self
    }

    /// Adds a requirement that accepts any arguments.
    pub fn expect_any_args(&mut self, actor: &str, event: &str) -> &mut Self {
        self.expectations.push(Expectation {
            actor: actor.to_owned(),
            event: event.to_owned(),
            args: None,
        });
        self
    }

    /// Builds the canonical pipeline test case used by experiments E2-E4:
    /// `stages` chained `Stage<k>` instances fed `feeds` tokens.
    pub fn pipeline(stages: usize, feeds: usize) -> TestCase {
        let mut tc = TestCase::new(&format!("pipeline-{stages}x{feeds}"));
        for k in 0..stages {
            tc.create(&format!("Stage{k}"));
        }
        for k in 0..stages.saturating_sub(1) {
            tc.relate(k, k + 1, &format!("R{}", k + 1));
        }
        for i in 0..feeds {
            tc.inject(i as u64, 0, "Feed", vec![Value::Int(i as i64)]);
        }
        tc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_ordinals() {
        let mut tc = TestCase::new("t");
        let a = tc.create("A");
        let b = tc.create("B");
        assert_eq!((a, b), (0, 1));
        tc.relate(a, b, "R1").inject(5, b, "Go", vec![]);
        assert_eq!(tc.relates.len(), 1);
        assert_eq!(tc.stimuli[0].time, 5);
    }

    #[test]
    fn pipeline_shape() {
        let tc = TestCase::pipeline(4, 3);
        assert_eq!(tc.creates.len(), 4);
        assert_eq!(tc.relates.len(), 3);
        assert_eq!(tc.stimuli.len(), 3);
        assert!(tc.stimuli.iter().all(|s| s.inst == 0));
    }
}
