//! Experiment E1: interface drift under parallel hand-maintenance.
//!
//! The paper's motivation (§1): *"it is common for the hardware and
//! software teams to work a specification in parallel. Invariably, the
//! two components do not mesh properly."* This module makes that claim
//! measurable. An interface is a list of fields (name, width, offset). An
//! *evolution step* mutates the specification (add a field, widen a
//! field, remove a field). In the **manual flow**, the hardware and
//! software teams each apply the step to *their own copy* — and each,
//! independently, misses the memo with some probability. In the
//! **generated flow**, both copies are regenerated from the single
//! specification (paper §4), so they cannot diverge.
//!
//! The mismatch count between the two copies over time is the E1 metric.

use xtuml_exec::sched::SplitMix64;

/// One field of the evolving interface.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Field {
    id: u32,
    width: u32,
    offset: u32,
}

/// A team's copy of the interface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Copy_ {
    fields: Vec<Field>,
}

impl Copy_ {
    fn relayout(&mut self) {
        let mut off = 0;
        for f in &mut self.fields {
            f.offset = off;
            off += f.width;
        }
    }

    fn apply(&mut self, step: &Step) {
        match step {
            Step::Add { id, width } => {
                self.fields.push(Field {
                    id: *id,
                    width: *width,
                    offset: 0,
                });
            }
            Step::Widen { id, width } => {
                if let Some(f) = self.fields.iter_mut().find(|f| f.id == *id) {
                    f.width = *width;
                }
            }
            Step::Remove { id } => {
                self.fields.retain(|f| f.id != *id);
            }
        }
        self.relayout();
    }

    /// Fields that disagree with `other` (missing, extra, or differing in
    /// width/offset).
    fn mismatches(&self, other: &Copy_) -> usize {
        let mut count = 0;
        for f in &self.fields {
            match other.fields.iter().find(|g| g.id == f.id) {
                None => count += 1,
                Some(g) if g.width != f.width || g.offset != f.offset => count += 1,
                Some(_) => {}
            }
        }
        for g in &other.fields {
            if !self.fields.iter().any(|f| f.id == g.id) {
                count += 1;
            }
        }
        count
    }
}

/// A specification evolution step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    Add { id: u32, width: u32 },
    Widen { id: u32, width: u32 },
    Remove { id: u32 },
}

/// Configuration of a drift simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Number of specification evolution steps.
    pub steps: usize,
    /// Probability (0.0–1.0) that a team misses one step's memo.
    pub miss_probability: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            steps: 50,
            miss_probability: 0.05,
            seed: 1,
        }
    }
}

/// The outcome of one drift simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftReport {
    /// Mismatch count after each evolution step.
    pub mismatches_over_time: Vec<usize>,
}

impl DriftReport {
    /// Mismatch count at the end of the run.
    pub fn final_mismatches(&self) -> usize {
        self.mismatches_over_time.last().copied().unwrap_or(0)
    }

    /// First step at which the halves stopped meshing, if ever.
    pub fn first_divergence(&self) -> Option<usize> {
        self.mismatches_over_time.iter().position(|m| *m > 0)
    }
}

fn gen_steps(cfg: &DriftConfig, rng: &mut SplitMix64) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut next_id = 0u32;
    let mut live: Vec<u32> = Vec::new();
    for _ in 0..cfg.steps {
        let choice = if live.is_empty() { 0 } else { rng.below(3) };
        match choice {
            0 => {
                let id = next_id;
                next_id += 1;
                live.push(id);
                steps.push(Step::Add {
                    id,
                    width: 8 << rng.below(3),
                });
            }
            1 => {
                let id = live[rng.below(live.len())];
                steps.push(Step::Widen {
                    id,
                    width: 8 << rng.below(4),
                });
            }
            _ => {
                let idx = rng.below(live.len());
                let id = live.swap_remove(idx);
                steps.push(Step::Remove { id });
            }
        }
    }
    steps
}

fn missed(cfg: &DriftConfig, rng: &mut SplitMix64) -> bool {
    (rng.next_u64() as f64 / u64::MAX as f64) < cfg.miss_probability
}

/// Simulates the manual flow: two teams, two copies, missed memos.
pub fn simulate_manual_flow(cfg: &DriftConfig) -> DriftReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let steps = gen_steps(cfg, &mut rng);
    let mut hw = Copy_::default();
    let mut sw = Copy_::default();
    let mut series = Vec::with_capacity(steps.len());
    for step in &steps {
        if !missed(cfg, &mut rng) {
            hw.apply(step);
        }
        if !missed(cfg, &mut rng) {
            sw.apply(step);
        }
        series.push(hw.mismatches(&sw));
    }
    DriftReport {
        mismatches_over_time: series,
    }
}

/// Simulates the generated flow: both copies regenerated from the single
/// specification after every step — structurally incapable of diverging.
pub fn simulate_generated_flow(cfg: &DriftConfig) -> DriftReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let steps = gen_steps(cfg, &mut rng);
    let mut spec = Copy_::default();
    let mut series = Vec::with_capacity(steps.len());
    for step in &steps {
        spec.apply(step);
        // Both halves are projections of `spec`; regenerate and compare.
        let hw = spec.clone();
        let sw = spec.clone();
        series.push(hw.mismatches(&sw));
    }
    DriftReport {
        mismatches_over_time: series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_flow_never_diverges() {
        let cfg = DriftConfig {
            steps: 200,
            miss_probability: 0.3,
            seed: 7,
        };
        let r = simulate_generated_flow(&cfg);
        assert_eq!(r.final_mismatches(), 0);
        assert_eq!(r.first_divergence(), None);
        assert_eq!(r.mismatches_over_time.len(), 200);
    }

    #[test]
    fn manual_flow_diverges_with_misses() {
        let cfg = DriftConfig {
            steps: 200,
            miss_probability: 0.1,
            seed: 7,
        };
        let r = simulate_manual_flow(&cfg);
        assert!(r.first_divergence().is_some());
        assert!(r.final_mismatches() > 0);
    }

    #[test]
    fn manual_flow_with_perfect_teams_stays_in_sync() {
        let cfg = DriftConfig {
            steps: 100,
            miss_probability: 0.0,
            seed: 3,
        };
        let r = simulate_manual_flow(&cfg);
        assert_eq!(r.final_mismatches(), 0);
    }

    #[test]
    fn drift_grows_with_miss_probability() {
        let total = |p: f64| -> usize {
            // Average over seeds to smooth the comparison.
            (0..8)
                .map(|seed| {
                    simulate_manual_flow(&DriftConfig {
                        steps: 120,
                        miss_probability: p,
                        seed,
                    })
                    .final_mismatches()
                })
                .sum()
        };
        assert!(total(0.25) > total(0.02));
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let cfg = DriftConfig::default();
        assert_eq!(simulate_manual_flow(&cfg), simulate_manual_flow(&cfg));
    }
}
