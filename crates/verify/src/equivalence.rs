//! Observable-trace equivalence.
//!
//! Two implementations of one model are behaviourally equivalent when
//! every external actor observes the **same ordered sequence of
//! signals**. Global interleaving across different actors is platform
//! freedom (the model compiler "may do any manner it chooses so long as
//! the defined behavior is preserved"), so the comparison is per actor.

use std::collections::BTreeMap;
use xtuml_exec::ObservableEvent;

/// One divergence between two traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The actor whose view diverged.
    pub actor: String,
    /// Index into that actor's sequence.
    pub index: usize,
    /// What the reference (model) produced, if anything.
    pub expected: Option<ObservableEvent>,
    /// What the implementation produced, if anything.
    pub actual: Option<ObservableEvent>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "actor {}[{}]: expected {}, got {}",
            self.actor,
            self.index,
            self.expected
                .as_ref()
                .map_or("<nothing>".to_owned(), ToString::to_string),
            self.actual
                .as_ref()
                .map_or("<nothing>".to_owned(), ToString::to_string),
        )
    }
}

/// The result of an equivalence check.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EquivReport {
    /// All divergences found (empty = equivalent).
    pub divergences: Vec<Divergence>,
    /// Events compared (effort metric).
    pub compared: usize,
}

impl EquivReport {
    /// True when the traces are per-actor equivalent.
    pub fn is_equivalent(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn by_actor(trace: &[ObservableEvent]) -> BTreeMap<&str, Vec<&ObservableEvent>> {
    let mut map: BTreeMap<&str, Vec<&ObservableEvent>> = BTreeMap::new();
    for e in trace {
        map.entry(e.actor.as_str()).or_default().push(e);
    }
    map
}

/// Compares two observable traces per actor.
pub fn check_equivalence(expected: &[ObservableEvent], actual: &[ObservableEvent]) -> EquivReport {
    let exp = by_actor(expected);
    let act = by_actor(actual);
    let mut report = EquivReport::default();
    let actors: std::collections::BTreeSet<&str> = exp.keys().chain(act.keys()).copied().collect();
    for actor in actors {
        let empty = Vec::new();
        let e_seq = exp.get(actor).unwrap_or(&empty);
        let a_seq = act.get(actor).unwrap_or(&empty);
        let n = e_seq.len().max(a_seq.len());
        for i in 0..n {
            report.compared += 1;
            let e = e_seq.get(i).copied();
            let a = a_seq.get(i).copied();
            let same = match (e, a) {
                (Some(x), Some(y)) => x.event == y.event && x.args == y.args,
                _ => false,
            };
            if !same {
                report.divergences.push(Divergence {
                    actor: actor.to_owned(),
                    index: i,
                    expected: e.cloned(),
                    actual: a.cloned(),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::value::Value;

    fn ev(actor: &str, event: &str, v: i64) -> ObservableEvent {
        ObservableEvent {
            actor: actor.to_owned(),
            event: event.to_owned(),
            args: vec![Value::Int(v)],
        }
    }

    #[test]
    fn identical_traces_are_equivalent() {
        let t = vec![ev("A", "x", 1), ev("B", "y", 2), ev("A", "x", 3)];
        let r = check_equivalence(&t, &t);
        assert!(r.is_equivalent());
        assert_eq!(r.compared, 3);
    }

    #[test]
    fn cross_actor_interleaving_is_free() {
        let a = vec![ev("A", "x", 1), ev("B", "y", 2)];
        let b = vec![ev("B", "y", 2), ev("A", "x", 1)];
        assert!(check_equivalence(&a, &b).is_equivalent());
    }

    #[test]
    fn per_actor_reorder_is_a_divergence() {
        let a = vec![ev("A", "x", 1), ev("A", "x", 2)];
        let b = vec![ev("A", "x", 2), ev("A", "x", 1)];
        let r = check_equivalence(&a, &b);
        assert!(!r.is_equivalent());
        assert_eq!(r.divergences.len(), 2);
    }

    #[test]
    fn missing_and_extra_events_reported() {
        let a = vec![ev("A", "x", 1), ev("A", "x", 2)];
        let b = vec![ev("A", "x", 1)];
        let r = check_equivalence(&a, &b);
        assert_eq!(r.divergences.len(), 1);
        assert!(r.divergences[0].actual.is_none());
        let r = check_equivalence(&b, &a);
        assert!(r.divergences[0].expected.is_none());
        assert!(r.divergences[0].to_string().contains("<nothing>"));
    }

    #[test]
    fn different_args_diverge() {
        let a = vec![ev("A", "x", 1)];
        let b = vec![ev("A", "x", 9)];
        assert!(!check_equivalence(&a, &b).is_equivalent());
    }

    #[test]
    fn unknown_actor_on_either_side_diverges() {
        let a = vec![ev("A", "x", 1)];
        let b = vec![ev("A", "x", 1), ev("C", "z", 0)];
        assert!(!check_equivalence(&a, &b).is_equivalent());
    }
}
