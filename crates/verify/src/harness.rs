//! The verification harness: one test case, many implementations.

use crate::equivalence::{check_equivalence, EquivReport};
use crate::testcase::TestCase;
use xtuml_core::marks::MarkSet;
use xtuml_core::model::Domain;
use xtuml_exec::{ObservableEvent, SchedPolicy, Simulation};
use xtuml_mda::{CompiledDesign, MdaError, ModelCompiler};

/// Executes a test case on the abstract model interpreter; returns the
/// observable trace.
///
/// # Errors
///
/// Propagates setup and execution errors from the interpreter.
pub fn run_model(
    domain: &Domain,
    policy: SchedPolicy,
    tc: &TestCase,
) -> Result<Vec<ObservableEvent>, xtuml_core::CoreError> {
    let mut sim = Simulation::with_policy(domain, policy);
    let mut insts = Vec::new();
    for class in &tc.creates {
        insts.push(sim.create(class)?);
    }
    for (a, b, assoc) in &tc.relates {
        sim.relate(insts[*a], insts[*b], assoc)?;
    }
    let mut stimuli = tc.stimuli.clone();
    stimuli.sort_by_key(|s| s.time);
    for s in &stimuli {
        sim.inject(s.time, insts[s.inst], &s.event, s.args.clone())?;
    }
    sim.run_to_quiescence()?;
    Ok(sim.trace().observable(domain))
}

/// Executes a test case on a compiled (partitioned, co-simulated)
/// implementation; returns the merged observable trace.
///
/// # Errors
///
/// Propagates setup and co-simulation errors.
pub fn run_compiled(
    design: &CompiledDesign<'_>,
    tc: &TestCase,
) -> Result<Vec<ObservableEvent>, MdaError> {
    let mut sys = design.instantiate();
    let mut insts = Vec::new();
    for class in &tc.creates {
        insts.push(sys.create(class)?);
    }
    for (a, b, assoc) in &tc.relates {
        sys.relate(insts[*a], insts[*b], assoc)?;
    }
    let mut stimuli = tc.stimuli.clone();
    stimuli.sort_by_key(|s| s.time);
    for s in &stimuli {
        sys.inject(s.time, insts[s.inst], &s.event, s.args.clone())?;
    }
    sys.run_to_quiescence()?;
    Ok(sys.observables())
}

/// Checks a trace against a test case's expectations: per actor, the
/// observed sequence must equal the expected sequence (argument-wildcard
/// expectations match any payload). Returns the unmet expectations /
/// unexpected observations as divergences.
pub fn check_expectations(
    tc: &TestCase,
    observed: &[ObservableEvent],
) -> crate::equivalence::EquivReport {
    // Build the expected trace, reusing the per-actor comparator; wildcard
    // arguments are patched to the observed payload when the names match.
    let mut expected: Vec<ObservableEvent> = Vec::new();
    let mut counters: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    let per_actor: std::collections::BTreeMap<&str, Vec<&ObservableEvent>> = {
        let mut m: std::collections::BTreeMap<&str, Vec<&ObservableEvent>> = Default::default();
        for e in observed {
            m.entry(e.actor.as_str()).or_default().push(e);
        }
        m
    };
    for exp in &tc.expectations {
        let idx = counters.entry(exp.actor.as_str()).or_insert(0);
        let args = match &exp.args {
            Some(a) => a.clone(),
            None => per_actor
                .get(exp.actor.as_str())
                .and_then(|v| v.get(*idx))
                .filter(|o| o.event == exp.event)
                .map(|o| o.args.clone())
                .unwrap_or_default(),
        };
        *idx += 1;
        expected.push(ObservableEvent {
            actor: exp.actor.clone(),
            event: exp.event.clone(),
            args,
        });
    }
    check_equivalence(&expected, observed)
}

/// Checks interleaving-independence of a model: runs the test case under
/// `seeds` different scheduling seeds and reports whether every run's
/// observable trace is per-actor equivalent to seed 0's.
///
/// Confluence is a *model* property, not a toolchain guarantee — racy
/// models legitimately produce different observable orders. Verification
/// against a compiled implementation is only meaningful for test cases
/// whose observables this function reports as seed-independent.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn explore_seeds(
    domain: &Domain,
    tc: &TestCase,
    seeds: u64,
) -> Result<bool, xtuml_core::CoreError> {
    explore_seeds_jobs(domain, tc, seeds, 1)
}

/// [`explore_seeds`] with the sweep distributed over `jobs` worker
/// threads. Each seeded run is independent, so the sweep parallelises
/// perfectly; the verdict (and any error, taken from the lowest failing
/// seed) is identical to the serial sweep.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn explore_seeds_jobs(
    domain: &Domain,
    tc: &TestCase,
    seeds: u64,
    jobs: usize,
) -> Result<bool, xtuml_core::CoreError> {
    let base = run_model(domain, SchedPolicy::seeded(0), tc)?;
    let rest: Vec<u64> = (1..seeds).collect();
    let pool = xtuml_pool::Pool::new(jobs);
    let verdicts = pool.map(&rest, |_, &seed| {
        let t = run_model(domain, SchedPolicy::seeded(seed), tc)?;
        Ok(check_equivalence(&base, &t).is_equivalent())
    });
    for verdict in verdicts {
        if !verdict? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The complete §4 check: compile `domain` under `marks`, run the test
/// case on the abstract model and on the partitioned implementation, and
/// compare the observable traces.
///
/// # Errors
///
/// Propagates compile and run errors; an *inequivalent* trace is **not**
/// an error — it is reported in the returned [`EquivReport`].
pub fn verify_partition(
    domain: &Domain,
    marks: &MarkSet,
    tc: &TestCase,
) -> Result<EquivReport, MdaError> {
    let design = ModelCompiler::new().compile(domain, marks)?;
    let model_trace = run_model(domain, SchedPolicy::default(), tc)?;
    let impl_trace = run_compiled(&design, tc)?;
    Ok(check_equivalence(&model_trace, &impl_trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::pipeline_domain;

    #[test]
    fn pipeline_model_run_produces_outputs() {
        let d = pipeline_domain(3).unwrap();
        let tc = TestCase::pipeline(3, 4);
        let obs = run_model(&d, SchedPolicy::default(), &tc).unwrap();
        assert_eq!(obs.len(), 4);
        assert!(obs.iter().all(|o| o.actor == "SINK"));
    }

    #[test]
    fn all_software_partition_is_equivalent() {
        let d = pipeline_domain(3).unwrap();
        let tc = TestCase::pipeline(3, 4);
        let report = verify_partition(&d, &MarkSet::new(), &tc).unwrap();
        assert!(report.is_equivalent(), "{:?}", report.divergences);
    }

    #[test]
    fn split_partition_is_equivalent() {
        let d = pipeline_domain(3).unwrap();
        let tc = TestCase::pipeline(3, 4);
        let mut marks = MarkSet::new();
        marks.mark_hardware("Stage1");
        let report = verify_partition(&d, &marks, &tc).unwrap();
        assert!(report.is_equivalent(), "{:?}", report.divergences);
    }

    #[test]
    fn pipeline_is_confluent_racy_collector_is_not() {
        let d = pipeline_domain(3).unwrap();
        let tc = TestCase::pipeline(3, 4);
        assert!(explore_seeds(&d, &tc, 10).unwrap());

        // A racy model: two senders burst at one receiver that reports a
        // running total — the totals' order depends on the interleaving.
        use xtuml_core::builder::DomainBuilder;
        use xtuml_core::value::DataType;
        let mut b = DomainBuilder::new("racy");
        b.actor("OUT").event("tot", &[("v", DataType::Int)]);
        b.class("Acc")
            .attr("n", DataType::Int)
            .event("Add", &[("v", DataType::Int)])
            .state("S", "")
            .state("T", "self.n = self.n + rcvd.v;\ngen tot(self.n) to OUT;")
            .initial("S")
            .transition("S", "Add", "T")
            .transition("T", "Add", "T");
        b.class("Src")
            .event("Go", &[("v", DataType::Int)])
            .state("I", "")
            .state("B", "select any a from Acc;\ngen Add(rcvd.v) to a;")
            .initial("I")
            .transition("I", "Go", "B")
            .transition("B", "Go", "B");
        let racy = b.build().unwrap();
        let mut tc = TestCase::new("race");
        tc.create("Acc");
        let s1 = tc.create("Src");
        let s2 = tc.create("Src");
        tc.inject(0, s1, "Go", vec![xtuml_core::Value::Int(1)]);
        tc.inject(0, s2, "Go", vec![xtuml_core::Value::Int(2)]);
        assert!(!explore_seeds(&racy, &tc, 32).unwrap());

        // The parallel sweep reaches the same verdicts as the serial one.
        let confluent = pipeline_domain(3).unwrap();
        let ptc = TestCase::pipeline(3, 4);
        for jobs in [2, 4] {
            assert!(explore_seeds_jobs(&confluent, &ptc, 10, jobs).unwrap());
            assert!(!explore_seeds_jobs(&racy, &tc, 32, jobs).unwrap());
        }
    }

    #[test]
    fn every_partition_of_a_three_stage_pipeline_is_equivalent() {
        // The paper's punchline: all 2^3 mark placements preserve
        // behaviour.
        let d = pipeline_domain(3).unwrap();
        let tc = TestCase::pipeline(3, 3);
        for mask in 0..8u32 {
            let mut marks = MarkSet::new();
            for k in 0..3 {
                if mask & (1 << k) != 0 {
                    marks.mark_hardware(&format!("Stage{k}"));
                }
            }
            let report = verify_partition(&d, &marks, &tc).unwrap();
            assert!(
                report.is_equivalent(),
                "partition mask {mask:03b} diverged: {:?}",
                report.divergences
            );
        }
    }
}
