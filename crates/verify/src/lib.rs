//! # xtuml-verify — formal test cases and behavioural equivalence
//!
//! The paper's two testable promises:
//!
//! * §2 — *"formal test cases can be executed against the model"*:
//!   [`TestCase`] scripts a population and stimuli, [`run_model`] executes
//!   it on the abstract interpreter and yields the observable trace;
//! * §4 — *"the defined behavior is preserved"* by any mapping:
//!   [`run_compiled`] executes the same test case on a partitioned,
//!   co-simulated implementation, and [`check_equivalence`] compares the
//!   observable traces **per actor** (each external actor must see the
//!   same ordered sequence of signals; relative interleaving across
//!   actors is platform freedom).
//!
//! [`verify_partition`] wires the whole E2 flow: compile under marks, run
//! both, compare. [`drift`] implements the E1 experiment: how fast
//! hand-maintained dual interfaces diverge vs generated ones.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod drift;
pub mod equivalence;
pub mod harness;
pub mod testcase;

pub use equivalence::{check_equivalence, Divergence, EquivReport};
pub use harness::{
    check_expectations, explore_seeds, explore_seeds_jobs, run_compiled, run_model,
    verify_partition,
};
pub use testcase::{Expectation, TestCase};
