//! A model compiler that fails to preserve the event rules is *caught*
//! by the verification layer — the flip side of the paper's "so long as
//! the defined behavior is preserved" licence.

use xtuml_core::builder::pipeline_domain;
use xtuml_core::marks::MarkSet;
use xtuml_exec::SchedPolicy;
use xtuml_mda::{CompilerOptions, ModelCompiler};
use xtuml_verify::{check_equivalence, run_compiled, run_model, TestCase};

/// A partition where ordered tokens cross the bridge: Stage0 in hardware
/// feeds Stage1 in software, so hw→sw bridge delivery order is load-
/// bearing for the SINK sequence.
fn setup() -> (xtuml_core::Domain, MarkSet, TestCase) {
    let domain = pipeline_domain(2).unwrap();
    let mut marks = MarkSet::new();
    marks.mark_hardware("Stage0");
    let tc = TestCase::pipeline(2, 6);
    (domain, marks, tc)
}

#[test]
fn stock_mapping_preserves_behaviour() {
    let (domain, marks, tc) = setup();
    let model = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    let design = ModelCompiler::new().compile(&domain, &marks).unwrap();
    let impl_trace = run_compiled(&design, &tc).unwrap();
    assert!(check_equivalence(&model, &impl_trace).is_equivalent());
}

#[test]
fn scrambling_mapping_is_detected_as_inequivalent() {
    let (domain, marks, tc) = setup();
    let model = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    let broken = ModelCompiler::with_options(CompilerOptions {
        scramble_bridge_rx: true,
    });
    let design = broken.compile(&domain, &marks).unwrap();
    let impl_trace = run_compiled(&design, &tc).unwrap();
    let report = check_equivalence(&model, &impl_trace);
    assert!(
        !report.is_equivalent(),
        "the scrambled mapping must corrupt the SINK sequence"
    );
    // The generated *text* is unaffected — the bug is in the runtime
    // mapping, which is exactly why executable verification matters.
    let stock = ModelCompiler::new().compile(&domain, &marks).unwrap();
    assert_eq!(stock.c_code, design.c_code);
}

#[test]
fn scramble_option_is_off_by_default() {
    assert_eq!(
        CompilerOptions::default(),
        CompilerOptions {
            scramble_bridge_rx: false
        }
    );
}
