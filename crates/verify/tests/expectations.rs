//! Tests for formal test-case expectations: "formal test cases can be
//! executed against the model to verify that requirements have been
//! properly met" (paper §2) — and re-executed unchanged against every
//! partitioned implementation.

use xtuml_core::builder::pipeline_domain;
use xtuml_core::marks::MarkSet;
use xtuml_core::value::Value;
use xtuml_exec::SchedPolicy;
use xtuml_verify::{check_expectations, run_compiled, run_model, TestCase};

fn expected_pipeline_case() -> TestCase {
    let mut tc = TestCase::pipeline(3, 3);
    // Requirement: each stage except the last increments the token, so
    // fed values 0,1,2 emerge as 2,3,4 — in order.
    tc.expect("SINK", "out", vec![Value::Int(2)]);
    tc.expect("SINK", "out", vec![Value::Int(3)]);
    tc.expect("SINK", "out", vec![Value::Int(4)]);
    tc
}

#[test]
fn model_meets_its_requirements() {
    let domain = pipeline_domain(3).unwrap();
    let tc = expected_pipeline_case();
    let obs = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    let report = check_expectations(&tc, &obs);
    assert!(report.is_equivalent(), "{:?}", report.divergences);
}

#[test]
fn same_requirements_hold_on_a_partitioned_implementation() {
    let domain = pipeline_domain(3).unwrap();
    let tc = expected_pipeline_case();
    let mut marks = MarkSet::new();
    marks.mark_hardware("Stage0");
    marks.mark_hardware("Stage2");
    let design = xtuml_mda::ModelCompiler::new()
        .compile(&domain, &marks)
        .unwrap();
    let obs = run_compiled(&design, &tc).unwrap();
    let report = check_expectations(&tc, &obs);
    assert!(report.is_equivalent(), "{:?}", report.divergences);
}

#[test]
fn unmet_requirement_is_reported() {
    let domain = pipeline_domain(2).unwrap();
    let mut tc = TestCase::pipeline(2, 1);
    tc.expect("SINK", "out", vec![Value::Int(99)]); // wrong payload
    tc.expect("SINK", "out", vec![Value::Int(2)]); // extra expectation
    let obs = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    let report = check_expectations(&tc, &obs);
    assert_eq!(report.divergences.len(), 2);
}

#[test]
fn wildcard_arguments_accept_any_payload() {
    let domain = pipeline_domain(2).unwrap();
    let mut tc = TestCase::pipeline(2, 2);
    tc.expect_any_args("SINK", "out");
    tc.expect_any_args("SINK", "out");
    let obs = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    assert!(check_expectations(&tc, &obs).is_equivalent());
    // ...but the event name must still match.
    let mut tc2 = TestCase::pipeline(2, 1);
    tc2.expect_any_args("SINK", "bogus");
    let obs = run_model(&domain, SchedPolicy::default(), &tc2).unwrap();
    assert!(!check_expectations(&tc2, &obs).is_equivalent());
}

#[test]
fn unexpected_extra_output_is_a_divergence() {
    let domain = pipeline_domain(2).unwrap();
    let mut tc = TestCase::pipeline(2, 2);
    tc.expect("SINK", "out", vec![Value::Int(1)]); // second output unexpected
    let obs = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    let report = check_expectations(&tc, &obs);
    assert_eq!(report.divergences.len(), 1);
    assert!(report.divergences[0].expected.is_none());
}
