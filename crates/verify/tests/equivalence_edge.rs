//! Edge cases for [`xtuml_verify::check_equivalence`].
//!
//! The per-actor comparison is the conformance fuzzer's primary oracle,
//! so its corners are pinned here: empty traces, actors that exist on
//! only one side, the exact scope of cross-actor interleaving freedom,
//! and the index arithmetic of in-actor reorders.

use xtuml_core::value::Value;
use xtuml_exec::ObservableEvent;
use xtuml_verify::check_equivalence;

fn ev(actor: &str, event: &str, args: &[i64]) -> ObservableEvent {
    ObservableEvent {
        actor: actor.to_owned(),
        event: event.to_owned(),
        args: args.iter().copied().map(Value::Int).collect(),
    }
}

#[test]
fn two_empty_traces_are_equivalent() {
    let r = check_equivalence(&[], &[]);
    assert!(r.is_equivalent());
    assert_eq!(r.compared, 0);
    assert!(r.divergences.is_empty());
}

#[test]
fn empty_versus_nonempty_reports_every_missing_event() {
    let t = vec![ev("A", "x", &[1]), ev("A", "x", &[2]), ev("B", "y", &[])];
    let r = check_equivalence(&t, &[]);
    assert!(!r.is_equivalent());
    assert_eq!(r.divergences.len(), 3);
    assert!(r.divergences.iter().all(|d| d.actual.is_none()));
    // And symmetrically: extra events on the actual side all surface.
    let r = check_equivalence(&[], &t);
    assert_eq!(r.divergences.len(), 3);
    assert!(r.divergences.iter().all(|d| d.expected.is_none()));
}

#[test]
fn one_sided_actor_diverges_at_index_zero() {
    // Both sides agree on actor A; actor B exists only in the expected
    // trace. The divergence must name B and start at its first event.
    let exp = vec![ev("A", "x", &[1]), ev("B", "y", &[7])];
    let act = vec![ev("A", "x", &[1])];
    let r = check_equivalence(&exp, &act);
    assert_eq!(r.divergences.len(), 1);
    let d = &r.divergences[0];
    assert_eq!(d.actor, "B");
    assert_eq!(d.index, 0);
    assert_eq!(d.expected.as_ref().unwrap().event, "y");
    assert!(d.actual.is_none());
}

#[test]
fn interleaving_freedom_spans_many_actors() {
    // Three actors, fully shuffled global order, identical per-actor
    // sequences: this is exactly the freedom the model compiler is
    // granted, so no divergence.
    let exp = vec![
        ev("A", "x", &[1]),
        ev("B", "y", &[1]),
        ev("C", "z", &[1]),
        ev("A", "x", &[2]),
        ev("B", "y", &[2]),
        ev("C", "z", &[2]),
    ];
    let act = vec![
        ev("C", "z", &[1]),
        ev("C", "z", &[2]),
        ev("B", "y", &[1]),
        ev("A", "x", &[1]),
        ev("B", "y", &[2]),
        ev("A", "x", &[2]),
    ];
    let r = check_equivalence(&exp, &act);
    assert!(r.is_equivalent(), "{:?}", r.divergences);
    assert_eq!(r.compared, 6);
}

#[test]
fn interleaving_freedom_does_not_leak_across_actors() {
    // Swapping two events *between* actors (A gets B's payload and vice
    // versa) is not interleaving freedom — both actors must diverge.
    let exp = vec![ev("A", "x", &[1]), ev("B", "x", &[2])];
    let act = vec![ev("A", "x", &[2]), ev("B", "x", &[1])];
    let r = check_equivalence(&exp, &act);
    let mut actors: Vec<&str> = r.divergences.iter().map(|d| d.actor.as_str()).collect();
    actors.sort_unstable();
    assert_eq!(actors, ["A", "B"]);
}

/// Regression test: a deliberate reorder of one adjacent pair inside a
/// single actor's sequence is reported at exactly the indices of that
/// pair — earlier and later events must not produce noise divergences.
#[test]
fn single_in_actor_reorder_is_reported_at_the_right_index() {
    let exp = vec![
        ev("A", "x", &[0]),
        ev("A", "x", &[1]),
        ev("A", "x", &[2]),
        ev("A", "x", &[3]),
        ev("B", "y", &[9]),
    ];
    // Same trace with A[1] and A[2] swapped.
    let act = vec![
        ev("A", "x", &[0]),
        ev("A", "x", &[2]),
        ev("A", "x", &[1]),
        ev("A", "x", &[3]),
        ev("B", "y", &[9]),
    ];
    let r = check_equivalence(&exp, &act);
    assert!(!r.is_equivalent());
    assert_eq!(r.divergences.len(), 2, "{:?}", r.divergences);
    assert_eq!(r.divergences[0].actor, "A");
    assert_eq!(r.divergences[0].index, 1);
    assert_eq!(
        r.divergences[0].expected.as_ref().unwrap().args[0],
        Value::Int(1)
    );
    assert_eq!(
        r.divergences[0].actual.as_ref().unwrap().args[0],
        Value::Int(2)
    );
    assert_eq!(r.divergences[1].index, 2);
    // The untouched prefix, suffix and actor B contribute no divergences.
    assert_eq!(r.compared, 5);
}

#[test]
fn event_name_mismatch_with_equal_args_diverges() {
    let exp = vec![ev("A", "ping", &[1])];
    let act = vec![ev("A", "pong", &[1])];
    let r = check_equivalence(&exp, &act);
    assert_eq!(r.divergences.len(), 1);
    assert_eq!(
        r.divergences[0].to_string(),
        "actor A[0]: expected A.ping(1), got A.pong(1)"
    );
}
