//! Property tests for the RTL substrate: vector arithmetic against a u64
//! reference model, logic-algebra laws, FIFO behaviour against a
//! `VecDeque` reference, and a counter in the kernel against closed-form
//! arithmetic.

use proptest::prelude::*;
use std::collections::VecDeque;
use xtuml_rtl::{Logic, LogicVector, Process, RtlKernel, SignalCtx, SignalId, SyncFifo};

fn logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::L0),
        Just(Logic::L1),
        Just(Logic::X),
        Just(Logic::Z)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Defined-vector arithmetic agrees with masked u64 arithmetic.
    #[test]
    fn prop_vector_add_sub_matches_u64(a in any::<u64>(), b in any::<u64>(), w in 1usize..=64) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let va = LogicVector::from_u64(a & mask, w);
        let vb = LogicVector::from_u64(b & mask, w);
        prop_assert_eq!(va.add(&vb).to_u64(), Some((a & mask).wrapping_add(b & mask) & mask));
        prop_assert_eq!(va.sub(&vb).to_u64(), Some((a & mask).wrapping_sub(b & mask) & mask));
    }

    /// Bitwise ops agree with u64 bitwise ops.
    #[test]
    fn prop_vector_bitwise_matches_u64(a in any::<u64>(), b in any::<u64>(), w in 1usize..=64) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let va = LogicVector::from_u64(a & mask, w);
        let vb = LogicVector::from_u64(b & mask, w);
        prop_assert_eq!(va.and(&vb).to_u64(), Some(a & b & mask));
        prop_assert_eq!(va.or(&vb).to_u64(), Some((a | b) & mask));
        prop_assert_eq!(va.xor(&vb).to_u64(), Some((a ^ b) & mask));
        prop_assert_eq!(va.not().to_u64(), Some(!a & mask));
    }

    /// Any X bit poisons arithmetic to an undefined result of the same
    /// width.
    #[test]
    fn prop_x_poisons_arithmetic(a in any::<u64>(), bit in 0usize..16, w in 16usize..=32) {
        let mut va = LogicVector::from_u64(a, w);
        va.set(bit, Logic::X);
        let vb = LogicVector::from_u64(1, w);
        let r = va.add(&vb);
        prop_assert_eq!(r.width(), w);
        prop_assert_eq!(r.to_u64(), None);
    }

    /// Logic AND/OR are commutative, associative and idempotent; De
    /// Morgan holds on defined values.
    #[test]
    fn prop_logic_algebra(a in logic(), b in logic(), c in logic()) {
        prop_assert_eq!(a & b, b & a);
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!((a & b) & c, a & (b & c));
        prop_assert_eq!((a | b) | c, a | (b | c));
        prop_assert_eq!(a & a, if a == Logic::Z { Logic::X } else { a });
        if a.is_defined() && b.is_defined() {
            prop_assert_eq!(!(a & b), !a | !b);
            prop_assert_eq!(!(a | b), !a & !b);
        }
    }

    /// The FIFO agrees with a bounded VecDeque reference model under an
    /// arbitrary push/pop sequence.
    #[test]
    fn prop_fifo_matches_reference(
        depth in 1usize..8,
        ops in proptest::collection::vec(prop_oneof![(0u32..100).prop_map(Some), Just(None)], 0..64),
    ) {
        let mut fifo = SyncFifo::new(depth);
        let mut reference: VecDeque<u32> = VecDeque::new();
        let mut overflows = 0u64;
        for op in ops {
            match op {
                Some(v) => {
                    let accepted = fifo.push(v);
                    if reference.len() < depth {
                        prop_assert!(accepted);
                        reference.push_back(v);
                    } else {
                        prop_assert!(!accepted);
                        overflows += 1;
                    }
                }
                None => {
                    prop_assert_eq!(fifo.pop(), reference.pop_front());
                }
            }
            prop_assert_eq!(fifo.len(), reference.len());
            prop_assert_eq!(fifo.is_empty(), reference.is_empty());
            prop_assert_eq!(fifo.is_full(), reference.len() == depth);
            prop_assert_eq!(fifo.front(), reference.front());
        }
        prop_assert_eq!(fifo.overflows(), overflows);
    }

    /// A clocked counter in the kernel counts exactly the cycles run,
    /// regardless of how the run is split into segments.
    #[test]
    fn prop_kernel_counter_counts_cycles(segments in proptest::collection::vec(0u64..20, 1..6)) {
        struct Counter { clk: SignalId, q: SignalId }
        impl Process for Counter {
            fn sensitivity(&self) -> Vec<SignalId> { vec![self.clk] }
            fn eval(&mut self, ctx: &mut SignalCtx<'_>) {
                if ctx.rising_edge(self.clk) {
                    let q = ctx.read(self.q).to_u64().unwrap_or(0);
                    ctx.set(self.q, LogicVector::from_u64(q.wrapping_add(1), 32));
                }
            }
        }
        let mut k = RtlKernel::new();
        let clk = k.clock();
        let q = k.add_signal("q", LogicVector::zeros(32));
        k.add_process(Counter { clk, q });
        let mut total = 0u64;
        for n in segments {
            k.run_cycles(n).unwrap();
            total += n;
            prop_assert_eq!(k.peek(q).to_u64(), Some(total & 0xFFFF_FFFF));
            prop_assert_eq!(k.cycle(), total);
        }
    }

    /// Resolution forms a commutative monoid with identity Z.
    #[test]
    fn prop_resolution_monoid(a in logic(), b in logic()) {
        prop_assert_eq!(a.resolve(Logic::Z), a);
        prop_assert_eq!(Logic::Z.resolve(a), a);
        prop_assert_eq!(a.resolve(b), b.resolve(a));
    }
}
