//! Property tests for the RTL substrate: vector arithmetic against a u64
//! reference model, logic-algebra laws, FIFO behaviour against a
//! `VecDeque` reference, and a counter in the kernel against closed-form
//! arithmetic.
//!
//! Runs offline on the in-repo `xtuml-prop` harness; reproduce a failure
//! with the `XTUML_PROP_SEED` value printed on panic.

use std::collections::VecDeque;
use xtuml_prop::Gen;
use xtuml_rtl::{Logic, LogicVector, Process, RtlKernel, SignalCtx, SignalId, SyncFifo};

const LOGICS: [Logic; 4] = [Logic::L0, Logic::L1, Logic::X, Logic::Z];

fn logic(g: &mut Gen) -> Logic {
    *g.choose(&LOGICS)
}

/// Defined-vector arithmetic agrees with masked u64 arithmetic.
#[test]
fn prop_vector_add_sub_matches_u64() {
    xtuml_prop::run("vector_add_sub_matches_u64", |g| {
        let (a, b) = (g.next_u64(), g.next_u64());
        let w = 1 + g.index(64);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let va = LogicVector::from_u64(a & mask, w);
        let vb = LogicVector::from_u64(b & mask, w);
        assert_eq!(
            va.add(&vb).to_u64(),
            Some((a & mask).wrapping_add(b & mask) & mask)
        );
        assert_eq!(
            va.sub(&vb).to_u64(),
            Some((a & mask).wrapping_sub(b & mask) & mask)
        );
    });
}

/// Bitwise ops agree with u64 bitwise ops.
#[test]
fn prop_vector_bitwise_matches_u64() {
    xtuml_prop::run("vector_bitwise_matches_u64", |g| {
        let (a, b) = (g.next_u64(), g.next_u64());
        let w = 1 + g.index(64);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let va = LogicVector::from_u64(a & mask, w);
        let vb = LogicVector::from_u64(b & mask, w);
        assert_eq!(va.and(&vb).to_u64(), Some(a & b & mask));
        assert_eq!(va.or(&vb).to_u64(), Some((a | b) & mask));
        assert_eq!(va.xor(&vb).to_u64(), Some((a ^ b) & mask));
        assert_eq!(va.not().to_u64(), Some(!a & mask));
    });
}

/// Any X bit poisons arithmetic to an undefined result of the same width.
#[test]
fn prop_x_poisons_arithmetic() {
    xtuml_prop::run("x_poisons_arithmetic", |g| {
        let a = g.next_u64();
        let bit = g.index(16);
        let w = 16 + g.index(17);
        let mut va = LogicVector::from_u64(a, w);
        va.set(bit, Logic::X);
        let vb = LogicVector::from_u64(1, w);
        let r = va.add(&vb);
        assert_eq!(r.width(), w);
        assert_eq!(r.to_u64(), None);
    });
}

/// Logic AND/OR are commutative, associative and idempotent; De Morgan
/// holds on defined values.
#[test]
fn prop_logic_algebra() {
    xtuml_prop::run("logic_algebra", |g| {
        let (a, b, c) = (logic(g), logic(g), logic(g));
        assert_eq!(a & b, b & a);
        assert_eq!(a | b, b | a);
        assert_eq!((a & b) & c, a & (b & c));
        assert_eq!((a | b) | c, a | (b | c));
        assert_eq!(a & a, if a == Logic::Z { Logic::X } else { a });
        if a.is_defined() && b.is_defined() {
            assert_eq!(!(a & b), !a | !b);
            assert_eq!(!(a | b), !a & !b);
        }
    });
}

/// The FIFO agrees with a bounded VecDeque reference model under an
/// arbitrary push/pop sequence.
#[test]
fn prop_fifo_matches_reference() {
    xtuml_prop::run("fifo_matches_reference", |g| {
        let depth = 1 + g.index(7);
        let n_ops = g.index(64);
        let ops: Vec<Option<u32>> = (0..n_ops)
            .map(|_| {
                if g.ratio(2, 3) {
                    Some(g.below(100) as u32)
                } else {
                    None
                }
            })
            .collect();
        let mut fifo = SyncFifo::new(depth);
        let mut reference: VecDeque<u32> = VecDeque::new();
        let mut overflows = 0u64;
        for op in ops {
            match op {
                Some(v) => {
                    let accepted = fifo.push(v);
                    if reference.len() < depth {
                        assert!(accepted);
                        reference.push_back(v);
                    } else {
                        assert!(!accepted);
                        overflows += 1;
                    }
                }
                None => {
                    assert_eq!(fifo.pop(), reference.pop_front());
                }
            }
            assert_eq!(fifo.len(), reference.len());
            assert_eq!(fifo.is_empty(), reference.is_empty());
            assert_eq!(fifo.is_full(), reference.len() == depth);
            assert_eq!(fifo.front(), reference.front());
        }
        assert_eq!(fifo.overflows(), overflows);
    });
}

/// A clocked counter in the kernel counts exactly the cycles run,
/// regardless of how the run is split into segments.
#[test]
fn prop_kernel_counter_counts_cycles() {
    xtuml_prop::run("kernel_counter_counts_cycles", |g| {
        struct Counter {
            clk: SignalId,
            q: SignalId,
        }
        impl Process for Counter {
            fn sensitivity(&self) -> Vec<SignalId> {
                vec![self.clk]
            }
            fn eval(&mut self, ctx: &mut SignalCtx<'_>) {
                if ctx.rising_edge(self.clk) {
                    let q = ctx.read(self.q).to_u64().unwrap_or(0);
                    ctx.set(self.q, LogicVector::from_u64(q.wrapping_add(1), 32));
                }
            }
        }
        let segments: Vec<u64> = (0..1 + g.index(5)).map(|_| g.below(20)).collect();
        let mut k = RtlKernel::new();
        let clk = k.clock();
        let q = k.add_signal("q", LogicVector::zeros(32));
        k.add_process(Counter { clk, q });
        let mut total = 0u64;
        for n in segments {
            k.run_cycles(n).unwrap();
            total += n;
            assert_eq!(k.peek(q).to_u64(), Some(total & 0xFFFF_FFFF));
            assert_eq!(k.cycle(), total);
        }
    });
}

/// Resolution forms a commutative monoid with identity Z.
#[test]
fn prop_resolution_monoid() {
    xtuml_prop::run("resolution_monoid", |g| {
        let (a, b) = (logic(g), logic(g));
        assert_eq!(a.resolve(Logic::Z), a);
        assert_eq!(Logic::Z.resolve(a), a);
        assert_eq!(a.resolve(b), b.resolve(a));
    });
}
