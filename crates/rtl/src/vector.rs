//! Logic vectors: fixed-width buses of [`Logic`] values.
//!
//! Arithmetic follows VHDL `numeric_std` unsigned semantics: if any
//! operand bit is undefined (`X`/`Z`) the whole result is `X`; otherwise
//! the operation is modulo 2^width of the left operand.

use crate::logic::Logic;
use std::fmt;

/// A fixed-width bus, bit 0 = least significant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicVector {
    bits: Vec<Logic>,
}

impl LogicVector {
    /// All-zeros vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zeros(width: usize) -> LogicVector {
        assert!(width > 0, "vector width must be nonzero");
        LogicVector {
            bits: vec![Logic::L0; width],
        }
    }

    /// All-`X` vector of the given width (the power-on value of an
    /// uninitialised register).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn unknown(width: usize) -> LogicVector {
        assert!(width > 0, "vector width must be nonzero");
        LogicVector {
            bits: vec![Logic::X; width],
        }
    }

    /// Builds a vector from the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn from_u64(value: u64, width: usize) -> LogicVector {
        assert!(width > 0 && width <= 64, "width must be 1..=64");
        LogicVector {
            bits: (0..width)
                .map(|i| Logic::from_bool((value >> i) & 1 == 1))
                .collect(),
        }
    }

    /// Single-bit vector from a logic level.
    pub fn bit(v: Logic) -> LogicVector {
        LogicVector { bits: vec![v] }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bit at `i` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn get(&self, i: usize) -> Logic {
        self.bits[i]
    }

    /// Replaces the bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set(&mut self, i: usize, v: Logic) {
        self.bits[i] = v;
    }

    /// True if every bit is `0` or `1`.
    pub fn is_defined(&self) -> bool {
        self.bits.iter().all(|b| b.is_defined())
    }

    /// Interprets the vector as an unsigned integer; `None` if any bit is
    /// undefined or the width exceeds 64.
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            return None;
        }
        let mut v = 0u64;
        for (i, b) in self.bits.iter().enumerate() {
            match b.to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    /// Unsigned addition modulo 2^width (self's width). Undefined inputs
    /// poison the result to all-`X`.
    pub fn add(&self, rhs: &LogicVector) -> LogicVector {
        self.arith(rhs, u64::wrapping_add)
    }

    /// Unsigned subtraction modulo 2^width.
    pub fn sub(&self, rhs: &LogicVector) -> LogicVector {
        self.arith(rhs, u64::wrapping_sub)
    }

    fn arith(&self, rhs: &LogicVector, f: fn(u64, u64) -> u64) -> LogicVector {
        match (self.to_u64(), rhs.to_u64()) {
            (Some(a), Some(b)) => {
                let w = self.width();
                let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                LogicVector::from_u64(f(a, b) & mask, w)
            }
            _ => LogicVector::unknown(self.width()),
        }
    }

    /// Bitwise AND (widths must match).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn and(&self, rhs: &LogicVector) -> LogicVector {
        self.zip(rhs, |a, b| a & b)
    }

    /// Bitwise OR (widths must match).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn or(&self, rhs: &LogicVector) -> LogicVector {
        self.zip(rhs, |a, b| a | b)
    }

    /// Bitwise XOR (widths must match).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn xor(&self, rhs: &LogicVector) -> LogicVector {
        self.zip(rhs, |a, b| a ^ b)
    }

    fn zip(&self, rhs: &LogicVector, f: fn(Logic, Logic) -> Logic) -> LogicVector {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        LogicVector {
            bits: self
                .bits
                .iter()
                .zip(&rhs.bits)
                .map(|(a, b)| f(*a, *b))
                .collect(),
        }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> LogicVector {
        LogicVector {
            bits: self.bits.iter().map(|b| !*b).collect(),
        }
    }

    /// Zero-extends or truncates to a new width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn resize(&self, width: usize) -> LogicVector {
        assert!(width > 0, "vector width must be nonzero");
        let mut bits = self.bits.clone();
        bits.resize(width, Logic::L0);
        bits.truncate(width);
        LogicVector { bits }
    }
}

impl fmt::Display for LogicVector {
    /// MSB-first, VHDL literal style: `"0110"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for b in self.bits.iter().rev() {
            write!(f, "{b}")?;
        }
        write!(f, "\"")
    }
}

impl From<bool> for LogicVector {
    fn from(b: bool) -> LogicVector {
        LogicVector::bit(Logic::from_bool(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_round_trip() {
        let v = LogicVector::from_u64(0b1011, 4);
        assert_eq!(v.width(), 4);
        assert_eq!(v.to_u64(), Some(0b1011));
        assert_eq!(v.get(0), Logic::L1);
        assert_eq!(v.get(2), Logic::L0);
        assert_eq!(v.to_string(), "\"1011\"");
    }

    #[test]
    fn unknown_poisons_to_u64() {
        let mut v = LogicVector::from_u64(3, 4);
        v.set(2, Logic::X);
        assert_eq!(v.to_u64(), None);
        assert!(!v.is_defined());
    }

    #[test]
    fn add_sub_wrap_at_width() {
        let a = LogicVector::from_u64(0xF, 4);
        let one = LogicVector::from_u64(1, 4);
        assert_eq!(a.add(&one).to_u64(), Some(0));
        assert_eq!(LogicVector::zeros(4).sub(&one).to_u64(), Some(0xF));
    }

    #[test]
    fn arithmetic_with_x_is_all_x() {
        let mut a = LogicVector::from_u64(1, 4);
        a.set(0, Logic::X);
        let b = LogicVector::from_u64(1, 4);
        let r = a.add(&b);
        assert!(!r.is_defined());
        assert_eq!(r.width(), 4);
    }

    #[test]
    fn bitwise_ops() {
        let a = LogicVector::from_u64(0b1100, 4);
        let b = LogicVector::from_u64(0b1010, 4);
        assert_eq!(a.and(&b).to_u64(), Some(0b1000));
        assert_eq!(a.or(&b).to_u64(), Some(0b1110));
        assert_eq!(a.xor(&b).to_u64(), Some(0b0110));
        assert_eq!(a.not().to_u64(), Some(0b0011));
    }

    #[test]
    fn resize_extends_and_truncates() {
        let v = LogicVector::from_u64(0b101, 3);
        assert_eq!(v.resize(5).to_u64(), Some(0b101));
        assert_eq!(v.resize(2).to_u64(), Some(0b01));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = LogicVector::zeros(2).and(&LogicVector::zeros(3));
    }

    #[test]
    fn full_width_64() {
        let v = LogicVector::from_u64(u64::MAX, 64);
        assert_eq!(v.to_u64(), Some(u64::MAX));
        assert_eq!(v.add(&LogicVector::from_u64(1, 64)).to_u64(), Some(0));
    }
}
