//! The delta-cycle simulation kernel.
//!
//! One global clock, VHDL-style two-phase evaluation: signal writes are
//! *scheduled* and applied between delta cycles; processes sensitive to a
//! changed signal re-evaluate until the net list stabilises. Each call to
//! [`RtlKernel::tick`] simulates one full clock cycle (rising edge,
//! settle, falling edge, settle).

use crate::logic::Logic;
use crate::vcd::VcdRecorder;
use crate::vector::LogicVector;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a signal in the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub u32);

impl SignalId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors from the RTL kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// The delta loop did not converge within the iteration limit —
    /// a combinational oscillation (e.g. an unclocked inverter loop).
    DeltaOscillation {
        /// Simulation cycle at which the oscillation was detected.
        cycle: u64,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::DeltaOscillation { cycle } => {
                write!(f, "delta-cycle oscillation at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for RtlError {}

/// A hardware process: evaluated whenever a signal in its sensitivity
/// list changes. Clocked processes put the clock in their sensitivity
/// list and gate their body on [`SignalCtx::rising_edge`].
pub trait Process {
    /// The signals that wake this process.
    fn sensitivity(&self) -> Vec<SignalId>;
    /// Evaluates the process; reads current values, schedules writes.
    fn eval(&mut self, ctx: &mut SignalCtx<'_>);
}

/// The view of the signal state handed to an evaluating process.
pub struct SignalCtx<'k> {
    current: &'k [LogicVector],
    previous: &'k [LogicVector],
    scheduled: &'k mut BTreeMap<SignalId, LogicVector>,
}

impl SignalCtx<'_> {
    /// Current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different kernel.
    pub fn read(&self, id: SignalId) -> &LogicVector {
        &self.current[id.index()]
    }

    /// Schedules a new value, visible from the next delta cycle (VHDL
    /// signal-assignment semantics). The last write in a delta wins.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the signal's declared width.
    pub fn set(&mut self, id: SignalId, value: LogicVector) {
        assert_eq!(
            value.width(),
            self.current[id.index()].width(),
            "signal width mismatch on {id}"
        );
        self.scheduled.insert(id, value);
    }

    /// True when the signal transitioned 0 → 1 in the update that woke
    /// this process.
    pub fn rising_edge(&self, id: SignalId) -> bool {
        let prev = &self.previous[id.index()];
        let cur = &self.current[id.index()];
        prev.width() == 1 && cur.width() == 1 && prev.get(0) == Logic::L0 && cur.get(0) == Logic::L1
    }
}

/// Maximum delta cycles per settle phase before declaring oscillation.
const DELTA_LIMIT: usize = 1_000;

/// A single-clock synchronous RTL simulation. See the crate-level example.
pub struct RtlKernel {
    names: Vec<String>,
    current: Vec<LogicVector>,
    previous: Vec<LogicVector>,
    sens_map: Vec<Vec<usize>>, // signal -> process indices
    processes: Vec<Box<dyn Process>>,
    clk: SignalId,
    cycle: u64,
    deltas: u64,
    elaborated: bool,
    vcd: Option<VcdRecorder>,
}

impl fmt::Debug for RtlKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtlKernel")
            .field("signals", &self.names.len())
            .field("processes", &self.processes.len())
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl Default for RtlKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl RtlKernel {
    /// Creates a kernel with the global clock signal pre-declared.
    pub fn new() -> RtlKernel {
        let mut k = RtlKernel {
            names: Vec::new(),
            current: Vec::new(),
            previous: Vec::new(),
            sens_map: Vec::new(),
            processes: Vec::new(),
            clk: SignalId(0),
            cycle: 0,
            deltas: 0,
            elaborated: false,
            vcd: None,
        };
        let clk = k.add_signal("clk", LogicVector::bit(Logic::L0));
        k.clk = clk;
        k
    }

    /// The global clock signal.
    pub fn clock(&self) -> SignalId {
        self.clk
    }

    /// Declares a signal with an initial value; returns its id.
    pub fn add_signal(&mut self, name: &str, init: LogicVector) -> SignalId {
        let id = SignalId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.current.push(init.clone());
        self.previous.push(init);
        self.sens_map.push(Vec::new());
        id
    }

    /// Registers a process; it is evaluated once immediately at time zero
    /// on its next wake (VHDL elaboration runs every process once — here
    /// the first clock edge performs that role for clocked processes).
    pub fn add_process(&mut self, p: impl Process + 'static) {
        let idx = self.processes.len();
        for s in p.sensitivity() {
            self.sens_map[s.index()].push(idx);
        }
        self.processes.push(Box::new(p));
    }

    /// Enables VCD waveform recording for all signals.
    pub fn enable_vcd(&mut self) {
        self.vcd = Some(VcdRecorder::new(self.names.clone()));
    }

    /// The recorded VCD text, if recording was enabled.
    pub fn vcd_text(&self) -> Option<String> {
        self.vcd.as_ref().map(VcdRecorder::render)
    }

    /// Current value of a signal (between cycles).
    pub fn peek(&self, id: SignalId) -> &LogicVector {
        &self.current[id.index()]
    }

    /// Forces a signal (testbench poke); takes effect immediately and
    /// wakes sensitive processes on the next settle.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn poke(&mut self, id: SignalId, value: LogicVector) {
        assert_eq!(
            value.width(),
            self.current[id.index()].width(),
            "signal width mismatch on {id}"
        );
        self.previous[id.index()] = self.current[id.index()].clone();
        self.current[id.index()] = value;
    }

    /// Completed clock cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total delta evaluations performed (a simulation-effort metric).
    pub fn delta_count(&self) -> u64 {
        self.deltas
    }

    /// Runs every process once and settles — VHDL elaboration. Called
    /// automatically by the first [`RtlKernel::tick`]; call it explicitly
    /// before poking a testbench that relies on combinational outputs.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DeltaOscillation`] if combinational logic does
    /// not settle.
    pub fn elaborate(&mut self) -> Result<(), RtlError> {
        if self.elaborated {
            return Ok(());
        }
        self.elaborated = true;
        let mut scheduled: BTreeMap<SignalId, LogicVector> = BTreeMap::new();
        for p in &mut self.processes {
            self.deltas += 1;
            let mut ctx = SignalCtx {
                current: &self.current,
                previous: &self.previous,
                scheduled: &mut scheduled,
            };
            p.eval(&mut ctx);
        }
        let mut changed = Vec::new();
        for (id, value) in scheduled {
            if self.current[id.index()] != value {
                self.previous[id.index()] = self.current[id.index()].clone();
                self.current[id.index()] = value;
                changed.push(id);
            }
        }
        self.settle(changed)
    }

    /// Runs one full clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DeltaOscillation`] if combinational logic does
    /// not settle.
    pub fn tick(&mut self) -> Result<(), RtlError> {
        self.elaborate()?;
        self.drive_clock(Logic::L1)?;
        self.drive_clock(Logic::L0)?;
        self.cycle += 1;
        if let Some(v) = &mut self.vcd {
            v.sample(self.cycle, &self.current);
        }
        Ok(())
    }

    /// Runs `n` clock cycles.
    ///
    /// # Errors
    ///
    /// Same as [`RtlKernel::tick`].
    pub fn run_cycles(&mut self, n: u64) -> Result<(), RtlError> {
        for _ in 0..n {
            self.tick()?;
        }
        Ok(())
    }

    fn drive_clock(&mut self, level: Logic) -> Result<(), RtlError> {
        self.previous[self.clk.index()] = self.current[self.clk.index()].clone();
        self.current[self.clk.index()] = LogicVector::bit(level);
        self.settle(vec![self.clk])
    }

    /// Delta loop: evaluate processes sensitive to `changed`, apply their
    /// scheduled writes, repeat until stable.
    fn settle(&mut self, mut changed: Vec<SignalId>) -> Result<(), RtlError> {
        for _ in 0..DELTA_LIMIT {
            if changed.is_empty() {
                return Ok(());
            }
            // Wake set: processes sensitive to any changed signal.
            let mut wake: Vec<usize> = changed
                .iter()
                .flat_map(|s| self.sens_map[s.index()].iter().copied())
                .collect();
            wake.sort_unstable();
            wake.dedup();

            let mut scheduled: BTreeMap<SignalId, LogicVector> = BTreeMap::new();
            for pi in wake {
                self.deltas += 1;
                let mut ctx = SignalCtx {
                    current: &self.current,
                    previous: &self.previous,
                    scheduled: &mut scheduled,
                };
                self.processes[pi].eval(&mut ctx);
            }

            changed.clear();
            for (id, value) in scheduled {
                if self.current[id.index()] != value {
                    self.previous[id.index()] = self.current[id.index()].clone();
                    self.current[id.index()] = value;
                    changed.push(id);
                }
            }
        }
        Err(RtlError::DeltaOscillation { cycle: self.cycle })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CounterProc {
        clk: SignalId,
        q: SignalId,
        en: SignalId,
    }
    impl Process for CounterProc {
        fn sensitivity(&self) -> Vec<SignalId> {
            vec![self.clk]
        }
        fn eval(&mut self, ctx: &mut SignalCtx<'_>) {
            if ctx.rising_edge(self.clk) && ctx.read(self.en).to_u64() == Some(1) {
                let q = ctx.read(self.q).to_u64().unwrap_or(0);
                ctx.set(self.q, LogicVector::from_u64((q + 1) & 0xFF, 8));
            }
        }
    }

    /// Combinational: y = not a (sensitive to a).
    struct InvProc {
        a: SignalId,
        y: SignalId,
    }
    impl Process for InvProc {
        fn sensitivity(&self) -> Vec<SignalId> {
            vec![self.a]
        }
        fn eval(&mut self, ctx: &mut SignalCtx<'_>) {
            let v = ctx.read(self.a).not();
            ctx.set(self.y, v);
        }
    }

    #[test]
    fn counter_counts_when_enabled() {
        let mut k = RtlKernel::new();
        let clk = k.clock();
        let q = k.add_signal("q", LogicVector::zeros(8));
        let en = k.add_signal("en", LogicVector::from_u64(1, 1));
        k.add_process(CounterProc { clk, q, en });
        k.run_cycles(10).unwrap();
        assert_eq!(k.peek(q).to_u64(), Some(10));
        k.poke(en, LogicVector::zeros(1));
        k.run_cycles(5).unwrap();
        assert_eq!(k.peek(q).to_u64(), Some(10));
        assert_eq!(k.cycle(), 15);
    }

    #[test]
    fn combinational_chain_settles_within_one_cycle() {
        // a -> inv -> b -> inv -> c : c follows a after deltas, within the
        // same clock tick.
        let mut k = RtlKernel::new();
        let a = k.add_signal("a", LogicVector::zeros(1));
        let b = k.add_signal("b", LogicVector::zeros(1));
        let c = k.add_signal("c", LogicVector::zeros(1));
        k.add_process(InvProc { a, y: b });
        k.add_process(InvProc { a: b, y: c });
        k.elaborate().unwrap();
        // a=0 ⇒ b = not a = 1 ⇒ c = not b = 0 after elaboration settles.
        assert_eq!(k.peek(b).to_u64(), Some(1), "elaboration settles chain");
        assert_eq!(k.peek(c).to_u64(), Some(0), "elaboration settles chain");
        k.poke(a, LogicVector::from_u64(1, 1));
        // Manually settle by ticking once (clock edge wakes nothing here,
        // but poke + settle happens through tick's settle of clk; the inv
        // chain is driven by `a` which changed before the tick).
        // Directly exercise settle via a tick after poking: processes
        // sensitive to `a` must run.
        k.settle(vec![a]).unwrap();
        assert_eq!(k.peek(b).to_u64(), Some(0));
        assert_eq!(k.peek(c).to_u64(), Some(1));
    }

    #[test]
    fn oscillation_is_detected() {
        // y = not y : unclocked feedback loop.
        struct SelfInv {
            y: SignalId,
        }
        impl Process for SelfInv {
            fn sensitivity(&self) -> Vec<SignalId> {
                vec![self.y]
            }
            fn eval(&mut self, ctx: &mut SignalCtx<'_>) {
                let v = ctx.read(self.y).not();
                ctx.set(self.y, v);
            }
        }
        let mut k = RtlKernel::new();
        let y = k.add_signal("y", LogicVector::zeros(1));
        k.add_process(SelfInv { y });
        let err = k.settle(vec![y]).unwrap_err();
        assert!(matches!(err, RtlError::DeltaOscillation { .. }));
    }

    #[test]
    fn writes_are_delta_delayed() {
        // A process that reads its own output sees the old value during
        // the delta in which it writes.
        struct Swap {
            clk: SignalId,
            a: SignalId,
            b: SignalId,
        }
        impl Process for Swap {
            fn sensitivity(&self) -> Vec<SignalId> {
                vec![self.clk]
            }
            fn eval(&mut self, ctx: &mut SignalCtx<'_>) {
                if ctx.rising_edge(self.clk) {
                    // Classic two-signal swap: both reads happen before
                    // either write lands.
                    let a = ctx.read(self.a).clone();
                    let b = ctx.read(self.b).clone();
                    ctx.set(self.a, b);
                    ctx.set(self.b, a);
                }
            }
        }
        let mut k = RtlKernel::new();
        let clk = k.clock();
        let a = k.add_signal("a", LogicVector::from_u64(3, 4));
        let b = k.add_signal("b", LogicVector::from_u64(12, 4));
        k.add_process(Swap { clk, a, b });
        k.tick().unwrap();
        assert_eq!(k.peek(a).to_u64(), Some(12));
        assert_eq!(k.peek(b).to_u64(), Some(3));
        k.tick().unwrap();
        assert_eq!(k.peek(a).to_u64(), Some(3));
    }

    #[test]
    fn delta_count_tracks_effort() {
        let mut k = RtlKernel::new();
        let clk = k.clock();
        let q = k.add_signal("q", LogicVector::zeros(8));
        let en = k.add_signal("en", LogicVector::from_u64(1, 1));
        k.add_process(CounterProc { clk, q, en });
        k.run_cycles(3).unwrap();
        assert!(k.delta_count() >= 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn poke_wrong_width_panics() {
        let mut k = RtlKernel::new();
        let a = k.add_signal("a", LogicVector::zeros(4));
        k.poke(a, LogicVector::zeros(8));
    }

    #[test]
    fn vcd_recording_produces_header_and_samples() {
        let mut k = RtlKernel::new();
        let clk = k.clock();
        let q = k.add_signal("q", LogicVector::zeros(8));
        let en = k.add_signal("en", LogicVector::from_u64(1, 1));
        k.add_process(CounterProc { clk, q, en });
        k.enable_vcd();
        k.run_cycles(3).unwrap();
        let vcd = k.vcd_text().unwrap();
        assert!(vcd.contains("$var"));
        assert!(vcd.contains("q"));
        assert!(vcd.contains("#1"));
    }
}
