//! Four-valued logic, IEEE-1164 style (restricted to the four values that
//! matter for behavioural simulation: `0`, `1`, `X`, `Z`).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A single logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Logic {
    /// Strong low.
    #[default]
    L0,
    /// Strong high.
    L1,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// Constructs from a boolean.
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::L1
        } else {
            Logic::L0
        }
    }

    /// `Some(bool)` for driven values, `None` for `X`/`Z`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::L0 => Some(false),
            Logic::L1 => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// True if the value is `0` or `1`.
    pub fn is_defined(self) -> bool {
        matches!(self, Logic::L0 | Logic::L1)
    }

    /// Bus resolution: combines two drivers of one net (IEEE-1164
    /// `resolved` restricted to our four values). `Z` yields to anything;
    /// conflicting strong drivers resolve to `X`.
    pub fn resolve(self, other: Logic) -> Logic {
        use Logic::*;
        match (self, other) {
            (Z, v) | (v, Z) => v,
            (a, b) if a == b => a,
            _ => X,
        }
    }
}

impl Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        match self {
            Logic::L0 => Logic::L1,
            Logic::L1 => Logic::L0,
            _ => Logic::X,
        }
    }
}

impl BitAnd for Logic {
    type Output = Logic;
    fn bitand(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (L0, _) | (_, L0) => L0,
            (L1, L1) => L1,
            _ => X,
        }
    }
}

impl BitOr for Logic {
    type Output = Logic;
    fn bitor(self, rhs: Logic) -> Logic {
        use Logic::*;
        match (self, rhs) {
            (L1, _) | (_, L1) => L1,
            (L0, L0) => L0,
            _ => X,
        }
    }
}

impl BitXor for Logic {
    type Output = Logic;
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::L0 => '0',
            Logic::L1 => '1',
            Logic::X => 'X',
            Logic::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from_bool(true), L1);
        assert_eq!(Logic::from_bool(false), L0);
        assert_eq!(L1.to_bool(), Some(true));
        assert_eq!(X.to_bool(), None);
        assert_eq!(Z.to_bool(), None);
    }

    #[test]
    fn and_truth_table() {
        // 0 dominates even against X/Z.
        assert_eq!(L0 & X, L0);
        assert_eq!(Z & L0, L0);
        assert_eq!(L1 & L1, L1);
        assert_eq!(L1 & X, X);
        assert_eq!(Z & Z, X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(L1 | X, L1);
        assert_eq!(Z | L1, L1);
        assert_eq!(L0 | L0, L0);
        assert_eq!(L0 | X, X);
    }

    #[test]
    fn xor_and_not() {
        assert_eq!(L1 ^ L0, L1);
        assert_eq!(L1 ^ L1, L0);
        assert_eq!(L1 ^ X, X);
        assert_eq!(!L0, L1);
        assert_eq!(!X, X);
        assert_eq!(!Z, X);
    }

    #[test]
    fn resolution() {
        assert_eq!(Z.resolve(L1), L1);
        assert_eq!(L0.resolve(Z), L0);
        assert_eq!(L0.resolve(L0), L0);
        assert_eq!(L0.resolve(L1), X);
        assert_eq!(X.resolve(L1), X);
        assert_eq!(Z.resolve(Z), Z);
    }

    #[test]
    fn resolution_is_commutative_and_associative() {
        let vals = [L0, L1, X, Z];
        for a in vals {
            for b in vals {
                assert_eq!(a.resolve(b), b.resolve(a));
                for c in vals {
                    assert_eq!(a.resolve(b).resolve(c), a.resolve(b.resolve(c)));
                }
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(format!("{L0}{L1}{X}{Z}"), "01XZ");
    }
}
