//! A synchronous FIFO model.
//!
//! The generated hardware uses FIFOs as event queues (one per hardware
//! state machine) and as the bridge's channel buffers. [`SyncFifo`] models
//! the *architectural* behaviour — bounded depth, full/empty flags,
//! overflow detection — at the granularity the co-simulation needs (one
//! push/pop per clock edge), without burning signal-level wires for the
//! payload.

use std::collections::VecDeque;

/// A bounded synchronous FIFO.
#[derive(Debug, Clone)]
pub struct SyncFifo<T> {
    depth: usize,
    items: VecDeque<T>,
    /// Count of pushes rejected because the FIFO was full.
    overflows: u64,
    /// High-water mark of occupancy.
    max_occupancy: usize,
}

impl<T> SyncFifo<T> {
    /// Creates a FIFO with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> SyncFifo<T> {
        assert!(depth > 0, "FIFO depth must be nonzero");
        SyncFifo {
            depth,
            items: VecDeque::with_capacity(depth),
            overflows: 0,
            max_occupancy: 0,
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if another push would overflow.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.depth
    }

    /// Attempts to enqueue; returns `false` (and counts an overflow) when
    /// full. Real hardware would assert back-pressure here; callers that
    /// must not lose events check [`SyncFifo::is_full`] first.
    pub fn push(&mut self, item: T) -> bool {
        if self.is_full() {
            self.overflows += 1;
            return false;
        }
        self.items.push_back(item);
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        true
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of rejected pushes so far.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Highest occupancy observed — used to report required queue depths
    /// back to the marking model.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut f = SyncFifo::new(4);
        assert!(f.is_empty());
        for i in 0..4 {
            assert!(f.push(i));
        }
        assert!(f.is_full());
        assert_eq!(f.front(), Some(&0));
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.pop(), Some(1));
        assert!(f.push(4));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(4));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn overflow_is_counted_not_panicking() {
        let mut f = SyncFifo::new(2);
        assert!(f.push(1));
        assert!(f.push(2));
        assert!(!f.push(3));
        assert!(!f.push(4));
        assert_eq!(f.overflows(), 2);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn high_water_mark() {
        let mut f = SyncFifo::new(8);
        for i in 0..5 {
            f.push(i);
        }
        f.pop();
        f.pop();
        assert_eq!(f.max_occupancy(), 5);
        assert_eq!(f.len(), 3);
    }

    #[test]
    #[should_panic(expected = "depth must be nonzero")]
    fn zero_depth_panics() {
        let _ = SyncFifo::<u8>::new(0);
    }
}
