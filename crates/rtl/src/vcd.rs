//! Minimal VCD (Value Change Dump) recorder.
//!
//! Records per-cycle samples of all kernel signals and renders a
//! standards-flavoured VCD text that waveform viewers (GTKWave et al.)
//! accept. This is a debugging aid for generated hardware, mirroring what
//! a VHDL simulation flow would give the designer.

use crate::vector::LogicVector;

/// Accumulates samples; render with [`VcdRecorder::render`].
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    names: Vec<String>,
    /// `(cycle, values)` samples; only changed values are emitted.
    samples: Vec<(u64, Vec<LogicVector>)>,
}

impl VcdRecorder {
    /// Creates a recorder for the named signals (index = signal id).
    pub fn new(names: Vec<String>) -> VcdRecorder {
        VcdRecorder {
            names,
            samples: Vec::new(),
        }
    }

    /// Records the signal values at the end of `cycle`.
    pub fn sample(&mut self, cycle: u64, values: &[LogicVector]) {
        self.samples.push((cycle, values.to_vec()));
    }

    /// Short printable identifier for the n-th signal (VCD id chars).
    fn id_code(mut n: usize) -> String {
        // Base-94 over the printable ASCII range VCD allows.
        let mut s = String::new();
        loop {
            s.push((33 + (n % 94)) as u8 as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    }

    /// Renders the VCD text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n$scope module xtuml $end\n");
        let widths: Vec<usize> = self
            .samples
            .first()
            .map(|(_, vs)| vs.iter().map(LogicVector::width).collect())
            .unwrap_or_else(|| vec![1; self.names.len()]);
        for (i, name) in self.names.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(1);
            let _ = writeln!(out, "$var wire {w} {} {name} $end", Self::id_code(i));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last: Option<&Vec<LogicVector>> = None;
        for (cycle, values) in &self.samples {
            let _ = writeln!(out, "#{cycle}");
            for (i, v) in values.iter().enumerate() {
                let changed = last.is_none_or(|prev| prev[i] != *v);
                if changed {
                    let bits = v.to_string();
                    let raw = bits.trim_matches('"');
                    if v.width() == 1 {
                        let _ = writeln!(out, "{raw}{}", Self::id_code(i));
                    } else {
                        let _ = writeln!(out, "b{raw} {}", Self::id_code(i));
                    }
                }
            }
            last = Some(values);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_vars_and_changes() {
        let mut r = VcdRecorder::new(vec!["clk".into(), "bus".into()]);
        r.sample(
            1,
            &[LogicVector::from_u64(1, 1), LogicVector::from_u64(5, 4)],
        );
        r.sample(
            2,
            &[LogicVector::from_u64(1, 1), LogicVector::from_u64(6, 4)],
        );
        let text = r.render();
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("$var wire 4 \" bus $end"));
        assert!(text.contains("#1"));
        assert!(text.contains("b0101 \""));
        // Cycle 2: clk unchanged (not re-emitted), bus changed.
        let after2 = text.split("#2").nth(1).unwrap();
        assert!(after2.contains("b0110 \""));
        assert!(!after2.contains("1!"));
    }

    #[test]
    fn id_codes_are_unique_for_many_signals() {
        let ids: Vec<String> = (0..300).map(VcdRecorder::id_code).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn empty_recorder_renders_header_only() {
        let r = VcdRecorder::new(vec!["a".into()]);
        let text = r.render();
        assert!(text.contains("$enddefinitions"));
        assert!(!text.contains('#'));
    }
}
