//! # xtuml-rtl — a delta-cycle RTL simulator
//!
//! The hardware half of the toolchain. The paper's model compiler emits
//! VHDL; since a proprietary VHDL simulator is not available to this
//! reproduction, this crate implements the *semantic model* that VHDL
//! text denotes — four-valued logic ([`Logic`]), logic vectors
//! ([`LogicVector`]), signals with delta-delayed assignment, processes
//! with sensitivity lists and a single-clock synchronous kernel
//! ([`RtlKernel`]) — so generated hardware can be **executed**
//! cycle-accurately, not just printed.
//!
//! The kernel follows standard VHDL simulation semantics: signal
//! assignments within a process are scheduled, not immediate; all
//! processes sensitive to a changed signal re-evaluate in the next delta
//! cycle; a time step completes when no more deltas are pending
//! (oscillation is detected and reported).
//!
//! ```
//! use xtuml_rtl::{LogicVector, Process, RtlKernel, SignalCtx, SignalId};
//!
//! /// A 4-bit counter clocked on the rising edge.
//! struct Counter { clk: SignalId, q: SignalId }
//! impl Process for Counter {
//!     fn sensitivity(&self) -> Vec<SignalId> { vec![self.clk] }
//!     fn eval(&mut self, ctx: &mut SignalCtx<'_>) {
//!         if ctx.rising_edge(self.clk) {
//!             let next = ctx.read(self.q).to_u64().unwrap_or(0) + 1;
//!             ctx.set(self.q, LogicVector::from_u64(next & 0xF, 4));
//!         }
//!     }
//! }
//!
//! let mut k = RtlKernel::new();
//! let clk = k.clock();
//! let q = k.add_signal("q", LogicVector::zeros(4));
//! k.add_process(Counter { clk, q });
//! k.run_cycles(5)?;
//! assert_eq!(k.peek(q).to_u64(), Some(5));
//! # Ok::<(), xtuml_rtl::RtlError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod fifo;
pub mod kernel;
pub mod logic;
pub mod vcd;
pub mod vector;

pub use fifo::SyncFifo;
pub use kernel::{Process, RtlError, RtlKernel, SignalCtx, SignalId};
pub use logic::Logic;
pub use vector::LogicVector;
